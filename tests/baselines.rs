//! Cross-validation of the baseline detectors.
//!
//! Two independent implementations of the conventional thread-based
//! view exist in the workspace: the graph-based model with
//! `CausalityConfig::fasttrack_like()` driving the low-level pair
//! counter, and a genuine epoch-based FastTrack. On any trace they must
//! agree on *which variables* are racy (FastTrack's precision theorem
//! guarantees it reports at least the first race per variable).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cafa_core::fasttrack::fasttrack;
use cafa_core::lowlevel::count_races;
use cafa_hb::CausalityConfig;
use cafa_sim::{run, Action, Body, ProgramBuilder, SimConfig};
use cafa_trace::Trace;

fn racy_var_count_graph(trace: &Trace) -> usize {
    count_races(trace, CausalityConfig::fasttrack_like())
        .unwrap()
        .racy_vars
}

/// A random mix of threads and events touching a few shared variables
/// with occasional fork/join/lock synchronization.
fn random_threaded_program(gen_seed: u64) -> cafa_sim::Program {
    let mut rng = SmallRng::seed_from_u64(gen_seed);
    let mut p = ProgramBuilder::new(format!("ftrand-{gen_seed}"));
    let proc = p.process();
    let looper = p.looper(proc);
    let nvars = rng.gen_range(2..5);
    let vars: Vec<_> = (0..nvars).map(|_| p.scalar_var(0)).collect();
    let nmons = 2;
    let mons: Vec<_> = (0..nmons).map(|_| p.monitor()).collect();

    // A few event handlers doing random accesses.
    let n_handlers = rng.gen_range(2..5);
    for h in 0..n_handlers {
        let mut actions = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            let v = vars[rng.gen_range(0..vars.len())];
            if rng.gen_bool(0.5) {
                actions.push(Action::ReadScalar(v));
            } else {
                actions.push(Action::WriteScalar(v, 1));
            }
        }
        p.handler(&format!("H{h}"), Body::from_actions(actions));
    }

    // Threads: random accesses, some under locks, some posting events.
    for t in 0..rng.gen_range(2..5) {
        let mut actions = vec![Action::Sleep(rng.gen_range(0..5))];
        for _ in 0..rng.gen_range(2..6) {
            match rng.gen_range(0..6) {
                0 | 1 => {
                    let v = vars[rng.gen_range(0..vars.len())];
                    actions.push(Action::ReadScalar(v));
                }
                2 | 3 => {
                    let v = vars[rng.gen_range(0..vars.len())];
                    actions.push(Action::WriteScalar(v, t as i64));
                }
                4 => {
                    let m = mons[rng.gen_range(0..mons.len())];
                    let v = vars[rng.gen_range(0..vars.len())];
                    actions.push(Action::Lock(m));
                    actions.push(Action::WriteScalar(v, -1));
                    actions.push(Action::Unlock(m));
                }
                _ => {
                    let h = cafa_sim::HandlerId::from_index(rng.gen_range(0..n_handlers) as u32);
                    actions.push(Action::Post {
                        looper,
                        handler: h,
                        delay_ms: 0,
                    });
                }
            }
        }
        p.thread(proc, &format!("T{t}"), Body::from_actions(actions));
    }
    p.build()
}

#[test]
fn fasttrack_agrees_with_graph_model_on_random_programs() {
    let mut nonzero = 0;
    for gen_seed in 0..40 {
        let program = random_threaded_program(gen_seed);
        let Some(trace) = run(&program, &SimConfig::with_seed(1)).unwrap().trace else {
            continue;
        };
        let ft = fasttrack(&trace).unwrap();
        let graph = racy_var_count_graph(&trace);
        assert_eq!(
            ft.racy_vars, graph,
            "program {gen_seed}: FastTrack found {} racy vars, graph model {}",
            ft.racy_vars, graph
        );
        if ft.racy_vars > 0 {
            nonzero += 1;
        }
    }
    assert!(
        nonzero >= 10,
        "the generator must produce real races ({nonzero})"
    );
}

#[test]
fn fasttrack_agrees_with_graph_model_on_app_traces() {
    for name in ["ConnectBot", "Music"] {
        let apps = cafa_apps::all_apps();
        let app = apps.iter().find(|a| a.name == name).unwrap();
        let trace = app.record(0).unwrap().trace.unwrap();
        let ft = fasttrack(&trace).unwrap();
        let graph = racy_var_count_graph(&trace);
        assert_eq!(ft.racy_vars, graph, "{name}");
    }
}

#[test]
fn more_order_means_fewer_lowlevel_races() {
    // cafa ⊆ no_queue_rules orderings, so no_queue_rules finds at least
    // as many racy pairs; conventional (single looper) is coarser than
    // cafa, so it finds at most as many.
    for name in ["ConnectBot", "VLC"] {
        let apps = cafa_apps::all_apps();
        let app = apps.iter().find(|a| a.name == name).unwrap();
        let trace = app.record(0).unwrap().trace.unwrap();
        let cafa = count_races(&trace, CausalityConfig::cafa())
            .unwrap()
            .racy_pairs;
        let relaxed = count_races(&trace, CausalityConfig::no_queue_rules())
            .unwrap()
            .racy_pairs;
        let conv = count_races(&trace, CausalityConfig::conventional())
            .unwrap()
            .racy_pairs;
        assert!(relaxed >= cafa, "{name}: dropping rules can only add races");
        assert!(conv <= cafa, "{name}: total order can only remove races");
    }
}
