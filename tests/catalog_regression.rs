//! Regression suite over a pinned generated corpus: 200 labeled apps,
//! per-label precision/recall against ground truth.
//!
//! Table 1 pins the detector's behavior on 10 hand-modeled apps; this
//! suite pins it on a ~20× larger corpus drawn deterministically from
//! the same pattern space (`cafa gen --seed 42 --count 200`). The
//! contract per label bucket:
//!
//! * harmful (a)/(b)/(c) and benign I/II/III labels are *expected* in
//!   the report — recall must be exactly 1.0;
//! * `Filtered` labels must be pruned by the heuristics and `Ordered`
//!   labels by the happens-before rules — zero reports;
//! * nothing unlabeled may ever be reported.
//!
//! The exact totals are additionally pinned, so any drift in the
//! generator, the lowering, the simulator, or the detector shows up as
//! a diff here before it reaches the golden files.

use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};
use cafa_model::eval::Score;
use cafa_model::{generate, GenConfig};

const SEED: u64 = 42;
const COUNT: usize = 200;

fn corpus_score() -> Score {
    let models = generate(&GenConfig {
        seed: SEED,
        count: COUNT,
        ..GenConfig::default()
    });
    assert_eq!(models.len(), COUNT);
    let scores = fleet::map(&models, fleet::default_threads(), |model| {
        let app = cafa_model::lower(model).expect("generated models are valid");
        let outcome = app.record(SEED).expect("generated workloads run clean");
        let trace = outcome.trace.expect("instrumentation is on");
        let report = Analyzer::new()
            .analyze_with(&AnalysisSession::new(&trace))
            .expect("analysis succeeds");
        let mut s = Score::new();
        s.tally_app(&app.truth, report.races.iter().map(|r| r.var));
        s
    });
    let mut total = Score::new();
    for s in &scores {
        total.merge(s);
    }
    total
}

#[test]
fn generated_corpus_precision_recall() {
    let total = corpus_score();
    assert_eq!(total.apps, COUNT);

    // Expected labels: perfect recall, bucket by bucket.
    for (name, t) in [
        ("a", total.a),
        ("b", total.b),
        ("c", total.c),
        ("fp1", total.fp1),
        ("fp2", total.fp2),
        ("fp3", total.fp3),
    ] {
        assert!(t.planted > 0, "{name}: corpus plants none — no coverage");
        assert_eq!(
            t.reported,
            t.planted,
            "{name}: recall {} < 1.0 ({})",
            t.recall(),
            total.counts_line("TOTAL")
        );
    }

    // Suppressed labels: zero leakage. Predictive-only labels are HB
    // silent by definition — the predictive backend's extra reports on
    // them are scored by the adjudication harness, not this suite.
    for (name, t) in [
        ("filtered", total.filtered),
        ("ordered", total.ordered),
        ("predictive", total.predictive),
    ] {
        assert!(t.planted > 0, "{name}: corpus plants none — no coverage");
        assert_eq!(
            t.reported,
            0,
            "{name}: {} leaked into the report ({})",
            t.reported,
            total.counts_line("TOTAL")
        );
    }
    assert_eq!(total.unlabeled, 0, "{}", total.counts_line("TOTAL"));

    // Precision equals planted-true over planted-report-surface by
    // construction once recall is 1.0 on both sides.
    let expected_precision =
        total.true_planted() as f64 / (total.true_planted() + total.benign_planted()) as f64;
    assert!((total.precision() - expected_precision).abs() < 1e-9);

    // Pin the exact totals: any generator/lowering/detector drift
    // must be a conscious re-pin.
    assert_eq!(
        total.counts_line("TOTAL"),
        "TOTAL reported=1417 a=258/258 b=248/248 c=291/291 fp1=205/205 fp2=199/199 \
         fp3=216/216 filtered=0/206 ordered=0/393 predictive=0/163 unlabeled=0"
    );
}
