//! Multi-looper behavior: the model is per-queue where the paper says
//! so (atomicity, queue rules) and global where it says so (the
//! external-input rule).

use cafa_core::{Analyzer, RaceClass};
use cafa_hb::{CausalityConfig, HbModel};
use cafa_sim::{run, Body, ProgramBuilder, SimConfig};
use cafa_trace::{TaskId, Trace};

fn event(trace: &Trace, name: &str) -> TaskId {
    trace
        .events()
        .find(|t| trace.names().resolve(t.name) == name)
        .unwrap_or_else(|| panic!("event {name}"))
        .id
}

/// Two loopers in one process (e.g. main + a HandlerThread): events on
/// different queues get no atomicity or queue-rule edges even when
/// their sends are ordered.
#[test]
fn cross_looper_events_are_unordered() {
    let mut p = ProgramBuilder::new("two-loopers");
    let pr = p.process();
    let main = p.looper(pr);
    let worker = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    // One thread posts A to main then B to the worker looper, equal
    // delays: queue rule 1 does NOT apply across queues.
    p.thread(pr, "T", Body::new().post(main, a, 1).post(worker, b, 1));
    let trace = run(&p.build(), &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.concurrent_events(event(&trace, "A"), event(&trace, "B")));
    assert!(!m.same_looper(event(&trace, "A"), event(&trace, "B")));
}

/// Same-queue sends stay ordered even with a second looper around.
#[test]
fn same_looper_rules_still_apply() {
    let mut p = ProgramBuilder::new("two-loopers-2");
    let pr = p.process();
    let main = p.looper(pr);
    let _other = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    p.thread(pr, "T", Body::new().post(main, a, 1).post(main, b, 1));
    let trace = run(&p.build(), &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.event_before(event(&trace, "A"), event(&trace, "B")));
}

/// The external-input rule chains gestures across queues: "if e1 and e2
/// are generated from the external world, then end(e1) ≺ begin(e2)".
#[test]
fn external_rule_spans_queues() {
    let mut p = ProgramBuilder::new("ext-cross");
    let pr = p.process();
    let main = p.looper(pr);
    let worker = p.looper(pr);
    let a = p.handler("tapA", Body::new());
    let b = p.handler("tapB", Body::new());
    p.gesture(0, main, a);
    p.gesture(10, worker, b);
    let trace = run(&p.build(), &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.event_before(event(&trace, "tapA"), event(&trace, "tapB")));
}

/// A use/free across two loopers is a race, but not class (a): the
/// endpoints are not events of *one* looper, so the same-looper
/// heuristics must not apply either.
#[test]
fn cross_looper_use_free_race_is_not_intra_thread() {
    let mut p = ProgramBuilder::new("cross-race");
    let pr = p.process();
    let main = p.looper(pr);
    let worker = p.looper(pr);
    let ptr = p.ptr_var_alloc();
    let use_h = p.handler("useIt", Body::new().guarded_use(ptr));
    let free_h = p.handler("freeIt", Body::new().free(ptr));
    p.thread(pr, "s1", Body::new().post(main, use_h, 0));
    p.thread(
        pr,
        "s2",
        Body::from_actions(vec![
            cafa_sim::Action::Sleep(20),
            cafa_sim::Action::Post {
                looper: worker,
                handler: free_h,
                delay_ms: 0,
            },
        ]),
    );
    let trace = run(&p.build(), &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let report = Analyzer::new().analyze(&trace).unwrap();
    // The if-guard protects only against same-looper frees; across
    // loopers the guard is unsound and must NOT filter, so the race is
    // reported despite the guard.
    assert_eq!(report.races.len(), 1);
    assert!(report.filtered.is_empty());
    assert_ne!(report.races[0].class, RaceClass::IntraThread);
}
