//! The flagship reproduction test: every row of the paper's Table 1.
//!
//! Each app workload is recorded with the paper's instrumentation
//! coverage and analyzed by the full CAFA pipeline; the classified
//! report must match the published row *exactly* — event count, races
//! reported, true-race classes (a)/(b)/(c), and false-positive types
//! I/II/III.

use cafa_bench::table1::{compute, Row};

#[test]
fn table1_matches_the_paper_exactly() {
    let results = compute(0);
    assert_eq!(results.len(), 10);

    let mut total = Row::default();
    for (app, measured) in &results {
        let e = app.expected;
        assert_eq!(measured.events, e.events, "{}: events", app.name);
        assert_eq!(measured.reported, e.reported, "{}: reported", app.name);
        assert_eq!(measured.a, e.a, "{}: class (a)", app.name);
        assert_eq!(measured.b, e.b, "{}: class (b)", app.name);
        assert_eq!(measured.c, e.c, "{}: class (c)", app.name);
        assert_eq!(measured.fp1, e.fp1, "{}: type I FPs", app.name);
        assert_eq!(measured.fp2, e.fp2, "{}: type II FPs", app.name);
        assert_eq!(measured.fp3, e.fp3, "{}: type III FPs", app.name);
        assert_eq!(measured.unlabeled, 0, "{}: unplanted reports", app.name);
        assert_eq!(
            measured.misclassified, 0,
            "{}: detector class vs oracle class",
            app.name
        );

        total.reported += measured.reported;
        total.a += measured.a;
        total.b += measured.b;
        total.c += measured.c;
        total.fp1 += measured.fp1;
        total.fp2 += measured.fp2;
        total.fp3 += measured.fp3;
        total.known += measured.known;
    }

    // The paper's overall row: 115 reported, 69 true (13+25+31),
    // 46 false (9+32+5), 60% precision, 2 known bugs.
    assert_eq!(total.reported, 115);
    assert_eq!((total.a, total.b, total.c), (13, 25, 31));
    assert_eq!((total.fp1, total.fp2, total.fp3), (9, 32, 5));
    assert_eq!(total.a + total.b + total.c, 69);
    assert_eq!(total.known, 2, "ConnectBot r90632bd and MyTracks Figure 1");
    let precision = 100.0 * 69.0 / 115.0;
    assert!((59.0..61.0).contains(&precision));
}

#[test]
fn connectbot_lowlevel_races_match_section_4_1() {
    let apps = cafa_apps::all_apps();
    let connectbot = apps.iter().find(|a| a.name == "ConnectBot").unwrap();
    let trace = connectbot.record(0).unwrap().trace.unwrap();

    let cafa = cafa_core::lowlevel::count_races(&trace, cafa_hb::CausalityConfig::cafa()).unwrap();
    assert_eq!(cafa.racy_pairs, 1_664, "the §4.1 exhibit number");
    // Filler-chain sites exceed the per-site instance cap; their pairs
    // are ordered (and genuinely race-free), which the counter honestly
    // reports as unproven rather than silently complete.
    assert!(
        !cafa.truncated_vars.is_empty(),
        "capped ordered sites are flagged"
    );

    // Under the conventional model the looper's total event order hides
    // almost all of them.
    let conv =
        cafa_core::lowlevel::count_races(&trace, cafa_hb::CausalityConfig::conventional()).unwrap();
    assert!(
        conv.racy_pairs < cafa.racy_pairs / 100,
        "conventional sees a tiny fraction ({} vs {})",
        conv.racy_pairs,
        cafa.racy_pairs
    );
}

#[test]
fn ablations_behave_as_designed() {
    let rows = cafa_bench::ablation::compute(0);
    let cafa: usize = rows.iter().map(|r| r.cafa.reported).sum();
    let no_heur: usize = rows.iter().map(|r| r.no_heuristics.reported).sum();
    let no_queue: usize = rows.iter().map(|r| r.no_queue_rules.reported).sum();
    let full_cov: usize = rows.iter().map(|r| r.full_coverage.reported).sum();

    assert_eq!(cafa, 115);
    // Disabling the §4.3 heuristics adds back every filtered candidate.
    let filtered: usize = rows.iter().map(|r| r.cafa.filtered).sum();
    assert_eq!(no_heur, cafa + filtered);
    // Dropping the queue rules (EventRacer-style model) reports the
    // send-ordered pairs as races.
    assert!(no_queue > cafa, "queue rules suppress false reports");
    // Full listener coverage removes exactly the 9 Type I FPs.
    assert_eq!(full_cov, cafa - 9);
    // Precise dereference matching removes exactly the 5 Type III FPs.
    let precise: usize = rows.iter().map(|r| r.precise_matching.reported).sum();
    assert_eq!(precise, cafa - 5);
}
