//! Scale-tier corpus gate: the demand-driven engine analyzing
//! 100k-event fleet-island traces, checked label-by-label against the
//! generator's ground truth.
//!
//! Three apps (seeds 42/43/44, 100k events each) go through the full
//! detector. The assertions are *exact*, not statistical: every
//! harmful label must come back as a race of the matching Table 1
//! class, every planted false positive must be reported, every
//! filtered pattern must be suppressed by a §4.3 heuristic, every
//! rule-1-ordered pattern must vanish entirely, and nothing unlabeled
//! may appear. The per-app counts lines are pinned by
//! `tests/golden/scale_counts.txt`, and the full JSON report must be
//! byte-identical at `--threads` 1, 2, and 8.

use cafa_core::{Analyzer, DetectorConfig, FilterReason, RaceClass, RaceReport};
use cafa_model::eval::Score;
use cafa_model::scale::{generate_scale, ScaleApp, ScaleConfig};
use cafa_model::{Label, TrueClass};

const TIER: usize = 100_000;

fn trio() -> Vec<ScaleApp> {
    (0..3)
        .map(|i| generate_scale(ScaleConfig::new(42 + i, TIER)))
        .collect()
}

fn analyze(app: &ScaleApp, threads: usize) -> RaceReport {
    let mut config = DetectorConfig::cafa();
    config.threads = threads;
    Analyzer::with_config(config)
        .analyze(&app.trace)
        .expect("scale traces are acyclic by construction")
}

fn class_of(label: TrueClass) -> RaceClass {
    match label {
        TrueClass::IntraThread => RaceClass::IntraThread,
        TrueClass::InterThread => RaceClass::InterThread,
        TrueClass::Conventional => RaceClass::Conventional,
    }
}

#[test]
fn labels_are_recalled_exactly_at_scale() {
    let mut lines = Vec::new();
    let mut total = Score::new();
    for app in &trio() {
        let report = analyze(app, 0);
        assert!(app.events >= TIER);
        assert_eq!(report.stats.events, app.events);

        for (var, label) in app.truth.iter() {
            let races: Vec<_> = report.races.iter().filter(|r| r.var == var).collect();
            let filtered: Vec<_> = report.filtered.iter().filter(|f| f.var == var).collect();
            match label {
                Label::Harmful { class, .. } => {
                    assert_eq!(races.len(), 1, "harmful {var} must be reported once");
                    assert_eq!(
                        races[0].class,
                        class_of(class),
                        "harmful {var} classified into the wrong Table 1 column"
                    );
                }
                Label::Benign { .. } => {
                    assert_eq!(races.len(), 1, "planted FP {var} must be reported");
                }
                Label::Filtered => {
                    assert!(races.is_empty(), "filtered {var} leaked into the report");
                    assert_eq!(filtered.len(), 1, "filtered {var} must be suppressed");
                    assert!(
                        matches!(
                            filtered[0].reason,
                            FilterReason::AllocBeforeUse | FilterReason::IfGuard
                        ),
                        "filtered {var} suppressed for the wrong reason: {:?}",
                        filtered[0].reason
                    );
                }
                Label::Ordered => {
                    assert!(races.is_empty(), "rule-1-ordered {var} was reported");
                    assert!(
                        filtered.is_empty(),
                        "rule-1-ordered {var} reached the filters: it should \
                         never become a candidate"
                    );
                }
                Label::Predictive { .. } => {
                    assert!(
                        races.is_empty(),
                        "predictive-only {var} leaked into the HB report"
                    );
                }
            }
        }
        for race in &report.races {
            assert!(
                app.truth.get(race.var).is_some(),
                "unlabeled variable {} reported",
                race.var
            );
        }

        let mut score = Score::new();
        score.tally_app(&app.truth, report.races.iter().map(|r| r.var));
        lines.push(score.counts_line(&app.trace.meta().app));
        total.merge(&score);
    }
    lines.push(total.counts_line("TOTAL"));
    let got = format!("{}\n", lines.join("\n"));
    let want = include_str!("golden/scale_counts.txt");
    assert_eq!(got, want, "scale counts drifted from the pinned golden");
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    for app in &trio() {
        let baseline = analyze(app, 1);
        let bytes = cafa_core::json::render_json(&baseline, &app.trace);
        for threads in [2, 8] {
            let report = analyze(app, threads);
            assert_eq!(
                bytes,
                cafa_core::json::render_json(&report, &app.trace),
                "scale report differs between --threads 1 and --threads {threads}"
            );
        }
    }
}
