//! End-to-end checks of every illustrative figure in the paper,
//! exercised through the simulator (program → schedule → trace → model
//! → detector), not hand-built traces.

use cafa_core::{Analyzer, DetectorConfig, FilterReason, RaceClass};
use cafa_hb::{CausalityConfig, HbModel};
use cafa_sim::{run, Action, Body, ProgramBuilder, SimConfig};
use cafa_trace::{TaskId, Trace};

fn record(p: cafa_sim::Program) -> Trace {
    run(&p, &SimConfig::with_seed(0)).unwrap().trace.unwrap()
}

fn event(trace: &Trace, name: &str) -> TaskId {
    trace
        .events()
        .find(|t| trace.names().resolve(t.name) == name)
        .unwrap_or_else(|| panic!("event {name}"))
        .id
}

/// Figure 1: the MyTracks use-after-free, through Binder.
#[test]
fn figure1_mytracks_race_detected() {
    let mut p = ProgramBuilder::new("fig1");
    let app = p.process();
    let main = p.looper(app);
    let provider_utils = p.ptr_var_alloc();
    let connected = p.handler("onServiceConnected", Body::new().use_ptr(provider_utils));
    let svcp = p.process();
    let svc = p.service(svcp, "TrackRecordingService");
    let bind = p.method(svc, "onBind", Body::new().post(main, connected, 0));
    let resume = p.handler(
        "onResume",
        Body::from_actions(vec![Action::CallAsync {
            service: svc,
            method: bind,
        }]),
    );
    let destroy = p.handler("onDestroy", Body::new().free(provider_utils));
    p.gesture(0, main, resume);
    p.gesture(50, main, destroy);
    let trace = record(p.build());

    let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    let (c, d) = (
        event(&trace, "onServiceConnected"),
        event(&trace, "onDestroy"),
    );
    assert!(model.concurrent_events(c, d));
    // onResume is ordered before onServiceConnected through the RPC.
    assert!(model.event_before(event(&trace, "onResume"), c));

    let report = Analyzer::new().analyze(&trace).unwrap();
    assert_eq!(report.races.len(), 1);
    assert_eq!(report.races[0].class, RaceClass::IntraThread);
}

/// Figure 2: the ConnectBot read-write conflict is *not* a use-free
/// race — CAFA stays silent even though the low-level definition fires.
#[test]
fn figure2_commutative_rw_not_reported() {
    let mut p = ProgramBuilder::new("fig2");
    let pr = p.process();
    let l = p.looper(pr);
    let resize_allowed = p.scalar_var(1);
    let pause = p.handler("onPause", Body::new().write(resize_allowed, 0));
    let layout = p.handler("onLayout", Body::new().read(resize_allowed));
    p.thread(pr, "s1", Body::new().post(l, pause, 2));
    p.thread(pr, "s2", Body::new().post(l, layout, 1));
    let trace = record(p.build());

    let report = Analyzer::new().analyze(&trace).unwrap();
    assert!(report.races.is_empty(), "not a use-free race");
    let lowlevel = cafa_core::lowlevel::count_races(&trace, CausalityConfig::cafa()).unwrap();
    assert_eq!(
        lowlevel.racy_pairs, 1,
        "but the conventional definition fires"
    );
}

/// Figure 4b/4c: delay interplay between two sends from one thread.
#[test]
fn figure4_delays() {
    // 4b: equal delays, FIFO.
    let mut p = ProgramBuilder::new("fig4b");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    p.thread(pr, "T", Body::new().post(l, a, 1).post(l, b, 1));
    let trace = record(p.build());
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.event_before(event(&trace, "A"), event(&trace, "B")));

    // 4c: first send has the larger delay — no order either way.
    let mut p = ProgramBuilder::new("fig4c");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    p.thread(pr, "T", Body::new().post(l, a, 5).post(l, b, 0));
    let trace = record(p.build());
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.concurrent_events(event(&trace, "A"), event(&trace, "B")));
}

/// Figure 4d vs 4e/4f: `sendAtFront` orders only under the
/// `sendAtFront ≺ begin` guarantee.
#[test]
fn figure4_send_at_front() {
    // 4d: both sends inside event C on the target looper: B ≺ A.
    let mut p = ProgramBuilder::new("fig4d");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    let c = p.handler(
        "C",
        Body::from_actions(vec![
            Action::Post {
                looper: l,
                handler: a,
                delay_ms: 0,
            },
            Action::PostFront {
                looper: l,
                handler: b,
            },
        ]),
    );
    p.gesture(0, l, c);
    let trace = record(p.build());
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.event_before(event(&trace, "B"), event(&trace, "A")));
    assert!(
        m.event_before(event(&trace, "C"), event(&trace, "A")),
        "atomicity"
    );

    // 4e/4f: the front-send comes from an unrelated thread — no order.
    let mut p = ProgramBuilder::new("fig4ef");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    p.thread(pr, "T", Body::new().post(l, a, 0));
    p.thread(
        pr,
        "T2",
        Body::from_actions(vec![
            Action::Sleep(1),
            Action::PostFront {
                looper: l,
                handler: b,
            },
        ]),
    );
    let trace = record(p.build());
    let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    assert!(m.concurrent_events(event(&trace, "A"), event(&trace, "B")));
}

/// Figure 5: both commutative patterns are filtered, with the right
/// reasons, and nothing is reported.
#[test]
fn figure5_commutative_events_filtered() {
    let mut p = ProgramBuilder::new("fig5");
    let pr = p.process();
    let l = p.looper(pr);
    let handler_ptr = p.ptr_var_alloc();
    let pause = p.handler("onPause", Body::new().free(handler_ptr));
    let focus = p.handler("onFocus", Body::new().guarded_use(handler_ptr));
    let resume = p.handler(
        "onResume",
        Body::new().alloc(handler_ptr).use_ptr(handler_ptr),
    );
    // Decreasing delays keep all three concurrent.
    p.thread(pr, "s1", Body::new().post(l, focus, 3));
    p.thread(pr, "s2", Body::new().post(l, resume, 2));
    p.thread(pr, "s3", Body::new().post(l, pause, 1));
    let trace = record(p.build());

    let report = Analyzer::new().analyze(&trace).unwrap();
    assert!(report.races.is_empty());
    let reasons: Vec<FilterReason> = report.filtered.iter().map(|f| f.reason).collect();
    assert!(reasons.contains(&FilterReason::IfGuard));
    assert!(reasons.contains(&FilterReason::AllocBeforeUse));

    // Without the heuristics both candidates are reported.
    let noisy = Analyzer::with_config(DetectorConfig::unfiltered())
        .analyze(&trace)
        .unwrap();
    assert_eq!(noisy.races.len(), 2);
}
