//! Engine integration: a shared [`AnalysisSession`] must be
//! behaviorally invisible (identical reports to the direct facade),
//! cache reuse must be observable through session stats, and the fleet
//! runner must produce byte-identical output at any worker count.

use cafa::detect::lowlevel::count_races_with;
use cafa::detect::Analyzer;
use cafa::engine::{fleet, AnalysisSession};
use cafa::hb::CausalityConfig;
use cafa::trace::{DerefKind, ObjId, Pc, Trace, TraceBuilder, VarId};

/// A small trace with one cross-task use-free race plus an allocation
/// pattern the heuristics filter, so every detector pass has work.
/// `tag` varies the app name so fleet items are distinguishable.
fn racy_trace(tag: usize) -> Trace {
    let mut b = TraceBuilder::new(format!("app-{tag}"));
    let p = b.add_process();
    let q = b.add_queue(p);
    let t1 = b.add_thread(p, "src1");
    let t2 = b.add_thread(p, "src2");
    let v = VarId::new(0);
    let o = ObjId::new(1);

    let use_ev = b.post(t1, q, "useEv", 0);
    b.process_event(use_ev);
    b.obj_read(use_ev, v, Some(o), Pc::new(0x1010));
    b.deref(use_ev, o, Pc::new(0x1014), DerefKind::Invoke);

    let free_ev = b.post(t2, q, "freeEv", 0);
    b.process_event(free_ev);
    b.obj_write(free_ev, v, None, Pc::new(0x2010));

    // Re-allocate then use inside one event: filtered (alloc-before-use).
    let realloc = b.post(t2, q, "realloc", 0);
    b.process_event(realloc);
    let o2 = ObjId::new(2);
    b.obj_write(realloc, v, Some(o2), Pc::new(0x3010));
    b.obj_read(realloc, v, Some(o2), Pc::new(0x3014));
    b.deref(realloc, o2, Pc::new(0x3018), DerefKind::Invoke);

    b.finish().unwrap()
}

#[test]
fn session_reports_are_identical_to_direct_analyze() {
    for tag in 0..4 {
        let trace = racy_trace(tag);
        let direct = Analyzer::new().analyze(&trace).unwrap();

        let session = AnalysisSession::new(&trace);
        let shared = Analyzer::new().analyze_with(&session).unwrap();

        assert_eq!(direct.app, shared.app);
        assert_eq!(direct.races, shared.races);
        assert_eq!(direct.filtered, shared.filtered);
        // DetectStats equality covers pass names and item counts but
        // deliberately ignores wall times.
        assert_eq!(direct.stats, shared.stats);
        assert_eq!(direct.render(&trace), shared.render(&trace));
    }
}

#[test]
fn repeated_analyses_hit_the_model_cache() {
    let trace = racy_trace(0);
    let session = AnalysisSession::new(&trace);
    let analyzer = Analyzer::new();

    let first = analyzer.analyze_with(&session).unwrap();
    let after_first = session.stats();
    assert!(after_first.model_builds >= 1);

    let second = analyzer.analyze_with(&session).unwrap();
    let after_second = session.stats();
    assert_eq!(
        after_second.model_builds, after_first.model_builds,
        "the second analysis must not rebuild any fixpoint"
    );
    assert!(
        after_second.model_cache_hits > after_first.model_cache_hits,
        "the second analysis must be served from the cache"
    );
    assert_eq!(first.races, second.races);

    // The low-level baseline shares the same cached models.
    let before = session.stats();
    count_races_with(&session, CausalityConfig::cafa()).unwrap();
    let after = session.stats();
    assert_eq!(after.model_builds, before.model_builds);
    assert!(after.model_cache_hits > before.model_cache_hits);
}

#[test]
fn fleet_output_is_byte_identical_at_any_thread_count() {
    let traces: Vec<Trace> = (0..12).map(racy_trace).collect();
    let render = |trace: &Trace| -> String {
        let session = AnalysisSession::new(trace);
        Analyzer::new()
            .analyze_with(&session)
            .unwrap()
            .render(trace)
    };
    let serial = fleet::map(&traces, 1, render);
    for threads in [2, 3, 8, 32] {
        let parallel = fleet::map(&traces, threads, render);
        assert_eq!(serial, parallel, "output diverged at {threads} threads");
    }
    assert!(serial.iter().all(|s| s.contains("1 race(s) reported")));
}
