//! Text-format stability: a golden trace checked into the repository
//! must keep parsing, and a canonical builder sequence must keep
//! producing byte-identical text. If either test fails, the format
//! version must be bumped instead of silently changing.

use cafa_trace::{from_text_str, to_text_string, TraceBuilder, VarId};

fn canonical_trace() -> cafa_trace::Trace {
    let mut b = TraceBuilder::new("golden");
    b.set_seed(42);
    b.set_virtual_ms(1000);
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "main");
    let l = b.add_listener("android.view");
    let ev = b.post(t, q, "onCreate", 5);
    b.process_event(ev);
    b.register(ev, l);
    b.obj_read(
        ev,
        VarId::new(0),
        Some(cafa_trace::ObjId::new(1)),
        cafa_trace::Pc::new(0x1010),
    );
    b.deref(
        ev,
        cafa_trace::ObjId::new(1),
        cafa_trace::Pc::new(0x1014),
        cafa_trace::DerefKind::Field,
    );
    b.obj_write(ev, VarId::new(0), None, cafa_trace::Pc::new(0x1020));
    let w = b.fork(t, p, "worker");
    b.lock(w, cafa_trace::MonitorId::new(0), 1);
    b.write(w, VarId::new(1));
    b.unlock(w, cafa_trace::MonitorId::new(0), 1);
    b.join(t, w);
    b.finish().unwrap()
}

const GOLDEN: &str = include_str!("fixtures/golden.trace");

#[test]
fn golden_fixture_parses_and_matches_canonical_builder() {
    let trace = canonical_trace();
    let text = to_text_string(&trace);
    assert_eq!(
        text, GOLDEN,
        "text format changed; bump TEXT_VERSION and regenerate the fixture"
    );
    let parsed = from_text_str(GOLDEN).expect("golden fixture parses");
    assert_eq!(parsed, trace);
}

#[test]
fn golden_fixture_analyzes_identically() {
    let parsed = from_text_str(GOLDEN).unwrap();
    let report = cafa_core::Analyzer::new().analyze(&parsed).unwrap();
    // The fixture contains one use and one free in the same event: not
    // a race (same task), so the report is empty but the extraction is
    // exercised.
    assert!(report.races.is_empty());
    assert_eq!(report.stats.events, 1);
}
