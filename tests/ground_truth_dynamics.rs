//! Dynamic validation of the workload ground truth.
//!
//! The labels claim things about *all* schedules: benign patterns must
//! never produce a null dereference under any interleaving, and any
//! null dereference that does occur must belong to a variable labelled
//! harmful. Running each workload under many seeds (uninstrumented,
//! which is fast) checks the labels against reality.

use cafa_apps::{all_apps, Label};

#[test]
fn npes_only_ever_hit_harmful_variables() {
    for app in all_apps() {
        for seed in 0..6 {
            let outcome = app.record_uninstrumented(seed).expect("runs cleanly");
            for npe in &outcome.npes {
                match app.truth.get(npe.var) {
                    Some(Label::Harmful { .. }) => {}
                    other => panic!(
                        "{} seed {seed}: NPE in {} on {} labelled {:?} — \
                         benign/filtered patterns must be safe in every schedule",
                        app.name, npe.context, npe.var, other
                    ),
                }
            }
        }
    }
}

#[test]
fn table1_seed_runs_are_crash_free() {
    // The paper's traces come from normal (non-crashing) sessions; the
    // workloads are timed so seed 0 takes the benign order everywhere.
    for app in all_apps() {
        let outcome = app.record_uninstrumented(0).expect("runs cleanly");
        assert!(
            !outcome.crashed(),
            "{}: the Table 1 recording schedule must be crash-free",
            app.name
        );
    }
}

#[test]
fn every_harmful_label_is_a_planted_pattern_var() {
    // Consistency of the oracle itself: each app's label table contains
    // exactly expected.reported non-auxiliary entries plus the
    // filtered/ordered patterns.
    for app in all_apps() {
        let mut harmful = 0;
        let mut benign = 0;
        let mut aux = 0;
        for (_, label) in app.truth.iter() {
            match label {
                Label::Harmful { .. } => harmful += 1,
                Label::Benign { .. } => benign += 1,
                Label::Filtered | Label::Ordered | Label::Predictive { .. } => aux += 1,
            }
        }
        assert_eq!(harmful, app.expected.true_races(), "{}", app.name);
        assert_eq!(benign, app.expected.false_positives(), "{}", app.name);
        assert!(aux >= 2, "{}: filtered/ordered patterns planted", app.name);
    }
}
