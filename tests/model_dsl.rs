//! DSL round-trip and malformed-model behavior, end to end.
//!
//! The serialization contract is stronger than value equality: a model
//! that survives `to_text → parse` must *lower to the same program*,
//! so its recorded trace is byte-identical to the original's. And a
//! model that cannot lower must say so with a typed error naming the
//! offending statement — the interpreter never panics on user data.

use cafa_model::{generate_one, lower, text, AppModel, ModelError, Stmt};
use cafa_trace::to_binary_vec;

fn record_bytes(model: &AppModel, seed: u64) -> Vec<u8> {
    let app = lower(model).expect("model is valid");
    to_binary_vec(&app.record(seed).expect("records cleanly").trace.unwrap())
}

#[test]
fn serialize_parse_lower_is_byte_identical() {
    // Catalog apps (the paper's Table 1 rows) and generated apps (the
    // corpus pattern mix) both survive the round trip bit-for-bit.
    let mut models = cafa_apps::all_models();
    models.extend((0..4).map(|i| generate_one(11, i)));
    for model in &models {
        let reparsed = text::parse(&text::to_text(model)).expect("round-trip parses");
        assert_eq!(&reparsed, model, "{}: value drift through text", model.name);
        for seed in [0, 9] {
            assert_eq!(
                record_bytes(model, seed),
                record_bytes(&reparsed, seed),
                "{}: trace bytes drift through text at seed {seed}",
                model.name
            );
        }
    }
}

#[test]
fn malformed_models_are_typed_errors_never_panics() {
    // Each case: a model the lowering must refuse, and the statement
    // keyword the error must name.
    let mut burst_overflow = generate_one(0, 0);
    burst_overflow.stmts.push(Stmt::ScalarBurst {
        writers: 90,
        readers: 90,
    });
    let mut zero_pipeline = generate_one(0, 0);
    zero_pipeline.stmts.push(Stmt::GpsFixPipeline { fixes: 0 });
    let mut input_overflow = generate_one(0, 0);
    input_overflow.stmts.push(Stmt::InputBurst { count: 500 });

    for (mut model, keyword) in [
        (burst_overflow, "scalar-burst"),
        (zero_pipeline, "gps-fix-pipeline"),
        (input_overflow, "input-burst"),
    ] {
        model.events = 5_000; // ample budget: the statement itself is the problem
        let err = lower(&model).expect_err(keyword);
        let ModelError::Invalid { app, stmt, .. } = &err else {
            panic!("{keyword}: expected Invalid, got {err:?}");
        };
        assert_eq!(app, &model.name);
        let (index, kw) = stmt.expect("statement-level error carries its location");
        assert_eq!(index, model.stmts.len() - 1, "{keyword}");
        assert_eq!(kw, keyword);
        assert!(err.to_string().contains(keyword), "{err}");
    }

    // Model-level problem: planted events exceed the budget.
    let mut starved = generate_one(0, 0);
    starved.events = 1;
    let err = lower(&starved).expect_err("budget");
    assert!(
        matches!(&err, ModelError::Invalid { stmt: None, .. }),
        "{err:?}"
    );
}

#[test]
fn malformed_text_is_a_typed_parse_error_with_line_number() {
    for (input, line) in [
        ("model v2\n", 1),
        ("model v1\nname \"x\"\nevents nope\n", 3),
        ("model v1\nname \"x\"\nevents 50\nstmt warp-drive\nend\n", 4),
        (
            "model v1\nname \"x\"\nevents 50\nstmt intra known=yes\nend\n",
            4,
        ),
    ] {
        let err = text::parse(input).expect_err(input);
        let ModelError::Parse { line: got, .. } = &err else {
            panic!("{input:?}: expected Parse, got {err:?}");
        };
        assert_eq!(*got, line, "{input:?}: {err}");
    }
}
