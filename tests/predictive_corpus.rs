//! The predictive deliverable bar, asserted end to end on the
//! generated corpus: at least one planted race that the HB backend
//! misses, the predictive backend reports, and replay *confirms* with
//! a verified witness — plus the dual, a planted infeasible pattern
//! adjudicated as a counted false positive. Every predictive-only
//! report in the slice is adjudicated one way or the other.

use cafa_core::{Analyzer, DetectorConfig, DetectorKind, PredictClass};
use cafa_model::Label;
use cafa_replay::{adjudicate_races, ReplayConfig};

/// Slice of the CI-pinned seed-7 corpus known to plant both a
/// lock-handoff (confirmable) and a fifo-handoff (infeasible).
const SLOTS: std::ops::Range<usize> = 0..6;

#[test]
fn planted_predictive_races_are_found_and_adjudicated() {
    let mut config = DetectorConfig::cafa();
    config.detector = DetectorKind::Both;

    let mut confirmed_somewhere = 0usize;
    let mut counted_fp_somewhere = 0usize;
    for index in SLOTS {
        let app = cafa_apps::resolve(&format!("gen:7:{index}")).expect("gen slots resolve");
        let outcome = app.record(7).expect("generated workloads run clean");
        let trace = outcome.trace.expect("instrumentation is on");
        let report = Analyzer::with_config(config)
            .analyze(&trace)
            .expect("analysis succeeds");
        let section = report.predictive.as_ref().expect("both mode ran");

        // Every planted predictive label: silent in the HB report,
        // present in the predictive section as predictive-only.
        for (var, label) in app.truth.iter() {
            let Label::Predictive { confirmable } = label else {
                continue;
            };
            assert!(
                report.races.iter().all(|r| r.var != var),
                "{}: planted predictive {var} leaked into the HB report",
                app.name
            );
            let classes: Vec<_> = section
                .races
                .iter()
                .filter(|r| r.var == var)
                .map(|r| r.class)
                .collect();
            assert!(
                classes.contains(&PredictClass::PredictiveOnly),
                "{}: planted predictive {var} (confirmable={confirmable}) \
                 missing from the predictive section: {classes:?}",
                app.name
            );
        }

        // Adjudicate the full predictive-only set; join the verdicts
        // back against the ground truth.
        let only: Vec<_> = section
            .races
            .iter()
            .filter(|r| r.class == PredictClass::PredictiveOnly)
            .map(|r| r.var)
            .collect();
        let adj = adjudicate_races(&app, &only, &ReplayConfig::default())
            .expect("generated workloads replay clean");
        assert_eq!(adj.reports.len(), only.len(), "every extra is adjudicated");
        for r in &adj.reports {
            match app.truth.get(r.var) {
                Some(Label::Predictive { confirmable: true }) => {
                    assert!(
                        r.confirmed(),
                        "{}: confirmable planted race {} was not replay-confirmed \
                         ({} runs)",
                        app.name,
                        r.var,
                        r.validation.total_runs
                    );
                    confirmed_somewhere += 1;
                }
                Some(Label::Predictive { confirmable: false }) => {
                    assert!(
                        !r.confirmed(),
                        "{}: infeasible planted pattern {} replay-confirmed — \
                         the simulator reordered a FIFO queue",
                        app.name,
                        r.var
                    );
                    counted_fp_somewhere += 1;
                }
                other => panic!(
                    "{}: predictive-only report on {} labelled {other:?} — \
                     extras must come from planted predictive patterns",
                    app.name, r.var
                ),
            }
        }
    }

    // The deliverable bar: the corpus slice exercises both verdicts.
    assert!(
        confirmed_somewhere > 0,
        "no planted race was missed by HB, found predictively, and replay-confirmed"
    );
    assert!(
        counted_fp_somewhere > 0,
        "no planted infeasible pattern was adjudicated as a counted false positive"
    );
}
