//! Generator determinism: the corpus is a pure function of
//! `(seed, count, size)` — byte-identical across invocations and
//! independent of how many fleet workers process it.

use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};
use cafa_model::eval::Score;
use cafa_model::{generate, generate_one, lower, text, GenConfig};
use cafa_trace::to_binary_vec;

#[test]
fn same_seed_and_count_is_byte_identical() {
    let cfg = GenConfig {
        seed: 7,
        count: 40,
        ..GenConfig::default()
    };
    let first = generate(&cfg);
    let second = generate(&cfg);
    assert_eq!(first, second);
    // The stronger guarantee: the *serialized corpus* — what
    // `cafa gen --format text` emits — is identical bytes.
    assert_eq!(text::corpus_to_text(&first), text::corpus_to_text(&second));
    // And each app records an identical trace.
    for model in first.iter().take(3) {
        let a = lower(model).unwrap().record(7).unwrap().trace.unwrap();
        let b = lower(model).unwrap().record(7).unwrap().trace.unwrap();
        assert_eq!(to_binary_vec(&a), to_binary_vec(&b), "{}", model.name);
    }
}

#[test]
fn different_seeds_differ() {
    let gen_at = |seed| {
        generate(&GenConfig {
            seed,
            count: 10,
            ..GenConfig::default()
        })
    };
    assert_ne!(
        text::corpus_to_text(&gen_at(1)),
        text::corpus_to_text(&gen_at(2))
    );
}

#[test]
fn single_app_resolution_matches_its_corpus_slot() {
    let corpus = generate(&GenConfig {
        seed: 3,
        count: 12,
        ..GenConfig::default()
    });
    for (i, model) in corpus.iter().enumerate() {
        assert_eq!(&generate_one(3, i), model, "index {i}");
    }
}

/// The fleet joins the corpus identically at 1, 2, and 8 workers: the
/// per-app scores (and thus the `cafa gen --format counts` bytes)
/// come back in corpus order regardless of scheduling.
#[test]
fn corpus_analysis_is_thread_count_independent() {
    let models = generate(&GenConfig {
        seed: 7,
        count: 12,
        ..GenConfig::default()
    });
    let run = |threads: usize| -> Vec<String> {
        let specs: Vec<_> = models
            .iter()
            .map(|m| lower(m).expect("generated models are valid"))
            .collect();
        fleet::map(&specs, threads, |app| {
            let trace = app.record(7).unwrap().trace.unwrap();
            let report = Analyzer::new()
                .analyze_with(&AnalysisSession::new(&trace))
                .unwrap();
            let mut s = Score::new();
            s.tally_app(&app.truth, report.races.iter().map(|r| r.var));
            s.counts_line(&app.name)
        })
    };
    let one = run(1);
    assert_eq!(one, run(2));
    assert_eq!(one, run(8));
}
