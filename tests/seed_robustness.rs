//! Schedule-robustness of the reproduction: the Table 1 rows are not
//! artifacts of one lucky seed. The workloads separate the racing
//! sides in *virtual time*, which every schedule respects, so any seed
//! must reproduce the same counts.

use cafa_bench::table1::{compute, measure_app};

#[test]
fn table1_reproduces_under_other_seeds() {
    for seed in [1u64, 23] {
        for (app, m) in compute(seed) {
            let e = app.expected;
            assert_eq!(m.events, e.events, "{} seed {seed}: events", app.name);
            assert_eq!(m.reported, e.reported, "{} seed {seed}: reported", app.name);
            assert_eq!(
                (m.a, m.b, m.c),
                (e.a, e.b, e.c),
                "{} seed {seed}: classes",
                app.name
            );
            assert_eq!(
                (m.fp1, m.fp2, m.fp3),
                (e.fp1, e.fp2, e.fp3),
                "{} seed {seed}: FPs",
                app.name
            );
            assert_eq!(m.unlabeled, 0, "{} seed {seed}", app.name);
        }
    }
}

#[test]
fn connectbot_lowlevel_count_is_seed_independent() {
    let apps = cafa_apps::all_apps();
    let cb = apps.iter().find(|a| a.name == "ConnectBot").unwrap();
    for seed in [5u64, 11] {
        let trace = cb.record(seed).unwrap().trace.unwrap();
        let n = cafa_core::lowlevel::count_races(&trace, cafa_hb::CausalityConfig::cafa())
            .unwrap()
            .racy_pairs;
        assert_eq!(n, 1_664, "seed {seed}");
    }
    // And one more seed through the single-app entry point.
    let row = measure_app(cb, 31);
    assert_eq!(row.reported, 3);
}
