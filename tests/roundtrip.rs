//! Serialization round-trips on real (app-scale) traces.

use cafa_trace::{from_binary_slice, from_text_str, to_binary_vec, to_text_string};

#[test]
fn app_trace_roundtrips_in_both_formats() {
    let apps = cafa_apps::all_apps();
    let app = apps.iter().find(|a| a.name == "VLC").unwrap();
    let trace = app.record(0).unwrap().trace.unwrap();
    assert!(trace.stats().records > 5_000, "app-scale trace");

    let text = to_text_string(&trace);
    let from_text = from_text_str(&text).expect("text parses");
    assert_eq!(trace, from_text);

    let bin = to_binary_vec(&trace);
    let from_bin = from_binary_slice(&bin).expect("binary parses");
    assert_eq!(trace, from_bin);

    // Cross-format: text -> binary -> text is stable.
    let text2 = to_text_string(&from_bin);
    assert_eq!(text, text2);

    // The binary format is substantially denser.
    assert!(
        bin.len() * 2 < text.len(),
        "binary {} vs text {}",
        bin.len(),
        text.len()
    );
}

#[test]
fn analysis_results_survive_serialization() {
    // Analyzing a deserialized trace gives identical results —
    // the offline-analyzer workflow of §5.1 (trace now, analyze later).
    let apps = cafa_apps::all_apps();
    let app = apps.iter().find(|a| a.name == "ZXing").unwrap();
    let trace = app.record(0).unwrap().trace.unwrap();

    let direct = cafa_core::Analyzer::new().analyze(&trace).unwrap();
    let reloaded = from_binary_slice(&to_binary_vec(&trace)).unwrap();
    let replayed = cafa_core::Analyzer::new().analyze(&reloaded).unwrap();

    assert_eq!(direct.races, replayed.races);
    assert_eq!(direct.filtered, replayed.filtered);
}
