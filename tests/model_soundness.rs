//! Soundness of the causality model against ground-truth executions.
//!
//! The happens-before relation derived from one recorded schedule
//! predicts orderings for *all* legal schedules: if the model says
//! event e₁ happens-before event e₂, then no schedule of the same
//! program may process e₂ before e₁. This test generates random
//! event-driven programs, derives the model from one run, and checks
//! every derived event ordering against the processing orders observed
//! under many other seeds — a direct, execution-based check of the
//! atomicity rule, the four queue rules, and the external-input rule.

#![allow(clippy::needless_range_loop)] // index loops mirror the DAG construction

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cafa_hb::{CausalityConfig, HbModel};
use cafa_sim::{run, Action, Body, HandlerId, Program, ProgramBuilder, SimConfig};

/// Generates a random single-looper program.
///
/// Handlers form a DAG (handler *i* may only post handlers with larger
/// indexes), every handler is posted at most once, and handler names
/// are unique — so an event's identity across runs is its handler name.
fn random_program(gen_seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(gen_seed);
    let mut p = ProgramBuilder::new(format!("random-{gen_seed}"));
    let proc = p.process();
    let looper = p.looper(proc);
    let var = p.scalar_var(0);

    let n_handlers = rng.gen_range(6..16);
    let delays = [0u64, 0, 1, 2, 5];

    // Decide each handler's posts up front (to later handlers only),
    // making sure every handler is posted by exactly one site.
    let mut posted_by: Vec<Option<usize>> = vec![None; n_handlers]; // handler -> poster
    let mut posts_of: Vec<Vec<(usize, bool, u64)>> = vec![Vec::new(); n_handlers];
    for h in 1..n_handlers {
        // Poster: a previous handler, or "external" (None stays None
        // with probability), or a thread (represented by usize::MAX).
        let choice = rng.gen_range(0..10);
        if choice < 5 {
            let poster = rng.gen_range(0..h);
            let front = rng.gen_ratio(1, 6);
            let delay = delays[rng.gen_range(0..delays.len())];
            posted_by[h] = Some(poster);
            posts_of[poster].push((h, front, if front { 0 } else { delay }));
        }
        // else: posted by a dedicated thread or a gesture, below.
    }

    // Declare handlers in order; bodies reference later handler ids,
    // which are assigned densely in declaration order.
    for (h, posts) in posts_of.iter().enumerate() {
        let mut actions = vec![Action::ReadScalar(var)];
        for &(target, front, delay) in posts {
            let handler = HandlerId::from_index(target as u32);
            actions.push(if front {
                Action::PostFront { looper, handler }
            } else {
                Action::Post {
                    looper,
                    handler,
                    delay_ms: delay,
                }
            });
        }
        if rng.gen_ratio(1, 3) {
            actions.push(Action::WriteScalar(var, h as i64));
        }
        p.handler(&format!("H{h}"), Body::from_actions(actions));
    }

    // Root handlers (not posted by other handlers) come from gestures
    // or threads.
    for h in 0..n_handlers {
        if posted_by[h].is_some() {
            continue;
        }
        let handler = HandlerId::from_index(h as u32);
        if rng.gen_ratio(1, 2) {
            p.gesture(rng.gen_range(0..20), looper, handler);
        } else {
            let delay = delays[rng.gen_range(0..delays.len())];
            let sleep = rng.gen_range(0..10);
            p.thread(
                proc,
                &format!("src{h}"),
                Body::from_actions(vec![
                    Action::Sleep(sleep),
                    Action::Post {
                        looper,
                        handler,
                        delay_ms: delay,
                    },
                ]),
            );
        }
    }
    p.build()
}

/// Processing order of events by handler name, per run.
fn processing_order(program: &Program, seed: u64) -> HashMap<String, usize> {
    let outcome = run(program, &SimConfig::with_seed(seed)).expect("random program runs");
    let trace = outcome.trace.expect("instrumented");
    let mut order = HashMap::new();
    for (_, q) in trace.queues() {
        for (pos, &ev) in q.events.iter().enumerate() {
            order.insert(trace.task_name(ev).to_owned(), pos);
        }
    }
    order
}

#[test]
fn derived_orderings_hold_in_every_schedule() {
    let mut checked_pairs = 0usize;
    for gen_seed in 0..25 {
        let program = random_program(gen_seed);

        // Derive the model from the seed-0 run.
        let outcome = run(&program, &SimConfig::with_seed(0)).expect("runs");
        let trace = outcome.trace.expect("instrumented");
        let model = HbModel::build(&trace, CausalityConfig::cafa())
            .unwrap_or_else(|e| panic!("program {gen_seed}: model builds: {e}"));

        // Collect all derived event-before pairs (by handler name).
        let events = model.events().to_vec();
        let mut hb_pairs: Vec<(String, String)> = Vec::new();
        for &e1 in &events {
            for &e2 in &events {
                if e1 != e2 && model.event_before(e1, e2) {
                    hb_pairs.push((
                        trace.task_name(e1).to_owned(),
                        trace.task_name(e2).to_owned(),
                    ));
                }
            }
        }

        // Every derived ordering must hold under every other schedule.
        for run_seed in 1..12 {
            let order = processing_order(&program, run_seed);
            for (n1, n2) in &hb_pairs {
                let (p1, p2) = (order[n1], order[n2]);
                assert!(
                    p1 < p2,
                    "program {gen_seed}, schedule {run_seed}: model says {n1} ≺ {n2}, \
                     but it was processed at {p2} before {p1}"
                );
                checked_pairs += 1;
            }
        }
    }
    assert!(
        checked_pairs > 1_000,
        "the test must exercise real orderings ({checked_pairs})"
    );
}

#[test]
fn conventional_model_is_coarser_on_single_looper_programs() {
    // On a single-queue program the conventional total event order
    // subsumes every CAFA event ordering, so conventional-concurrent
    // pairs are a subset of CAFA-concurrent pairs.
    for gen_seed in 0..10 {
        let program = random_program(gen_seed);
        let trace = run(&program, &SimConfig::with_seed(0))
            .unwrap()
            .trace
            .unwrap();
        let cafa = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let conv = HbModel::build(&trace, CausalityConfig::conventional()).unwrap();
        for &e1 in cafa.events() {
            for &e2 in cafa.events() {
                if e1 == e2 {
                    continue;
                }
                assert!(
                    !cafa.event_before(e1, e2) || conv.event_before(e1, e2),
                    "program {gen_seed}: CAFA orders {} ≺ {} but conventional does not",
                    trace.task_name(e1),
                    trace.task_name(e2),
                );
            }
        }
    }
}

#[test]
fn model_is_a_strict_partial_order() {
    for gen_seed in 0..10 {
        let program = random_program(gen_seed + 100);
        let trace = run(&program, &SimConfig::with_seed(3))
            .unwrap()
            .trace
            .unwrap();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let events = model.events().to_vec();
        // Antisymmetry.
        for &e1 in &events {
            assert!(!model.event_before(e1, e1), "irreflexive");
            for &e2 in &events {
                assert!(
                    !(model.event_before(e1, e2) && model.event_before(e2, e1)),
                    "antisymmetric"
                );
            }
        }
        // Transitivity.
        for &e1 in &events {
            for &e2 in &events {
                if !model.event_before(e1, e2) {
                    continue;
                }
                for &e3 in &events {
                    if model.event_before(e2, e3) {
                        assert!(model.event_before(e1, e3), "transitive");
                    }
                }
            }
        }
    }
}
