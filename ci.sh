#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline (see docs/OFFLINE.md).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> fleet determinism (table1 at 1 vs 4 workers)"
out1="$(CAFA_FLEET_THREADS=1 ./target/release/table1)"
out4="$(CAFA_FLEET_THREADS=4 ./target/release/table1)"
if [ "$out1" != "$out4" ]; then
    echo "FAIL: table1 output differs between 1 and 4 fleet workers" >&2
    exit 1
fi

echo "CI green."
