#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline (see docs/OFFLINE.md).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> oracle-vs-DFS differential suite (fixed-seed proptest)"
cargo test -p cafa-hb --test oracle_differential -q

echo "==> fixpoint engine differential suite (semi-naive vs naive)"
cargo test -p cafa-hb --test fixpoint_differential -q

echo "==> demand engine differential suite (lazy queries vs eager reference)"
cargo test -p cafa-hb --test demand_differential -q

echo "==> partition differential suite (islanded vs monolithic, byte-identical)"
cargo test -p cafa-core --test partition_differential -q

echo "==> predictive differential suite (predictive ⊆ HB, byte-stable, hb section untouched)"
cargo test -p cafa-predict --test predictive_differential -q

echo "==> scale sweep smoke (demand engine, 100k tier)"
./target/release/analysis_scaling --scale --quick > /dev/null

echo "==> fleet determinism (table1 at 1 vs 4 workers)"
out1="$(CAFA_FLEET_THREADS=1 ./target/release/table1)"
out4="$(CAFA_FLEET_THREADS=4 ./target/release/table1)"
if [ "$out1" != "$out4" ]; then
    echo "FAIL: table1 output differs between 1 and 4 fleet workers" >&2
    exit 1
fi

echo "==> replay validation sweep vs pinned confirmed-counts"
./target/release/cafa validate --format counts > /tmp/validate_counts.txt
if ! cmp -s /tmp/validate_counts.txt tests/golden/validate_counts.txt; then
    echo "FAIL: cafa validate counts differ from tests/golden/validate_counts.txt" >&2
    diff tests/golden/validate_counts.txt /tmp/validate_counts.txt >&2 || true
    exit 1
fi
rm -f /tmp/validate_counts.txt

echo "==> generated corpus gate (gen --seed 7 --count 50 through analyze vs pinned counts)"
./target/release/cafa gen --seed 7 --count 50 --format counts > /tmp/gen_counts.txt
if ! cmp -s /tmp/gen_counts.txt tests/golden/gen_counts.txt; then
    echo "FAIL: cafa gen counts differ from tests/golden/gen_counts.txt" >&2
    diff tests/golden/gen_counts.txt /tmp/gen_counts.txt >&2 || true
    exit 1
fi
for threads in 1 2 8; do
    ./target/release/cafa gen --seed 7 --count 50 --format counts --threads "$threads" \
        > /tmp/gen_counts.t$threads.txt
    if ! cmp -s /tmp/gen_counts.t$threads.txt tests/golden/gen_counts.txt; then
        echo "FAIL: cafa gen counts differ at --threads $threads" >&2
        exit 1
    fi
done
rm -f /tmp/gen_counts.txt /tmp/gen_counts.t*.txt

echo "==> predictive corpus gate (gen --detector both, replay-adjudicated, vs pinned counts)"
./target/release/cafa gen --seed 7 --count 50 --detector both --format counts \
    > /tmp/predict_counts.txt
if ! cmp -s /tmp/predict_counts.txt tests/golden/predict_counts.txt; then
    echo "FAIL: cafa gen --detector both counts differ from tests/golden/predict_counts.txt" >&2
    diff tests/golden/predict_counts.txt /tmp/predict_counts.txt >&2 || true
    exit 1
fi
for threads in 1 2 8; do
    ./target/release/cafa gen --seed 7 --count 50 --detector both --format counts \
        --threads "$threads" > /tmp/predict_counts.t$threads.txt
    if ! cmp -s /tmp/predict_counts.t$threads.txt tests/golden/predict_counts.txt; then
        echo "FAIL: cafa gen --detector both counts differ at --threads $threads" >&2
        exit 1
    fi
done
rm -f /tmp/predict_counts.txt /tmp/predict_counts.t*.txt

echo "==> predictive bench (BENCH_predict.json: extras/confirmed/FP/overhead)"
./target/release/analysis_scaling --predict > /dev/null

echo "==> streaming chunk invariance + thread determinism (all apps)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for app in connectbot mytracks zxing todolist browser firefox vlc fbreader camera music; do
    trace="$tmpdir/$app.bin"
    ./target/release/cafa record "$app" --format binary --out "$trace" > /dev/null
    ./target/release/cafa analyze "$trace" --format json > "$tmpdir/$app.batch.json"
    if ! cmp -s "$tmpdir/$app.batch.json" "tests/golden/reports/$app.json"; then
        echo "FAIL: $app batch report differs from pinned golden report" >&2
        exit 1
    fi
    # The default backend and an explicit --detector hb are the same
    # code path: both must stay bit-identical to the pinned goldens.
    ./target/release/cafa analyze "$trace" --format json --detector hb > "$tmpdir/$app.hb.json"
    if ! cmp -s "$tmpdir/$app.hb.json" "tests/golden/reports/$app.json"; then
        echo "FAIL: $app --detector hb report differs from pinned golden report" >&2
        exit 1
    fi
    for threads in 1 2 8; do
        ./target/release/cafa analyze "$trace" --format json --threads "$threads" \
            > "$tmpdir/$app.t$threads.json"
        if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.t$threads.json"; then
            echo "FAIL: $app analyzed with --threads $threads differs from default" >&2
            exit 1
        fi
        # The demand-driven query engine must reproduce every golden
        # report byte-for-byte, at every thread count.
        CAFA_HB_ENGINE=demand ./target/release/cafa analyze "$trace" --format json \
            --threads "$threads" > "$tmpdir/$app.demand.t$threads.json"
        if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.demand.t$threads.json"; then
            echo "FAIL: $app under CAFA_HB_ENGINE=demand differs at --threads $threads" >&2
            exit 1
        fi
        # Island-partitioned analysis must also reproduce every golden
        # report byte-for-byte, at every thread count and in both the
        # auto-policy and forced configurations.
        for mode in auto force; do
            ./target/release/cafa analyze "$trace" --format json --threads "$threads" \
                --partition "$mode" > "$tmpdir/$app.part.$mode.t$threads.json"
            if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.part.$mode.t$threads.json"; then
                echo "FAIL: $app under --partition $mode differs at --threads $threads" >&2
                exit 1
            fi
        done
    done
    for chunk in 1 13 4096; do
        ./target/release/cafa serve --chunk "$chunk" < "$trace" > "$tmpdir/$app.stream.json"
        if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.stream.json"; then
            echo "FAIL: $app streamed at chunk $chunk differs from batch analyze" >&2
            exit 1
        fi
    done
done

echo "==> island partition gate (scale corpus: auto/force vs monolithic at --threads 1/2/8)"
./target/release/cafa record scale:42:100000 --format binary --out "$tmpdir/scale42.bin" > /dev/null
./target/release/cafa analyze "$tmpdir/scale42.bin" --format json --partition off \
    > "$tmpdir/scale42.off.json"
for threads in 1 2 8; do
    for mode in auto force; do
        ./target/release/cafa analyze "$tmpdir/scale42.bin" --format json \
            --partition "$mode" --threads "$threads" > "$tmpdir/scale42.part.json"
        if ! cmp -s "$tmpdir/scale42.off.json" "$tmpdir/scale42.part.json"; then
            echo "FAIL: scale corpus --partition $mode differs at --threads $threads" >&2
            exit 1
        fi
    done
done
# Pin the corpus-level counts so a partition bug that shifts both paths
# in lockstep still trips the gate.
grep -E '"events"|"candidate_vars"|"pairs_checked"' "$tmpdir/scale42.off.json" \
    | tr -d ' ' > "$tmpdir/scale42.counts.txt"
if ! cmp -s "$tmpdir/scale42.counts.txt" tests/golden/scale42_counts.txt; then
    echo "FAIL: scale corpus counts differ from tests/golden/scale42_counts.txt" >&2
    diff tests/golden/scale42_counts.txt "$tmpdir/scale42.counts.txt" >&2 || true
    exit 1
fi

echo "==> fleet ingest server gate (10 concurrent sessions at --threads 1/2/8)"
apps=(connectbot mytracks zxing todolist browser firefox vlc fbreader camera music)
chunks=(7 64 389 1024 4096 7 64 389 1024 4096)
servedir="$tmpdir/serve-state"
start_serve() { # args: extra serve flags; sets $serve_pid and $addr
    : > "$tmpdir/serve.log"
    ./target/release/cafa serve --listen 127.0.0.1:0 "$@" 2> "$tmpdir/serve.log" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 200); do
        addr="$(sed -n 's/^listening on //p' "$tmpdir/serve.log" | head -n1)"
        [ -n "$addr" ] && break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "FAIL: cafa serve did not announce its address" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    fi
}
for threads in 1 2 8; do
    rm -rf "$servedir"
    start_serve --threads "$threads" --state-dir "$servedir"
    pids=()
    for i in "${!apps[@]}"; do
        app="${apps[$i]}"
        ./target/release/cafa push "$tmpdir/$app.bin" --connect "$addr" \
            --session "$app" --chunk "${chunks[$i]}" \
            > "$tmpdir/$app.push.json" 2> /dev/null &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        if ! wait "$pid"; then
            echo "FAIL: cafa push failed against serve --threads $threads" >&2
            exit 1
        fi
    done
    for app in "${apps[@]}"; do
        if ! cmp -s "$tmpdir/$app.push.json" "tests/golden/reports/$app.json"; then
            echo "FAIL: $app served report differs from golden at --threads $threads" >&2
            exit 1
        fi
    done
    kill "$serve_pid" 2> /dev/null || true
    wait "$serve_pid" 2> /dev/null || true
done

echo "==> fleet ingest server gate (kill mid-stream, restart, resume byte-identically)"
rm -rf "$servedir"
start_serve --threads 2 --state-dir "$servedir"
app=camera
size=$(stat -c%s "$tmpdir/$app.bin")
cut=$((size / 2))
head -c "$cut" "$tmpdir/$app.bin" > "$tmpdir/$app.half.bin"
# A push that ends mid-trace detaches cleanly (exit 0, state journaled).
if ! ./target/release/cafa push "$tmpdir/$app.half.bin" --connect "$addr" \
        --session "$app" > /dev/null 2> "$tmpdir/push.log"; then
    echo "FAIL: mid-trace push did not detach cleanly" >&2
    cat "$tmpdir/push.log" >&2
    exit 1
fi
grep -q "detached at byte $cut" "$tmpdir/push.log" || {
    echo "FAIL: detach did not report the journaled offset" >&2
    cat "$tmpdir/push.log" >&2
    exit 1
}
kill -TERM "$serve_pid"
wait "$serve_pid" 2> /dev/null || true
start_serve --threads 2 --state-dir "$servedir"
if ! ./target/release/cafa push "$tmpdir/$app.bin" --connect "$addr" \
        --session "$app" > "$tmpdir/$app.resumed.json" 2> "$tmpdir/push.log"; then
    echo "FAIL: resumed push failed after server restart" >&2
    cat "$tmpdir/push.log" >&2
    exit 1
fi
grep -q "resumed at byte $cut" "$tmpdir/push.log" || {
    echo "FAIL: restarted server did not resume from the journaled offset" >&2
    cat "$tmpdir/push.log" >&2
    exit 1
}
if ! cmp -s "$tmpdir/$app.resumed.json" "tests/golden/reports/$app.json"; then
    echo "FAIL: $app report after kill+restart differs from golden" >&2
    exit 1
fi
kill "$serve_pid" 2> /dev/null || true
wait "$serve_pid" 2> /dev/null || true

echo "CI green."
