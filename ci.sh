#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline (see docs/OFFLINE.md).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> oracle-vs-DFS differential suite (fixed-seed proptest)"
cargo test -p cafa-hb --test oracle_differential -q

echo "==> fixpoint engine differential suite (semi-naive vs naive)"
cargo test -p cafa-hb --test fixpoint_differential -q

echo "==> fleet determinism (table1 at 1 vs 4 workers)"
out1="$(CAFA_FLEET_THREADS=1 ./target/release/table1)"
out4="$(CAFA_FLEET_THREADS=4 ./target/release/table1)"
if [ "$out1" != "$out4" ]; then
    echo "FAIL: table1 output differs between 1 and 4 fleet workers" >&2
    exit 1
fi

echo "==> replay validation sweep vs pinned confirmed-counts"
./target/release/cafa validate --format counts > /tmp/validate_counts.txt
if ! cmp -s /tmp/validate_counts.txt tests/golden/validate_counts.txt; then
    echo "FAIL: cafa validate counts differ from tests/golden/validate_counts.txt" >&2
    diff tests/golden/validate_counts.txt /tmp/validate_counts.txt >&2 || true
    exit 1
fi
rm -f /tmp/validate_counts.txt

echo "==> generated corpus gate (gen --seed 7 --count 50 through analyze vs pinned counts)"
./target/release/cafa gen --seed 7 --count 50 --format counts > /tmp/gen_counts.txt
if ! cmp -s /tmp/gen_counts.txt tests/golden/gen_counts.txt; then
    echo "FAIL: cafa gen counts differ from tests/golden/gen_counts.txt" >&2
    diff tests/golden/gen_counts.txt /tmp/gen_counts.txt >&2 || true
    exit 1
fi
for threads in 1 2 8; do
    ./target/release/cafa gen --seed 7 --count 50 --format counts --threads "$threads" \
        > /tmp/gen_counts.t$threads.txt
    if ! cmp -s /tmp/gen_counts.t$threads.txt tests/golden/gen_counts.txt; then
        echo "FAIL: cafa gen counts differ at --threads $threads" >&2
        exit 1
    fi
done
rm -f /tmp/gen_counts.txt /tmp/gen_counts.t*.txt

echo "==> streaming chunk invariance + thread determinism (all apps)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for app in connectbot mytracks zxing todolist browser firefox vlc fbreader camera music; do
    trace="$tmpdir/$app.bin"
    ./target/release/cafa record "$app" --format binary --out "$trace" > /dev/null
    ./target/release/cafa analyze "$trace" --format json > "$tmpdir/$app.batch.json"
    if ! cmp -s "$tmpdir/$app.batch.json" "tests/golden/reports/$app.json"; then
        echo "FAIL: $app batch report differs from pinned golden report" >&2
        exit 1
    fi
    for threads in 1 2 8; do
        ./target/release/cafa analyze "$trace" --format json --threads "$threads" \
            > "$tmpdir/$app.t$threads.json"
        if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.t$threads.json"; then
            echo "FAIL: $app analyzed with --threads $threads differs from default" >&2
            exit 1
        fi
    done
    for chunk in 1 13 4096; do
        ./target/release/cafa serve --chunk "$chunk" < "$trace" > "$tmpdir/$app.stream.json"
        if ! cmp -s "$tmpdir/$app.batch.json" "$tmpdir/$app.stream.json"; then
            echo "FAIL: $app streamed at chunk $chunk differs from batch analyze" >&2
            exit 1
        fi
    done
done

echo "CI green."
