//! # CAFA-rs
//!
//! A reproduction of *"Race Detection for Event-Driven Mobile
//! Applications"* (Yu et al., PLDI 2014): the CAFA causality model and
//! use-free race detector for Android-style event-driven programs,
//! plus the simulator substrate and workloads that regenerate the
//! paper's evaluation.
//!
//! This facade re-exports the workspace crates under short names:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`trace`] | `cafa-trace` | trace model, builder, validation, serialization |
//! | [`hb`] | `cafa-hb` | happens-before model (§3): rules, fixpoint, queries |
//! | [`engine`] | `cafa-engine` | analysis sessions, cached models, passes, fleet runner |
//! | [`detect`] | `cafa-core` | use-free race detector (§4) + baselines |
//! | [`stream`] | `cafa-stream` | streaming ingestion + incremental analysis |
//! | [`fleetserve`] | `cafa-fleetserve` | multi-tenant ingest server: sessions, eviction, crash-safe restart |
//! | [`sim`] | `cafa-sim` | Android-like runtime simulator (§5 substitute) |
//! | [`apps`] | `cafa-apps` | the ten evaluated app workloads + ground truth |
//! | [`replay`] | `cafa-replay` | directed schedule synthesis + replay validation of reports |
//!
//! # Examples
//!
//! Record a workload and analyze it:
//!
//! ```
//! use cafa::prelude::*;
//!
//! let mut p = ProgramBuilder::new("demo");
//! let proc = p.process();
//! let looper = p.looper(proc);
//! let ptr = p.ptr_var_alloc();
//! let use_h = p.handler("useIt", Body::new().use_ptr(ptr));
//! let free_h = p.handler("freeIt", Body::new().free(ptr));
//! p.thread(proc, "s1", Body::new().post(looper, use_h, 0));
//! p.thread(proc, "s2", Body::new().post(looper, free_h, 5));
//! let program = p.build();
//!
//! let report = cafa::record_and_analyze(&program, 0).unwrap();
//! assert_eq!(report.races.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cafa_apps as apps;
pub use cafa_core as detect;
pub use cafa_engine as engine;
pub use cafa_fleetserve as fleetserve;
pub use cafa_hb as hb;
pub use cafa_replay as replay;
pub use cafa_sim as sim;
pub use cafa_stream as stream;
pub use cafa_trace as trace;

/// The names most programs need: program building, simulation, model
/// construction, and detection.
pub mod prelude {
    pub use cafa_core::{Analyzer, DetectorConfig, RaceClass, RaceReport};
    pub use cafa_engine::AnalysisSession;
    pub use cafa_hb::{CausalityConfig, HbModel, OpOrder};
    pub use cafa_sim::{run, Action, Body, InstrumentConfig, Program, ProgramBuilder, SimConfig};
    pub use cafa_trace::{OpRef, Trace, TraceBuilder};
}

/// One-call convenience: simulate `program` under `seed` with full
/// instrumentation and run the CAFA detector on the recorded trace.
///
/// # Errors
///
/// Returns an error string when the simulation fails (deadlock, step
/// budget) or the trace implies an inconsistent happens-before
/// relation.
pub fn record_and_analyze(program: &sim::Program, seed: u64) -> Result<detect::RaceReport, String> {
    let outcome = sim::run(program, &sim::SimConfig::with_seed(seed)).map_err(|e| e.to_string())?;
    let trace = outcome.trace.expect("instrumentation is on by default");
    detect::Analyzer::new()
        .analyze(&trace)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn record_and_analyze_roundtrip() {
        use crate::prelude::*;
        let mut p = ProgramBuilder::new("facade");
        let proc = p.process();
        let looper = p.looper(proc);
        let v = p.scalar_var(0);
        let h = p.handler("noop", Body::new().read(v));
        p.gesture(0, looper, h);
        let report = crate::record_and_analyze(&p.build(), 0).unwrap();
        assert!(report.races.is_empty());
        assert_eq!(report.stats.events, 1);
    }
}
