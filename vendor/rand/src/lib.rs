//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The development environment cannot reach crates.io, so the workspace
//! vendors the exact slice of `rand` it uses. Compatibility is
//! *bit-for-bit*: [`rngs::SmallRng`] is the same xoshiro256++ generator
//! as upstream `rand` 0.8.5 (including `seed_from_u64`'s SplitMix64
//! expansion and the upper-bits `next_u32`), and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen_ratio`]
//! distributions reproduce upstream's widening-multiply rejection
//! sampling and Bernoulli scaling. Seeded simulator schedules — and so
//! every reproduced paper number — therefore match values recorded with
//! the real crate. Verified against upstream reference vectors in the
//! tests below.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly as upstream `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        // Upstream `Bernoulli::new`: p scaled to a u64 threshold.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator {numerator} > denominator {denominator}"
        );
        if numerator == denominator {
            return true;
        }
        // Upstream `Bernoulli::from_ratio` goes through f64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = ((f64::from(numerator) / f64::from(denominator)) * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// True when the range contains no values.
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }

    // Negated form mirrors upstream exactly (NaN-exclusive ranges are
    // "empty" even though `start >= end` would say otherwise).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }

    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn is_empty(&self) -> bool {
        !(self.start() <= self.end())
    }
}

/// Implements upstream `uniform_int_impl!`: widening-multiply with zone
/// rejection. `$u_large` is the sampling width (u32 for sub-word types).
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident, $wmul:ident) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            #[inline]
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // If the range covers the whole type, all values are accepted.
                if range == 0 {
                    return $gen(rng) as $ty;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types: compute the exact rejection zone.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = $gen(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

#[inline]
fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
    rng.next_u32()
}

#[inline]
fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    rng.next_u64()
}

#[inline]
#[allow(clippy::cast_possible_truncation)]
fn gen_usize<R: RngCore + ?Sized>(rng: &mut R) -> usize {
    // 64-bit targets only (checked by the workspace's supported platforms).
    rng.next_u64() as usize
}

#[inline]
fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let full = u64::from(a) * u64::from(b);
    ((full >> 32) as u32, full as u32)
}

#[inline]
fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let full = u128::from(a) * u128::from(b);
    ((full >> 64) as u64, full as u64)
}

#[inline]
fn wmul_usize(a: usize, b: usize) -> (usize, usize) {
    let (hi, lo) = wmul_u64(a as u64, b as u64);
    (hi as usize, lo as usize)
}

uniform_int_impl! { i8, u8, u32, gen_u32, wmul_u32 }
uniform_int_impl! { i16, u16, u32, gen_u32, wmul_u32 }
uniform_int_impl! { i32, u32, u32, gen_u32, wmul_u32 }
uniform_int_impl! { i64, u64, u64, gen_u64, wmul_u64 }
uniform_int_impl! { u8, u8, u32, gen_u32, wmul_u32 }
uniform_int_impl! { u16, u16, u32, gen_u32, wmul_u32 }
uniform_int_impl! { u32, u32, u32, gen_u32, wmul_u32 }
uniform_int_impl! { u64, u64, u64, gen_u64, wmul_u64 }
uniform_int_impl! { usize, usize, usize, gen_usize, wmul_usize }
uniform_int_impl! { isize, usize, usize, gen_usize, wmul_usize }

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The `rand` 0.8 small generator: xoshiro256++.
    ///
    /// State transition, output mix, `next_u32` (upper bits), and
    /// zero-seed handling all match upstream exactly.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The lowest bits have some linear dependencies, so upstream
            // uses the upper bits — match that.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }
    }

    /// Alias kept for API compatibility; the workspace never constructs
    /// it from entropy, so a deterministic small generator suffices.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Upstream `rand` 0.8.5 `xoshiro256plusplus::tests::reference`:
    /// seed words 1,2,3,4 little-endian, first ten outputs from the
    /// reference C implementation.
    #[test]
    fn xoshiro256plusplus_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// `seed_from_u64` must go through SplitMix64; spot-check the first
    /// expanded word (0 -> SplitMix64 first output).
    #[test]
    fn seed_from_u64_uses_splitmix() {
        let a = SmallRng::seed_from_u64(0);
        let b = SmallRng::seed_from_u64(0);
        assert_eq!(a, b);
        // SplitMix64(0) first output.
        let mut state = 0u64.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        let first = z;
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let _ = state;
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&first.to_le_bytes());
        // Only verifies the first word; full determinism is covered above.
        let from_seed_first_word = {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&seed[..8]);
            s
        };
        assert_eq!(from_seed_first_word[..8], first.to_le_bytes());
    }

    #[test]
    fn gen_range_is_in_bounds_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..17usize);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0..17usize));
        }
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = r.gen_range(5u64..6);
            assert_eq!(v, 5);
            let w = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_ratio(3, 3));
        assert!(!r.gen_ratio(0, 5));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
