//! Offline vendored subset of the `proptest` API.
//!
//! Implements only what the workspace's property tests use (see
//! Cargo.toml). Values are generated deterministically from a seed
//! derived from the test name, so runs are reproducible; there is no
//! shrinking — a failing case reports the raw counterexample.

#![forbid(unsafe_code)]

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of generated values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $ty
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize);

    /// String strategy from a pattern. Supports the `[c1-c2...]{m,n}`
    /// subset of regex the workspace uses; any other pattern is
    /// treated as a literal.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, min, max)) => {
                    let len = min + (rng.next_u64() as usize) % (max - min + 1);
                    (0..len)
                        .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[class]{m,n}` into (alphabet, m, n).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let counts = rest.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() || max < min {
            return None;
        }
        Some((chars, min, max))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/a)
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
        (A/a, B/b, C/c, D/d, E/e)
        (A/a, B/b, C/c, D/d, E/e, F/f)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (subset of `proptest::arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    ($(<$t as Arbitrary>::arbitrary_value(rng),)+)
                }
            }
        )*};
    }
    arb_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Strategy for any `Arbitrary` type; returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vector length range (subset of `proptest::collection::SizeRange`).
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a strategy for vectors.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;

    /// Deterministic generator driving value production (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A test-case failure (subset of `proptest::test_runner::TestCaseError`).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Runs a property over `cases` deterministic inputs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `test` on `cases` values from `strategy`, seeded from
        /// `name` so every build explores the same inputs.
        pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, test: F)
        where
            S: Strategy,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
            S::Value: std::fmt::Debug + Clone,
        {
            let base = fnv1a(name.as_bytes());
            for case in 0..self.config.cases {
                let mut rng =
                    TestRng::new(base ^ (u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)));
                let value = strategy.new_value(&mut rng);
                if let Err(e) = test(value.clone()) {
                    panic!("proptest `{name}` failed at case {case}: {e}\n  input: {value:?}");
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run_named(
                    stringify!($name),
                    &($($strat,)+),
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition, failing the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality, failing the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality, failing the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_strategy_respects_class_and_counts() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = "[ -~]{0,40}".new_value(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 0..400).new_value(&mut rng);
            assert!(v.len() < 400);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, pair in any::<(u16, u8)>()) {
            prop_assert!(x < 100);
            prop_assert_ne!(u64::from(pair.0) + 1, 0);
            if x == u64::MAX {
                return Ok(());
            }
            prop_assert_eq!(x, x, "identity for {}", x);
        }
    }
}
