//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! Supports the workspace's bench files: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. When invoked by
//! `cargo bench` (cargo passes `--bench`) each benchmark runs a short
//! timed loop and prints the median iteration time; when invoked by
//! `cargo test` each closure runs once as a smoke test, mirroring real
//! criterion's test mode.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times a single benchmark's iterations.
pub struct Bencher {
    mode: Mode,
    /// Median per-iteration time, filled by `iter`.
    measured: Option<Duration>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `cargo bench`: timed loop.
    Measure { samples: usize },
    /// `cargo test`: one smoke iteration.
    Smoke,
}

impl Bencher {
    /// Calls `f` repeatedly and records its median wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(f());
            }
            Mode::Measure { samples } => {
                // One warm-up, then `samples` timed iterations.
                std::hint::black_box(f());
                let mut times: Vec<Duration> = (0..samples)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(f());
                        start.elapsed()
                    })
                    .collect();
                times.sort_unstable();
                self.measured = Some(times[times.len() / 2]);
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        self.run(&label, |b| f(b));
        self
    }

    /// Ends the group. (Reports are emitted per benchmark.)
    pub fn finish(&mut self) {}

    fn run<F: FnOnce(&mut Bencher)>(&self, label: &str, f: F) {
        let mode = if self.criterion.measure {
            Mode::Measure {
                samples: self.sample_size,
            }
        } else {
            Mode::Smoke
        };
        let mut bencher = Bencher {
            mode,
            measured: None,
        };
        f(&mut bencher);
        if let Some(median) = bencher.measured {
            match self.throughput {
                Some(Throughput::Bytes(bytes)) => {
                    let mbps = bytes as f64 / median.as_secs_f64() / 1e6;
                    println!("{label:<48} median {median:>12?}  {mbps:>9.1} MB/s");
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / median.as_secs_f64();
                    println!("{label:<48} median {median:>12?}  {eps:>9.0} elem/s");
                }
                None => println!("{label:<48} median {median:>12?}"),
            }
        }
    }
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test passes nothing.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        };
        let mut f = f;
        group.run(name, |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (bench files use
/// `std::hint::black_box` directly, but the symbol is part of the API).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_closure_once() {
        let mut c = Criterion { measure: false };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("once", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion { measure: true };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.throughput(Throughput::Bytes(1024));
            group.bench_with_input(BenchmarkId::new("f", "x"), &3u32, |b, i| {
                b.iter(|| runs += *i)
            });
            group.finish();
        }
        // 1 warm-up + 5 samples, each adding 3.
        assert_eq!(runs, 18);
    }
}
