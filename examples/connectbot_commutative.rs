//! Why CAFA is effect-oriented: ConnectBot's Figure 2 read-write race
//! is real at the memory level but harmless, and Figure 5's guarded and
//! re-allocating events are commutative. A conventional definition
//! drowns in such reports; CAFA's use-free focus plus the §4.3
//! heuristics stay quiet.
//!
//! Run with: `cargo run --example connectbot_commutative`

use cafa::detect::lowlevel::count_races;
use cafa::detect::{Analyzer, DetectorConfig, FilterReason};
use cafa::hb::CausalityConfig;
use cafa::sim::{run, Body, ProgramBuilder, SimConfig};

fn main() {
    let mut p = ProgramBuilder::new("connectbot-like");
    let pr = p.process();
    let l = p.looper(pr);

    // ---- Figure 2: onPause writes resizeAllowed, onLayout reads it ----
    let resize_allowed = p.scalar_var(1);
    let on_pause_fig2 = p.handler("onPause#fig2", Body::new().write(resize_allowed, 0));
    let on_layout = p.handler(
        "onLayout",
        Body::new().read(resize_allowed).read(resize_allowed),
    );

    // ---- Figure 5: handler freed by onPause, guarded use in onFocus,
    //      re-allocating use in onResume --------------------------------
    let handler_ptr = p.ptr_var_alloc();
    let on_pause_fig5 = p.handler("onPause#fig5", Body::new().free(handler_ptr));
    let on_focus = p.handler("onFocus", Body::new().guarded_use(handler_ptr));
    let on_resume = p.handler(
        "onResume",
        Body::new().alloc(handler_ptr).use_ptr(handler_ptr),
    );

    // Each event is posted by its own thread with strictly *decreasing*
    // delays, so no queue rule orders any pair: all five events are
    // logically concurrent (posting with increasing delays would order
    // them FIFO under queue rule 1).
    let handlers = [on_layout, on_focus, on_resume, on_pause_fig2, on_pause_fig5];
    for (i, h) in handlers.into_iter().enumerate() {
        let src = format!("src{i}");
        p.thread(
            pr,
            &src,
            Body::new().post(l, h, (handlers.len() - i) as u64),
        );
    }
    let program = p.build();

    let outcome = run(&program, &SimConfig::with_seed(7)).unwrap();
    assert!(
        !outcome.crashed(),
        "all patterns are commutative: no NPE in any order"
    );
    let trace = outcome.trace.unwrap();

    // ---- Conventional definition: plenty of races -----------------------
    let lowlevel = count_races(&trace, CausalityConfig::cafa()).unwrap();
    println!(
        "low-level conflicting-access definition: {} racy statement pair(s)",
        lowlevel.racy_pairs
    );
    assert!(
        lowlevel.racy_pairs >= 1,
        "figure 2's read-write conflict is there"
    );

    // ---- CAFA: zero reports, heuristics explain why ----------------------
    let report = Analyzer::new().analyze(&trace).unwrap();
    println!("CAFA use-free reports: {}", report.races.len());
    for f in &report.filtered {
        println!("  candidate on {} filtered by {}", f.var, f.reason);
    }
    assert_eq!(report.races.len(), 0);
    let reasons: Vec<FilterReason> = report.filtered.iter().map(|f| f.reason).collect();
    assert!(
        reasons.contains(&FilterReason::IfGuard),
        "onFocus is if-guarded"
    );
    assert!(
        reasons.contains(&FilterReason::AllocBeforeUse),
        "onResume re-allocates"
    );

    // ---- Without the heuristics: the candidates come back ---------------
    let noisy = Analyzer::with_config(DetectorConfig::unfiltered())
        .analyze(&trace)
        .unwrap();
    println!("without §4.3 heuristics: {} report(s)", noisy.races.len());
    assert!(noisy.races.len() >= 2);
    println!("=> effect-oriented + commutativity filtering is what keeps precision at 60%.");
}
