//! Exploring the schedule space: how many distinct event orders a
//! program really has, and how often its bug bites.
//!
//! Run with: `cargo run --example schedule_exploration`

use cafa::sim::{explore::explore, Body, ProgramBuilder};

fn main() {
    // Three user actions race with a teardown: the scheduler decides.
    let mut p = ProgramBuilder::new("exploration");
    let pr = p.process();
    let l = p.looper(pr);
    let doc = p.ptr_var_alloc();
    let open_h = p.handler("onOpen", Body::new().use_ptr(doc));
    let edit_h = p.handler("onEdit", Body::new().use_ptr(doc));
    let close_h = p.handler("onClose", Body::new().free(doc));
    p.thread(pr, "src1", Body::new().post(l, open_h, 0));
    p.thread(pr, "src2", Body::new().post(l, edit_h, 0));
    p.thread(pr, "src3", Body::new().post(l, close_h, 0));
    let program = p.build();

    let summary = explore(&program, 64).unwrap();
    println!(
        "{} schedules: {} distinct event orders, {} crashed ({}%)",
        summary.schedules,
        summary.distinct_orders,
        summary.crashed,
        100 * summary.crashed / summary.schedules,
    );
    assert!(summary.distinct_orders > 1, "the scheduler explores orders");
    assert!(summary.crashed > 0, "some orders free before using");
    assert!(
        summary.crashed < summary.schedules,
        "some orders are benign"
    );

    // Detection does not depend on being lucky: any crash-free seed's
    // trace reports the races.
    let clean_seed = (0..64)
        .find(|&s| {
            !cafa::sim::run(&program, &cafa::sim::SimConfig::with_seed(s))
                .unwrap()
                .crashed()
        })
        .expect("some schedule is clean");
    let report = cafa::record_and_analyze(&program, clean_seed).unwrap();
    println!(
        "from clean schedule {clean_seed}: {} race(s) found",
        report.races.len()
    );
    assert_eq!(
        report.races.len(),
        2,
        "onOpen-vs-onClose and onEdit-vs-onClose"
    );
}
