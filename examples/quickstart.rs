//! Quickstart: hand-build a trace of the paper's Figure 1 scenario and
//! detect the use-free race.
//!
//! Run with: `cargo run --example quickstart`

use cafa::detect::{Analyzer, RaceClass};
use cafa::engine::AnalysisSession;
use cafa::hb::CausalityConfig;
use cafa::trace::{DerefKind, ObjId, Pc, TraceBuilder, VarId};

fn main() {
    // ---- 1. Record (or build) a trace --------------------------------
    //
    // The MyTracks bug: onResume binds a service over Binder; the
    // service's response posts onServiceConnected, which uses
    // `providerUtils`; the user's onDestroy frees it. Nothing orders
    // the last two events.
    let mut b = TraceBuilder::new("MyTracks");
    let app = b.add_process();
    let main_queue = b.add_queue(app);
    let service = b.add_process();
    let binder = b.add_thread(service, "binder-ipc");

    let provider_utils = VarId::new(0);
    let track_obj = ObjId::new(1);

    let on_resume = b.external(main_queue, "onResume");
    b.process_event(on_resume);
    let (txn, _) = b.rpc_call(on_resume); // bind(TrackRecordingService)
    b.rpc_handle(binder, txn);
    let connected = b.post(binder, main_queue, "onServiceConnected", 0);
    let on_destroy = b.external(main_queue, "onDestroy");

    b.process_event(connected);
    b.obj_read(connected, provider_utils, Some(track_obj), Pc::new(0x1010));
    b.deref(connected, track_obj, Pc::new(0x1014), DerefKind::Invoke); // updateTrack(...)

    b.process_event(on_destroy);
    b.obj_write(on_destroy, provider_utils, None, Pc::new(0x2010)); // providerUtils = null

    let trace = b.finish().expect("well-formed trace");
    println!(
        "trace: {} events, {} records",
        trace.stats().events,
        trace.stats().records
    );

    // ---- 2. Ask the causality model ----------------------------------
    //
    // A session owns the derived state for one trace: models are built
    // once per causality config and shared with the detector below.
    let session = AnalysisSession::new(&trace);
    let model = session.model(CausalityConfig::cafa()).unwrap();
    println!(
        "onServiceConnected and onDestroy concurrent under CAFA? {}",
        model.concurrent_events(connected, on_destroy)
    );
    let conventional = session.model(CausalityConfig::conventional()).unwrap();
    println!(
        "... and under a conventional (total event order) model? {}",
        conventional.concurrent_events(connected, on_destroy)
    );

    // ---- 3. Detect races ----------------------------------------------
    let report = Analyzer::new().analyze_with(&session).unwrap();
    print!("{}", report.render(&trace));
    assert_eq!(report.races.len(), 1);
    assert_eq!(report.races[0].class, RaceClass::IntraThread);
    println!("=> the Figure 1 use-after-free, found.");
}
