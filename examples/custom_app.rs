//! Authoring your own workload: model an app with the simulator's
//! program API, record traces under many schedules, and analyze them.
//!
//! The app is a small image-gallery: a grid activity, a decoder
//! service, and a prefetch thread — with one deliberate teardown bug.
//!
//! Run with: `cargo run --example custom_app`

use cafa::detect::Analyzer;
use cafa::sim::{run, Action, Body, InstrumentConfig, ProgramBuilder, SimConfig};
use cafa::trace::DerefKind;

fn main() {
    let mut p = ProgramBuilder::new("gallery");
    let app = p.process();
    let main = p.looper(app);

    // Shared state: the decoded-thumbnail cache and a scroll position.
    let cache = p.ptr_var_alloc();
    let scroll_pos = p.scalar_var(0);

    // The decoder lives in its own process behind Binder.
    let svcp = p.process();
    let decoder = p.service(svcp, "ThumbnailDecoder");

    // onThumbReady uses the cache — posted by the decoder when a
    // thumbnail finishes.
    let on_thumb_ready = p.handler(
        "onThumbReady",
        Body::from_actions(vec![
            Action::UsePtr {
                var: cache,
                kind: DerefKind::Invoke,
                catch_npe: false,
            },
            Action::WriteScalar(scroll_pos, 1),
        ]),
    );
    let decode = p.method(decoder, "decode", Body::new().post(main, on_thumb_ready, 0));

    // Scrolling asks the decoder for more thumbnails (async Binder).
    let on_scroll = p.handler(
        "onScroll",
        Body::from_actions(vec![
            Action::ReadScalar(scroll_pos),
            Action::CallAsync {
                service: decoder,
                method: decode,
            },
        ]),
    );

    // THE BUG: onTrimMemory drops the cache without synchronizing with
    // in-flight decode results.
    let on_trim = p.handler("onTrimMemory", Body::new().free(cache));

    // A prefetch thread warms the cache at startup, then hands off.
    p.thread(
        app,
        "prefetch",
        Body::from_actions(vec![
            Action::AllocPtr(cache),
            Action::Post {
                looper: main,
                handler: on_scroll,
                delay_ms: 0,
            },
        ]),
    );

    // User interaction: scroll twice, then the system trims memory.
    p.gesture(5, main, on_scroll);
    p.gesture(12, main, on_scroll);
    p.gesture(40, main, on_trim);

    let program = p.build();

    // ---- record under several schedules, analyze each --------------------
    let mut total_races = 0;
    for seed in [1u64, 7, 23] {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::full();
        let mut outcome = run(&program, &config).unwrap();
        let trace = outcome.trace.take().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        println!(
            "seed {seed}: {} events, {} races, crashed={}",
            trace.stats().events,
            report.races.len(),
            outcome.crashed(),
        );
        for race in &report.races {
            println!(
                "    {} use in {} vs free in {}",
                race.class,
                trace.task_name(race.use_site.at.task),
                trace.task_name(race.free_site.at.task),
            );
        }
        total_races += report.races.len();
    }
    assert!(total_races > 0, "the teardown bug is detectable");
    println!("=> onThumbReady races onTrimMemory: synchronize the cache teardown.");
}
