//! The MyTracks bug, end to end through the simulator: record the
//! workload, show that the race only *crashes* under unlucky schedules,
//! and show that CAFA finds it from a crash-free trace.
//!
//! Run with: `cargo run --example mytracks_bug`

use cafa::detect::Analyzer;
use cafa::sim::{run, Action, Body, ProgramBuilder, SimConfig};

fn main() {
    // A minimal MyTracks: the service connection posts the using event
    // while the user's destroy gesture frees the pointer. Unlike the
    // bundled `cafa_apps` workload, the two events land close together
    // so schedules can flip their order.
    let build = || {
        let mut p = ProgramBuilder::new("mini-mytracks");
        let app = p.process();
        let main = p.looper(app);
        let provider_utils = p.ptr_var_alloc();

        let connected = p.handler("onServiceConnected", Body::new().use_ptr(provider_utils));
        let svcp = p.process();
        let svc = p.service(svcp, "TrackRecordingService");
        let bind = p.method(svc, "onBind", Body::new().post(main, connected, 0));
        let resume = p.handler(
            "onResume",
            Body::from_actions(vec![Action::CallAsync {
                service: svc,
                method: bind,
            }]),
        );
        let destroy = p.handler("onDestroy", Body::new().free(provider_utils));
        p.gesture(0, main, resume);
        // The destroy comes from the activity-manager thread racing the
        // Binder reply: which one posts first depends on the schedule.
        p.thread(app, "activity-manager", Body::new().post(main, destroy, 0));
        p.build()
    };

    // ---- 1. The bug is schedule-dependent ------------------------------
    let mut crashes = 0;
    let mut clean = 0;
    let mut clean_seed = None;
    for seed in 0..32 {
        let outcome = run(&build(), &SimConfig::with_seed(seed)).unwrap();
        if outcome.crashed() {
            crashes += 1;
        } else {
            clean += 1;
            clean_seed.get_or_insert(seed);
        }
    }
    println!("32 schedules: {crashes} crash with an NPE, {clean} run clean");
    assert!(
        crashes > 0 && clean > 0,
        "the bug should be schedule-dependent"
    );

    // ---- 2. CAFA finds it from a CLEAN run ------------------------------
    // This is the whole point of predictive race detection: no crash
    // needs to be observed.
    let seed = clean_seed.unwrap();
    let outcome = run(&build(), &SimConfig::with_seed(seed)).unwrap();
    assert!(!outcome.crashed());
    let trace = outcome.trace.unwrap();
    let report = Analyzer::new().analyze(&trace).unwrap();
    print!("{}", report.render(&trace));
    assert_eq!(report.races.len(), 1);
    println!("=> found from crash-free schedule {seed}, before any user ever hits it.");
}
