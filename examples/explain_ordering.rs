//! Asking the model *why*: causal chains behind derived orderings.
//!
//! Detectors that just say "concurrent" are hard to trust; `explain`
//! returns the edge path that orders two operations, so you can see
//! which rule (send, RPC, atomicity, queue rule) does the work.
//!
//! Run with: `cargo run --example explain_ordering`

use cafa::engine::AnalysisSession;
use cafa::hb::{CausalityConfig, EdgeKind};
use cafa::sim::{run, Action, Body, ProgramBuilder, SimConfig};
use cafa::trace::OpRef;

fn main() {
    // onCreate issues a sync RPC to a settings service, then posts the
    // render event; a config thread wrote the theme before the service
    // handled the call. Why is the theme write ordered before render?
    let mut p = ProgramBuilder::new("explained");
    let app = p.process();
    let main = p.looper(app);
    let svcp = p.process();
    let theme = p.scalar_var(0);

    let svc = p.service(svcp, "settings");
    let get = p.method(svc, "getTheme", Body::new().read(theme));
    let render = p.handler("onRender", Body::new().read(theme));
    let create = p.handler(
        "onCreate",
        Body::from_actions(vec![
            Action::Call {
                service: svc,
                method: get,
            },
            Action::Post {
                looper: main,
                handler: render,
                delay_ms: 0,
            },
        ]),
    );
    p.gesture(0, main, create);
    let program = p.build();

    let trace = run(&program, &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let model = AnalysisSession::new(&trace)
        .model(CausalityConfig::cafa())
        .unwrap();

    // Find the RPC call record in onCreate and the theme read in
    // onRender.
    let mut call_at = None;
    let mut render_read = None;
    for (at, r) in trace.iter_ops() {
        match r {
            cafa::trace::Record::RpcCall { .. } => call_at = Some(at),
            cafa::trace::Record::Read { .. } if trace.task_name(at.task) == "onRender" => {
                render_read = Some(at)
            }
            _ => {}
        }
    }
    let (call_at, render_read) = (call_at.unwrap(), render_read.unwrap());

    assert!(model.happens_before(call_at, render_read));
    let chain = model.explain(call_at, render_read).expect("ordered");
    println!("why does {call_at} happen before {render_read}?");
    for step in &chain {
        println!(
            "  {:?} of {} --[{:?}]--> {:?} of {}",
            step.from.point,
            trace.task_name(step.from.task),
            step.kind,
            step.to.point,
            trace.task_name(step.to.task),
        );
    }
    // The chain passes through the send that posted onRender.
    assert!(chain.iter().any(|s| s.kind == EdgeKind::Send));

    // And a queue-rule ordering explains itself as Queue(1).
    let mut p = ProgramBuilder::new("queue-explained");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", Body::new());
    let b = p.handler("B", Body::new());
    p.thread(pr, "T", Body::new().post(l, a, 2).post(l, b, 2));
    let trace = run(&p.build(), &SimConfig::with_seed(0))
        .unwrap()
        .trace
        .unwrap();
    let model = AnalysisSession::new(&trace)
        .model(CausalityConfig::cafa())
        .unwrap();
    let ev = |name: &str| {
        trace
            .events()
            .find(|t| trace.names().resolve(t.name) == name)
            .unwrap()
            .id
    };
    let (ea, eb) = (ev("A"), ev("B"));
    assert!(model.event_before(ea, eb));
    // Explain from A's last op to B's first op.
    let chain = model
        .explain(
            OpRef::new(ea, trace.body_len(ea).saturating_sub(1)),
            OpRef::new(eb, 0),
        )
        .expect("ordered by queue rule 1");
    println!("\nwhy does event A happen before event B (equal-delay sends)?");
    for step in &chain {
        println!(
            "  {:?} of {} --[{:?}]--> {:?} of {}",
            step.from.point,
            trace.task_name(step.from.task),
            step.kind,
            step.to.point,
            trace.task_name(step.to.task),
        );
    }
    assert!(
        chain
            .iter()
            .any(|s| matches!(s.kind, EdgeKind::Queue(_) | EdgeKind::Atomicity)),
        "a derived rule edge appears in the chain"
    );
    println!("\n=> every ordering is traceable to the rule that produced it.");
}
