//! A tour of the causality model's event-queue rules, reproducing the
//! six scenarios of the paper's Figure 4 through the simulator.
//!
//! Run with: `cargo run --example event_queue_rules`

use cafa::engine::AnalysisSession;
use cafa::hb::{CausalityConfig, HbModel};
use cafa::sim::{run, Action, Body, ProgramBuilder, SimConfig};
use cafa::trace::{TaskId, Trace};

fn record(p: cafa::sim::Program) -> Trace {
    run(&p, &SimConfig::with_seed(0)).unwrap().trace.unwrap()
}

fn event_named(trace: &Trace, model: &HbModel, name: &str) -> TaskId {
    let _ = model;
    trace
        .events()
        .find(|t| trace.names().resolve(t.name) == name)
        .unwrap_or_else(|| panic!("event {name} exists"))
        .id
}

fn show(trace: &Trace, model: &HbModel, a: &str, b: &str) {
    let (ea, eb) = (event_named(trace, model, a), event_named(trace, model, b));
    let rel = if model.event_before(ea, eb) {
        format!("{a} happens-before {b}")
    } else if model.event_before(eb, ea) {
        format!("{b} happens-before {a}")
    } else {
        format!("{a} and {b} are logically concurrent")
    };
    println!("    {rel}");
}

fn main() {
    let noop = Body::new();

    // ---- Figure 4b: equal delays => FIFO order -------------------------
    println!("Fig 4b: one thread sends A then B, both delay 1ms:");
    let mut p = ProgramBuilder::new("fig4b");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", noop.clone());
    let b = p.handler("B", noop.clone());
    p.thread(pr, "T", Body::new().post(l, a, 1).post(l, b, 1));
    let t = record(p.build());
    let m = AnalysisSession::new(&t)
        .model(CausalityConfig::cafa())
        .unwrap();
    show(&t, &m, "A", "B"); // A ≺ B (queue rule 1)

    // ---- Figure 4c: larger delay first => no order ----------------------
    println!("Fig 4c: A sent with delay 5ms, then B with delay 0:");
    let mut p = ProgramBuilder::new("fig4c");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", noop.clone());
    let b = p.handler("B", noop.clone());
    p.thread(pr, "T", Body::new().post(l, a, 5).post(l, b, 0));
    let t = record(p.build());
    let m = AnalysisSession::new(&t)
        .model(CausalityConfig::cafa())
        .unwrap();
    show(&t, &m, "A", "B"); // concurrent

    // ---- Figure 4d: send + sendAtFront inside one event => B ≺ A --------
    println!("Fig 4d: event C sends A, then sends B at the front:");
    let mut p = ProgramBuilder::new("fig4d");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", noop.clone());
    let b = p.handler("B", noop.clone());
    let c = p.handler(
        "C",
        Body::from_actions(vec![
            Action::Post {
                looper: l,
                handler: a,
                delay_ms: 0,
            },
            Action::PostFront {
                looper: l,
                handler: b,
            },
        ]),
    );
    p.gesture(0, l, c);
    let t = record(p.build());
    let m = AnalysisSession::new(&t)
        .model(CausalityConfig::cafa())
        .unwrap();
    show(&t, &m, "B", "A"); // B ≺ A (queue rule 2)
    show(&t, &m, "C", "A"); // C ≺ A (atomicity)

    // ---- Figures 4e/4f: front-send without the guarantee => no order ----
    println!("Fig 4e/4f: T sends A; another thread sends B at the front:");
    let mut p = ProgramBuilder::new("fig4ef");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.handler("A", noop.clone());
    let b = p.handler("B", noop.clone());
    p.thread(pr, "T", Body::new().post(l, a, 0));
    p.thread(
        pr,
        "T2",
        Body::from_actions(vec![
            Action::Sleep(1),
            Action::PostFront {
                looper: l,
                handler: b,
            },
        ]),
    );
    let t = record(p.build());
    let m = AnalysisSession::new(&t)
        .model(CausalityConfig::cafa())
        .unwrap();
    show(&t, &m, "A", "B"); // concurrent: both orders are possible

    // ---- Figure 4a: atomicity via fork + listener ------------------------
    println!("Fig 4a: event A forks T which registers a listener B performs:");
    let mut p = ProgramBuilder::new("fig4a");
    let pr = p.process();
    let l = p.looper(pr);
    let listener = p.listener("android.view");
    let reg_thread = p.thread_spec(
        pr,
        "T",
        Body::from_actions(vec![Action::Register(listener)]),
    );
    let a = p.handler("A", Body::from_actions(vec![Action::Fork(reg_thread)]));
    let b = p.handler("B", Body::from_actions(vec![Action::Perform(listener)]));
    // Post A and B from unrelated threads so only the listener edge and
    // the atomicity rule can order them.
    p.thread(pr, "srcA", Body::new().post(l, a, 0));
    p.thread(
        pr,
        "srcB",
        Body::from_actions(vec![
            Action::Sleep(5),
            Action::Post {
                looper: l,
                handler: b,
                delay_ms: 0,
            },
        ]),
    );
    let t = record(p.build());
    let m = AnalysisSession::new(&t)
        .model(CausalityConfig::cafa())
        .unwrap();
    show(&t, &m, "A", "B"); // A ≺ B: register ≺ perform lifted by atomicity

    println!("\nAll six Figure 4 behaviors derived exactly as the paper specifies.");
}
