//! Scale-tier sweep: the demand-driven query engine on 100k–1M-event
//! fleet-island traces (CLI: `analysis_scaling --scale [--quick]`).
//!
//! Each tier generates a labeled [`cafa_model::scale`] trace and runs
//! the full detector through an [`AnalysisSession`], recording wall
//! time and the demand engine's own counters: queries answered, rule
//! premises evaluated, and derived edges actually materialized. The
//! headline property is *sub-linear rule work per event*: islands keep
//! happens-before cones bounded, so premises-per-event must stay flat
//! (or fall) as the event count grows 10× — the eager fixpoint, by
//! contrast, materializes every derivable edge whether or not any
//! query ever looks at it. Writes `BENCH_scale.json`.

use std::time::Instant;

use cafa_core::{Analyzer, DetectorConfig};
use cafa_engine::AnalysisSession;
use cafa_hb::DemandStats;
use cafa_model::scale::{generate_scale, ScaleConfig};

/// Sweep seed; the corpus is a pure function of (seed, tier).
const SEED: u64 = 42;

/// Full sweep tiers; `--quick` keeps only the first.
const TIERS: [usize; 3] = [100_000, 300_000, 1_000_000];

/// One tier's measurements.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Tier label (`scale/100000`).
    pub label: String,
    /// Exact event count.
    pub events: usize,
    /// Islands in the trace.
    pub islands: usize,
    /// Trace generation wall time (seconds) — not part of analysis.
    pub generate_s: f64,
    /// Full detector wall time (seconds), model build included.
    pub analyze_s: f64,
    /// Races reported.
    pub races: usize,
    /// Demand-engine counters of the primary (CAFA-config) model.
    pub demand: DemandStats,
}

impl ScaleRow {
    /// Rule premises evaluated per trace event — the sub-linearity
    /// headline.
    pub fn premises_per_event(&self) -> f64 {
        self.demand.premises as f64 / self.events.max(1) as f64
    }
}

/// Measures one tier.
///
/// # Panics
///
/// Panics if analysis fails or the primary model did not use the
/// demand backend (the tiers are far past the auto threshold).
pub fn measure(target_events: usize) -> ScaleRow {
    let t = Instant::now();
    let app = generate_scale(ScaleConfig::new(SEED, target_events));
    let generate_s = t.elapsed().as_secs_f64();

    let config = DetectorConfig::cafa();
    let session = AnalysisSession::new(&app.trace);
    let t = Instant::now();
    let report = Analyzer::with_config(config)
        .analyze_with(&session)
        .expect("scale traces are acyclic by construction");
    let analyze_s = t.elapsed().as_secs_f64();
    let demand = session
        .model(config.causality)
        .expect("analysis built this model")
        .demand_stats()
        .expect("scale tiers are past the demand auto-threshold");
    ScaleRow {
        label: format!("scale/{target_events}"),
        events: app.events,
        islands: app.islands,
        generate_s,
        analyze_s,
        races: report.races.len(),
        demand,
    }
}

/// Runs the sweep and writes `BENCH_scale.json`.
///
/// # Panics
///
/// Panics if analysis or the JSON write fails.
pub fn main(quick: bool) {
    let tiers: &[usize] = if quick { &TIERS[..1] } else { &TIERS };
    println!("scale sweep — demand-driven query engine on fleet-island traces");
    println!(
        "{:>14} {:>9} {:>8} {:>8} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "tier",
        "events",
        "islands",
        "gen (s)",
        "wall (s)",
        "queries",
        "premises",
        "edges",
        "prem/ev"
    );
    let mut rows = Vec::new();
    for &tier in tiers {
        let row = measure(tier);
        println!(
            "{:>14} {:>9} {:>8} {:>8.2} {:>10.3} {:>12} {:>12} {:>10} {:>8.2}",
            row.label,
            row.events,
            row.islands,
            row.generate_s,
            row.analyze_s,
            row.demand.queries,
            row.demand.premises,
            row.demand.edges_materialized,
            row.premises_per_event()
        );
        rows.push(row);
    }
    for pair in rows.windows(2) {
        let (small, large) = (&pair[0], &pair[1]);
        // Flat-or-decreasing with a 10% noise allowance.
        assert!(
            large.premises_per_event() <= small.premises_per_event() * 1.10,
            "rule work per event grew {} → {}: {:.2} → {:.2}",
            small.label,
            large.label,
            small.premises_per_event(),
            large.premises_per_event()
        );
    }

    if quick {
        // Smoke mode (CI): one tier only — don't clobber the full
        // sweep's BENCH_scale.json with a truncated document.
        println!("\nquick smoke ok (BENCH_scale.json left untouched)");
    } else {
        let json = render_json(&rows);
        std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");
        println!("\nwrote BENCH_scale.json");
    }
}

/// Renders the sweep as a stable JSON document.
fn render_json(rows: &[ScaleRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"tiers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let _ = writeln!(out, "      \"islands\": {},", r.islands);
        let _ = writeln!(out, "      \"generate_s\": {:.4},", r.generate_s);
        let _ = writeln!(out, "      \"analyze_s\": {:.4},", r.analyze_s);
        let _ = writeln!(out, "      \"races\": {},", r.races);
        let _ = writeln!(out, "      \"queries\": {},", r.demand.queries);
        let _ = writeln!(out, "      \"premises\": {},", r.demand.premises);
        let _ = writeln!(
            out,
            "      \"edges_materialized\": {},",
            r.demand.edges_materialized
        );
        let _ = writeln!(
            out,
            "      \"premises_per_event\": {:.4}",
            r.premises_per_event()
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}
