//! Scale-tier sweep: the demand-driven query engine and the
//! island-partitioned pipeline on 100k–1M-event fleet-island traces
//! (CLI: `analysis_scaling --scale [--quick]`).
//!
//! Each tier generates a labeled [`cafa_model::scale`] trace and runs
//! the detector two ways:
//!
//! 1. **Monolithic reference** (`--partition off`): the full pipeline
//!    on one model, recording the demand engine's own counters —
//!    queries answered, rule premises evaluated, edges materialized.
//!    The headline property is *sub-linear rule work per event*:
//!    premises-per-event must stay flat (or fall) as the event count
//!    grows 10×.
//! 2. **Partitioned thread sweep** (`--partition auto` at 1/2/8
//!    workers): islands analyzed concurrently, merged back. Every
//!    sweep run's JSON report is asserted byte-identical to the
//!    reference; on multi-core hosts the best multi-threaded wall
//!    time must beat the single-threaded one.
//!
//! Writes `BENCH_scale.json`, including `host_cpus` so flat scaling
//! on single-core machines is attributable to hardware, not code.

use std::time::Instant;

use cafa_core::{json::render_json, Analyzer, DetectorConfig, PartitionMode};
use cafa_engine::AnalysisSession;
use cafa_hb::DemandStats;
use cafa_model::scale::{generate_scale, ScaleConfig};

/// Sweep seed; the corpus is a pure function of (seed, tier).
const SEED: u64 = 42;

/// Full sweep tiers; `--quick` keeps only the first.
const TIERS: [usize; 3] = [100_000, 300_000, 1_000_000];

/// Worker counts for the partitioned sweep; `--quick` keeps only one.
const SWEEP_THREADS: [usize; 3] = [1, 2, 8];

/// One partitioned run's wall time at a given worker count.
#[derive(Clone, Copy, Debug)]
pub struct ThreadTiming {
    /// Worker threads requested.
    pub threads: usize,
    /// Partitioned analyze wall time (seconds).
    pub analyze_s: f64,
}

/// One tier's measurements.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Tier label (`scale/100000`).
    pub label: String,
    /// Exact event count.
    pub events: usize,
    /// Islands in the trace (generator's own count).
    pub islands: usize,
    /// Trace generation wall time (seconds) — not part of analysis.
    pub generate_s: f64,
    /// Monolithic (`--partition off`) detector wall time (seconds),
    /// model build included.
    pub analyze_s: f64,
    /// Races reported.
    pub races: usize,
    /// Demand-engine counters of the monolithic CAFA-config model.
    pub demand: DemandStats,
    /// Partitioned (`--partition auto`) wall times per worker count.
    /// Every run's report is byte-identical to the monolithic one.
    pub scaling: Vec<ThreadTiming>,
    /// Islands the partition pass found (skeleton components).
    pub partition_islands: usize,
    /// Batches those islands were packed into.
    pub partition_batches: usize,
}

impl ScaleRow {
    /// Rule premises evaluated per trace event — the sub-linearity
    /// headline.
    pub fn premises_per_event(&self) -> f64 {
        self.demand.premises as f64 / self.events.max(1) as f64
    }

    /// Best partitioned wall time across multi-threaded runs.
    fn best_parallel_s(&self) -> Option<f64> {
        self.scaling
            .iter()
            .filter(|t| t.threads > 1)
            .map(|t| t.analyze_s)
            .min_by(f64::total_cmp)
    }

    /// The single-threaded partitioned wall time, if measured.
    fn single_thread_s(&self) -> Option<f64> {
        self.scaling
            .iter()
            .find(|t| t.threads == 1)
            .map(|t| t.analyze_s)
    }
}

/// Measures one tier: the monolithic demand-engine reference plus the
/// partitioned thread sweep (byte-equality asserted per run).
///
/// # Panics
///
/// Panics if analysis fails, the monolithic model did not use the
/// demand backend (the tiers are far past the auto threshold), a
/// partitioned run's report drifts from the reference, or the
/// partition pass did not engage.
pub fn measure(target_events: usize, quick: bool) -> ScaleRow {
    let t = Instant::now();
    let app = generate_scale(ScaleConfig::new(SEED, target_events));
    let generate_s = t.elapsed().as_secs_f64();

    // Monolithic reference: partitioning off, demand backend counters.
    let config = DetectorConfig {
        partition: PartitionMode::Off,
        ..DetectorConfig::cafa()
    };
    let session = AnalysisSession::new(&app.trace);
    let t = Instant::now();
    let report = Analyzer::with_config(config)
        .analyze_with(&session)
        .expect("scale traces are acyclic by construction");
    let analyze_s = t.elapsed().as_secs_f64();
    let demand = session
        .model(config.causality)
        .expect("analysis built this model")
        .demand_stats()
        .expect("scale tiers are past the demand auto-threshold");
    let reference = render_json(&report, &app.trace);

    // Partitioned sweep: byte-identical report at every worker count.
    let sweep: &[usize] = if quick {
        &SWEEP_THREADS[1..2]
    } else {
        &SWEEP_THREADS
    };
    let mut scaling = Vec::new();
    let mut partition_islands = 0;
    let mut partition_batches = 0;
    for &threads in sweep {
        let cfg = DetectorConfig {
            threads,
            partition: PartitionMode::Auto,
            ..DetectorConfig::cafa()
        };
        let session = AnalysisSession::new(&app.trace);
        let t = Instant::now();
        let partitioned = Analyzer::with_config(cfg)
            .analyze_with(&session)
            .expect("scale traces are acyclic by construction");
        let wall = t.elapsed().as_secs_f64();
        let stats = partitioned
            .stats
            .partition
            .expect("auto partitioning engages on multi-island scale tiers");
        partition_islands = stats.islands;
        partition_batches = stats.batches;
        assert_eq!(
            render_json(&partitioned, &app.trace),
            reference,
            "partitioned report drifted from monolithic at {threads} thread(s)"
        );
        scaling.push(ThreadTiming {
            threads,
            analyze_s: wall,
        });
    }

    ScaleRow {
        label: format!("scale/{target_events}"),
        events: app.events,
        islands: app.islands,
        generate_s,
        analyze_s,
        races: report.races.len(),
        demand,
        scaling,
        partition_islands,
        partition_batches,
    }
}

/// The host's available parallelism, as recorded in the JSON.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs the sweep and writes `BENCH_scale.json`.
///
/// # Panics
///
/// Panics if analysis fails, any partitioned report drifts from the
/// monolithic reference, rule work per event grows with trace size,
/// multi-threaded analysis is not faster on a multi-core host, or the
/// JSON write fails.
pub fn main(quick: bool) {
    let cpus = host_cpus();
    let tiers: &[usize] = if quick { &TIERS[..1] } else { &TIERS };
    println!("scale sweep — demand engine + island partitioning ({cpus} host cpu(s))");
    println!(
        "{:>14} {:>9} {:>8} {:>8} {:>10} {:>12} {:>8} {:>10}",
        "tier", "events", "islands", "gen (s)", "mono (s)", "premises", "prem/ev", "part (s)"
    );
    let mut rows = Vec::new();
    for &tier in tiers {
        let row = measure(tier, quick);
        let best = row
            .best_parallel_s()
            .or_else(|| row.single_thread_s())
            .unwrap_or(row.analyze_s);
        println!(
            "{:>14} {:>9} {:>8} {:>8.2} {:>10.3} {:>12} {:>8.2} {:>10.3}",
            row.label,
            row.events,
            row.islands,
            row.generate_s,
            row.analyze_s,
            row.demand.premises,
            row.premises_per_event(),
            best,
        );
        for t in &row.scaling {
            println!(
                "{:>14}   --partition auto --threads {}: {:.3}s",
                "", t.threads, t.analyze_s
            );
        }
        rows.push(row);
    }
    for pair in rows.windows(2) {
        let (small, large) = (&pair[0], &pair[1]);
        // Flat-or-decreasing with a 10% noise allowance.
        assert!(
            large.premises_per_event() <= small.premises_per_event() * 1.10,
            "rule work per event grew {} → {}: {:.2} → {:.2}",
            small.label,
            large.label,
            small.premises_per_event(),
            large.premises_per_event()
        );
    }
    if !quick && cpus >= 2 {
        // On a multi-core host the partitioned sweep must actually
        // scale: best multi-threaded wall time strictly below the
        // single-threaded one on the largest tier.
        let largest = rows.last().expect("at least one tier");
        let single = largest
            .single_thread_s()
            .expect("full sweep measures 1 thread");
        let best = largest.best_parallel_s().expect("full sweep measures 2/8");
        assert!(
            best < single,
            "{}: multi-threaded partitioned analyze ({best:.3}s) not below single-threaded ({single:.3}s) on a {cpus}-cpu host",
            largest.label
        );
    }

    if quick {
        // Smoke mode (CI): one tier only — don't clobber the full
        // sweep's BENCH_scale.json with a truncated document.
        println!("\nquick smoke ok (BENCH_scale.json left untouched)");
    } else {
        let json = render_bench_json(&rows, cpus);
        std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");
        println!("\nwrote BENCH_scale.json");
    }
}

/// Renders the sweep as a stable JSON document.
fn render_bench_json(rows: &[ScaleRow], cpus: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"host_cpus\": {cpus},");
    out.push_str("  \"tiers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let _ = writeln!(out, "      \"islands\": {},", r.islands);
        let _ = writeln!(out, "      \"generate_s\": {:.4},", r.generate_s);
        let _ = writeln!(out, "      \"analyze_s\": {:.4},", r.analyze_s);
        let _ = writeln!(out, "      \"races\": {},", r.races);
        let _ = writeln!(out, "      \"queries\": {},", r.demand.queries);
        let _ = writeln!(out, "      \"premises\": {},", r.demand.premises);
        let _ = writeln!(
            out,
            "      \"edges_materialized\": {},",
            r.demand.edges_materialized
        );
        let _ = writeln!(
            out,
            "      \"premises_per_event\": {:.4},",
            r.premises_per_event()
        );
        let _ = writeln!(out, "      \"partition_islands\": {},", r.partition_islands);
        let _ = writeln!(out, "      \"partition_batches\": {},", r.partition_batches);
        out.push_str("      \"scaling\": [\n");
        for (j, t) in r.scaling.iter().enumerate() {
            let comma = if j + 1 < r.scaling.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"threads\": {}, \"analyze_s\": {:.4}}}{comma}",
                t.threads, t.analyze_s
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}
