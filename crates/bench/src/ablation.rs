//! Ablation harness for the design choices DESIGN.md calls out.
//!
//! Four variants of the pipeline run over all ten app traces:
//!
//! * **cafa** — the full configuration (baseline);
//! * **no-heuristics** — §4.3's if-guard/intra-event-allocation/lockset
//!   pruning disabled: every surviving candidate is reported;
//! * **no-queue-rules** — an EventRacer/WebRacer-style model without
//!   the event-queue rules (§7.1.1 argues these are CAFA's key
//!   addition); send-ordered events become "races";
//! * **full-coverage** — every listener package instrumented: the Type
//!   I false positives disappear, quantifying §6.3's "it would be very
//!   promising to remove most of the false positives of this class".

use cafa_apps::{all_apps, AppSpec};
use cafa_core::{Analyzer, DetectorConfig};
use cafa_engine::{fleet, AnalysisSession, SessionStats};

/// Report counts for one (app, variant) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cell {
    /// Races reported.
    pub reported: usize,
    /// Candidates filtered by heuristics.
    pub filtered: usize,
}

/// All variant measurements for one app.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Application name.
    pub name: String,
    /// Full CAFA.
    pub cafa: Cell,
    /// Heuristics off.
    pub no_heuristics: Cell,
    /// Event-queue rules off.
    pub no_queue_rules: Cell,
    /// Full listener coverage (Type I fixed).
    pub full_coverage: Cell,
    /// Precise dereference matching (Type III fixed, §6.3).
    pub precise_matching: Cell,
}

fn analyze(session: &AnalysisSession<'_>, config: DetectorConfig) -> Cell {
    let report = Analyzer::with_config(config)
        .analyze_with(session)
        .expect("analysis succeeds");
    Cell {
        reported: report.races.len(),
        filtered: report.filtered.len(),
    }
}

/// Measures one app under all variants, also returning the combined
/// session cache counters.
///
/// The four variants that share the paper-coverage trace share one
/// [`AnalysisSession`]: `cafa`, `no-heuristics`, and `precise-match`
/// all judge races under the same causality model, so only the first
/// builds the fixpoint — the rest are cache hits, as is the lazily
/// built conventional classification baseline after the first variant
/// needs it.
///
/// # Panics
///
/// Panics if recording or analysis fails.
pub fn measure_app_stats(app: &AppSpec, seed: u64) -> (AblationRow, SessionStats) {
    let trace = app
        .record(seed)
        .expect("records")
        .trace
        .expect("instrumented");
    let full_trace = app
        .record_full_coverage(seed)
        .expect("records")
        .trace
        .expect("instrumented");
    let session = AnalysisSession::new(&trace);
    let full_session = AnalysisSession::new(&full_trace);
    let row = AblationRow {
        name: app.name.clone(),
        cafa: analyze(&session, DetectorConfig::cafa()),
        no_heuristics: analyze(&session, DetectorConfig::unfiltered()),
        no_queue_rules: analyze(&session, DetectorConfig::no_queue_rules()),
        full_coverage: analyze(&full_session, DetectorConfig::cafa()),
        precise_matching: analyze(&session, DetectorConfig::precise_matching()),
    };
    let (s, fs) = (session.stats(), full_session.stats());
    let stats = SessionStats {
        ops_extractions: s.ops_extractions + fs.ops_extractions,
        model_builds: s.model_builds + fs.model_builds,
        model_cache_hits: s.model_cache_hits + fs.model_cache_hits,
    };
    (row, stats)
}

/// Measures one app under all variants.
///
/// # Panics
///
/// Panics if recording or analysis fails.
pub fn measure_app(app: &AppSpec, seed: u64) -> AblationRow {
    measure_app_stats(app, seed).0
}

/// Measures all apps on the fleet, with per-app session stats.
pub fn compute_stats(seed: u64) -> Vec<(AblationRow, SessionStats)> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app_stats(app, seed)
    })
}

/// Measures all apps.
pub fn compute(seed: u64) -> Vec<AblationRow> {
    compute_stats(seed)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Runs and prints the ablation table.
pub fn main() {
    println!("Ablations — reports under variant configurations (seed 0)");
    println!(
        "{:<12} {:>6} {:>14} {:>15} {:>14} {:>14}",
        "App", "cafa", "no-heuristics", "no-queue-rules", "full-coverage", "precise-match"
    );
    let rows = compute_stats(0);
    let mut t = (0usize, 0usize, 0usize, 0usize, 0usize);
    for (r, _) in &rows {
        println!(
            "{:<12} {:>6} {:>14} {:>15} {:>14} {:>14}",
            r.name,
            r.cafa.reported,
            r.no_heuristics.reported,
            r.no_queue_rules.reported,
            r.full_coverage.reported,
            r.precise_matching.reported
        );
        t.0 += r.cafa.reported;
        t.1 += r.no_heuristics.reported;
        t.2 += r.no_queue_rules.reported;
        t.3 += r.full_coverage.reported;
        t.4 += r.precise_matching.reported;
    }
    println!(
        "{:<12} {:>6} {:>14} {:>15} {:>14} {:>14}",
        "Overall", t.0, t.1, t.2, t.3, t.4
    );
    println!(
        "\nReading: disabling the §4.3 heuristics adds back the filtered\n\
         commutative candidates; dropping the queue rules (EventRacer-style\n\
         model) floods the report with send-ordered pairs; full listener\n\
         coverage removes exactly the 9 Type I false positives; precise\n\
         dereference matching (the §6.3 static-data-flow fix) removes the\n\
         5 Type III false positives."
    );
    let (builds, hits) = rows.iter().fold((0, 0), |(b, h), (_, s)| {
        (b + s.model_builds, h + s.model_cache_hits)
    });
    println!(
        "\nengine sessions: {builds} HB model build(s), {hits} cache hit(s) — \
         variants sharing a trace share its session's models"
    );
}
