//! Predictive-backend harness: per-app extra reports, replay verdicts,
//! and analysis overhead (`BENCH_predict.json`).
//!
//! For every Table 1 app plus a slice of the generated corpus this
//! records a trace, analyzes it twice — the HB backend alone, then
//! `--detector both` — and pushes every `predictive-only` report
//! through the replay adjudication ladder. The columns the JSON pins:
//!
//! * `extra` — reports the predictive relation makes beyond HB;
//! * `confirmed` — extras with a replay-verified witness (real races
//!   the observed-trace backend missed);
//! * `false_positives` — extras the ladder could not confirm;
//! * `overhead` — wall-time ratio of the both-backend analysis to the
//!   HB-only analysis, fresh sessions for each so the predictive
//!   fixpoint pays its own extraction.
//!
//! The ten catalog apps are expected to land at `extra = 0`: their
//! workloads plant nothing the conflict-gated relaxations expose, so
//! any drift here is a precision regression in `cafa-predict`. The
//! generated slots carry the planted lock-handoff (confirmable) and
//! fifo-handoff (infeasible) patterns that exercise both verdicts.

use std::time::Instant;

use cafa_apps::AppSpec;
use cafa_core::{AnalysisSession, Analyzer, DetectorConfig, DetectorKind, PredictClass};
use cafa_replay::{adjudicate_races, ReplayConfig};

/// Generated-corpus slots measured alongside the catalog: the first
/// slice of the CI-pinned `--seed 7` corpus, which plants both
/// predictive-only pattern kinds.
pub const GEN_SLOTS: [&str; 5] = ["gen:7:0", "gen:7:1", "gen:7:2", "gen:7:3", "gen:7:4"];

/// One measured row of the predictive comparison.
#[derive(Clone, Debug)]
pub struct PredictRow {
    /// App name.
    pub app: String,
    /// Events in the recorded trace.
    pub events: usize,
    /// Races the HB backend reported.
    pub hb_reported: usize,
    /// Races the predictive backend reported (superset of HB's).
    pub pred_reported: usize,
    /// Predictive-only extras (`pred_reported - hb_reported` by the
    /// classification invariant).
    pub extra: usize,
    /// Extras confirmed by a replay-verified witness.
    pub confirmed: usize,
    /// Extras the ladder exhausted its budget on: counted FPs.
    pub false_positives: usize,
    /// Stress runs the adjudication spent.
    pub runs: u64,
    /// HB-only analysis wall time (seconds, fresh session).
    pub hb_s: f64,
    /// Both-backend analysis wall time (seconds, fresh session).
    pub both_s: f64,
}

impl PredictRow {
    /// Wall-time ratio of the both-backend analysis to HB alone.
    pub fn overhead(&self) -> f64 {
        if self.hb_s > 0.0 {
            self.both_s / self.hb_s
        } else {
            1.0
        }
    }
}

/// Measures one app: HB-only and both-backend analysis on fresh
/// sessions, then adjudication of every predictive-only report.
///
/// # Panics
///
/// Panics if recording, analysis, or replay fails (the catalog and the
/// generated corpus run clean).
pub fn measure_app(app: &AppSpec, seed: u64) -> PredictRow {
    let outcome = app.record(seed).expect("workload records cleanly");
    let trace = outcome.trace.expect("instrumentation is on");

    let hb_config = DetectorConfig::cafa();
    let t = Instant::now();
    let hb_report = Analyzer::with_config(hb_config)
        .analyze_with(&AnalysisSession::new(&trace))
        .expect("hb analysis succeeds");
    let hb_s = t.elapsed().as_secs_f64();

    let mut both_config = DetectorConfig::cafa();
    both_config.detector = DetectorKind::Both;
    let t = Instant::now();
    let both_report = Analyzer::with_config(both_config)
        .analyze_with(&AnalysisSession::new(&trace))
        .expect("both analysis succeeds");
    let both_s = t.elapsed().as_secs_f64();

    let section = both_report
        .predictive
        .as_ref()
        .expect("both mode attaches the predictive section");
    let only: Vec<_> = section
        .races
        .iter()
        .filter(|r| r.class == PredictClass::PredictiveOnly)
        .map(|r| r.var)
        .collect();
    let adj = adjudicate_races(app, &only, &ReplayConfig::default())
        .expect("adjudication replays cleanly");

    PredictRow {
        app: app.name.clone(),
        events: both_report.stats.events,
        hb_reported: hb_report.races.len(),
        pred_reported: section.races.len(),
        extra: only.len(),
        confirmed: adj.confirmed(),
        false_positives: adj.false_positives(),
        runs: adj.total_runs(),
        hb_s,
        both_s,
    }
}

/// Measures the catalog plus the generated slots, in a stable order.
pub fn compute(seed: u64) -> Vec<PredictRow> {
    let mut rows: Vec<PredictRow> = cafa_apps::all_apps()
        .iter()
        .map(|app| measure_app(app, seed))
        .collect();
    for slot in GEN_SLOTS {
        let app = cafa_apps::resolve(slot).expect("gen slots resolve");
        rows.push(measure_app(&app, seed));
    }
    rows
}

/// Runs the comparison, prints the table, writes `BENCH_predict.json`.
pub fn main() {
    println!("Predictive backend vs HB — extras, replay verdicts, overhead");
    println!(
        "{:<12} | {:>6} | {:>4} {:>4} | {:>5} {:>9} {:>4} | {:>8}",
        "App", "events", "hb", "pred", "extra", "confirmed", "fp", "overhead"
    );
    let rows = compute(0);
    let mut extra = 0;
    let mut confirmed = 0;
    let mut fp = 0;
    for r in &rows {
        println!(
            "{:<12} | {:>6} | {:>4} {:>4} | {:>5} {:>9} {:>4} | {:>7.2}x",
            r.app,
            r.events,
            r.hb_reported,
            r.pred_reported,
            r.extra,
            r.confirmed,
            r.false_positives,
            r.overhead(),
        );
        extra += r.extra;
        confirmed += r.confirmed;
        fp += r.false_positives;
    }
    println!(
        "\n{extra} extra report(s): {confirmed} replay-confirmed (races HB missed), \
         {fp} counted false positive(s)"
    );

    std::fs::write("BENCH_predict.json", render_json(&rows)).expect("write BENCH_predict.json");
    println!("wrote BENCH_predict.json");
}

/// Renders the rows as a stable JSON document (wall times included —
/// this file records a measurement, not a pinned artifact).
fn render_json(rows: &[PredictRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"seed\": 0,\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"app\": \"{}\", \"events\": {}, \"hb_reported\": {}, \
             \"pred_reported\": {}, \"extra\": {}, \"confirmed\": {}, \
             \"false_positives\": {}, \"runs\": {}, \"hb_s\": {:.6}, \
             \"both_s\": {:.6}, \"overhead\": {:.3}}}{comma}",
            r.app,
            r.events,
            r.hb_reported,
            r.pred_reported,
            r.extra,
            r.confirmed,
            r.false_positives,
            r.runs,
            r.hb_s,
            r.both_s,
            r.overhead(),
        );
    }
    out.push_str("  ],\n");
    let (extra, confirmed, fp) = rows.iter().fold((0, 0, 0), |(e, c, f), r| {
        (e + r.extra, c + r.confirmed, f + r.false_positives)
    });
    let _ = writeln!(
        out,
        "  \"overall\": {{\"extra\": {extra}, \"confirmed\": {confirmed}, \
         \"false_positives\": {fp}}}"
    );
    out.push_str("}\n");
    out
}
