//! Benchmark and evaluation harnesses regenerating every table and
//! figure of the CAFA paper's evaluation (§6), plus ablations.
//!
//! Binaries:
//! * `table1` — Table 1 (races per app, classified);
//! * `fig8` — Figure 8 (tracing slowdown per app);
//! * `lowlevel_races` — §4.1 (1,664 conventional races in ConnectBot);
//! * `analysis_scaling` — §6.4 (analysis time vs events);
//! * `ablation` — queue rules / heuristics / listener coverage;
//! * `survey` — the §6.2 use-after-free violation survey;
//! * `streaming` — chunked-decode throughput and the
//!   incremental-append-vs-rebuild comparison (`BENCH_streaming.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod catalog;
pub mod confirm;
pub mod fig8;
pub mod fixpoint;
pub mod lowlevel;
pub mod predict;
pub mod scale;
pub mod scaling;
pub mod serve;
pub mod streaming;
pub mod survey;
pub mod table1;
