//! §6.4 harness: offline analysis time as a function of event count.
//!
//! The paper's offline analyzer took 30 minutes to 10 hours per trace,
//! with ToDoList (≈16 h) and Music (≈1 day) slowest "due to the
//! excessive amount of events". The shape to reproduce is analysis
//! time growing superlinearly with the number of events; the absolute
//! numbers are not comparable (this analyzer uses bitset sweeps instead
//! of the paper's per-query graph walks and runs in milliseconds).
//!
//! [`parallel_main`] (CLI: `analysis_scaling --parallel`) runs the
//! companion sweep for the reachability oracle: index build time and
//! fanned-out query throughput at 1/2/4/8 workers, plus an
//! oracle-vs-DFS comparison on a bounded pair subset, on the synthetic
//! scaling trace and the heaviest catalog app. Writes
//! `BENCH_parallel.json`.

use std::time::{Duration, Instant};

use cafa_apps::all_apps;
use cafa_core::Analyzer;
use cafa_hb::bitset::BitSet;
use cafa_hb::{CausalityConfig, HbModel, ReachOracle};
use cafa_sim::{run, ProgramBuilder, SimConfig};
use cafa_trace::Trace;

/// One point of the scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Label (app name or synthetic size).
    pub label: String,
    /// Events in the trace.
    pub events: usize,
    /// Records in the trace.
    pub records: usize,
    /// Analysis wall time in seconds.
    pub analyze_s: f64,
}

fn time_analysis(trace: &cafa_trace::Trace) -> f64 {
    let t = Instant::now();
    let report = Analyzer::new().analyze(trace).expect("analysis succeeds");
    std::hint::black_box(report.races.len());
    t.elapsed().as_secs_f64()
}

/// Builds a synthetic trace of roughly `events` events with a fixed
/// race population, then times its analysis.
///
/// # Panics
///
/// Panics if simulation or analysis fails.
pub fn synthetic_point(events: usize) -> ScalePoint {
    let trace = synthetic_trace(events);
    let stats = trace.stats();
    ScalePoint {
        label: format!("synthetic/{events}"),
        events: stats.events,
        records: stats.records,
        analyze_s: time_analysis(&trace),
    }
}

/// The synthetic scaling workload itself: roughly `events` events with
/// a fixed race population.
///
/// # Panics
///
/// Panics if simulation fails.
pub fn synthetic_trace(events: usize) -> Trace {
    let mut p = ProgramBuilder::new(format!("synthetic-{events}"));
    let proc = p.process();
    let looper = p.looper(proc);
    let mut pats = cafa_apps::patterns::Patterns::new(&mut p, proc, looper);
    pats.intra(false, false);
    pats.inter(false);
    pats.fp_bool_guard();
    pats.scalar_burst(4, 8);
    pats.fill_to(events, 10);
    drop(pats.finish());
    let program = p.build();
    let outcome = run(&program, &SimConfig::with_seed(0)).expect("runs cleanly");
    outcome.trace.expect("instrumented")
}

/// Times the analysis of every app trace.
pub fn app_points(seed: u64) -> Vec<ScalePoint> {
    all_apps()
        .iter()
        .map(|app| {
            let trace = app
                .record(seed)
                .expect("records")
                .trace
                .expect("instrumented");
            let stats = trace.stats();
            ScalePoint {
                label: app.name.to_owned(),
                events: stats.events,
                records: stats.records,
                analyze_s: time_analysis(&trace),
            }
        })
        .collect()
}

/// Runs and prints the sweep plus the per-app timings.
pub fn main() {
    println!("§6.4 — offline analysis time vs trace size");
    println!("\nsynthetic sweep (fixed race population, growing filler):");
    println!(
        "{:<16} {:>8} {:>10} {:>12}",
        "trace", "events", "records", "analysis (s)"
    );
    let mut prev: Option<(usize, f64)> = None;
    for events in [500usize, 1_000, 2_000, 4_000, 8_000, 16_000] {
        let pt = synthetic_point(events);
        let growth = prev
            .map(|(pe, pt_s)| {
                let er = pt.events as f64 / pe as f64;
                let tr = pt.analyze_s / pt_s;
                format!("  ({er:.1}x events -> {tr:.1}x time)")
            })
            .unwrap_or_default();
        println!(
            "{:<16} {:>8} {:>10} {:>12.4}{growth}",
            pt.label, pt.events, pt.records, pt.analyze_s
        );
        prev = Some((pt.events, pt.analyze_s));
    }

    println!("\nper-app traces:");
    println!(
        "{:<16} {:>8} {:>10} {:>12}",
        "app", "events", "records", "analysis (s)"
    );
    let mut points = app_points(0);
    points.sort_by_key(|x| x.events);
    for pt in points {
        println!(
            "{:<16} {:>8} {:>10} {:>12.4}",
            pt.label, pt.events, pt.records, pt.analyze_s
        );
    }
    println!(
        "\nShape check: time grows superlinearly with events, and the\n\
         event-heavy traces (ToDoList, Camera, Music) are the slowest —\n\
         the ordering behind the paper's 16h/1day outliers."
    );
}

// ---- parallel oracle sweep (`--parallel`) ------------------------------

/// Timing iterations; the minimum is reported.
const ITERS: usize = 3;

/// Reachability queries issued per worker-count measurement.
const QUERY_PAIRS: usize = 2_000_000;

/// Pairs answered by both the oracle and the per-pair DFS for the
/// direct comparison (DFS is far too slow for the full volume).
const DFS_PAIRS: usize = 2_000;

/// Worker counts swept.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One worker-count measurement.
#[derive(Clone, Copy, Debug)]
pub struct ParallelPoint {
    /// Workers used for index build and query fan-out.
    pub threads: usize,
    /// Best-of-[`ITERS`] index build wall time.
    pub build: Duration,
    /// Best-of-[`ITERS`] wall time for [`QUERY_PAIRS`] queries fanned
    /// across the workers.
    pub query: Duration,
}

impl ParallelPoint {
    /// Query throughput in millions of queries per second.
    pub fn mqueries_per_s(&self) -> f64 {
        QUERY_PAIRS as f64 / 1e6 / self.query.as_secs_f64().max(1e-9)
    }
}

/// The sweep over one trace.
#[derive(Clone, Debug)]
pub struct ParallelSweep {
    /// Trace label.
    pub label: String,
    /// Sync-graph nodes.
    pub nodes: usize,
    /// Sync-graph edges.
    pub edges: usize,
    /// Chains (tasks) in the index.
    pub chains: usize,
    /// Per-worker-count measurements.
    pub points: Vec<ParallelPoint>,
    /// Best-of-[`ITERS`] DFS wall time over [`DFS_PAIRS`] pairs.
    pub dfs: Duration,
    /// Best-of-[`ITERS`] oracle wall time over the same pairs (one
    /// worker — the per-query cost, no fan-out).
    pub oracle: Duration,
}

impl ParallelSweep {
    /// How many times faster the oracle answers than the DFS.
    pub fn dfs_speedup(&self) -> f64 {
        self.dfs.as_secs_f64() / self.oracle.as_secs_f64().max(1e-9)
    }

    /// Query-phase speedup of `threads` workers over one.
    pub fn query_speedup(&self, threads: usize) -> f64 {
        let one = self.points.iter().find(|p| p.threads == 1);
        let n = self.points.iter().find(|p| p.threads == threads);
        match (one, n) {
            (Some(a), Some(b)) => a.query.as_secs_f64() / b.query.as_secs_f64().max(1e-9),
            _ => 1.0,
        }
    }
}

/// Deterministic pair sampling (xorshift64) over `nodes` node ids.
fn sample_pairs(nodes: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| {
            (
                (next() % nodes as u64) as u32,
                (next() % nodes as u64) as u32,
            )
        })
        .collect()
}

/// Sweeps index build and fanned query throughput over one trace.
///
/// # Panics
///
/// Panics if the happens-before model cannot be built.
pub fn parallel_sweep(label: &str, trace: &Trace) -> ParallelSweep {
    let model = HbModel::build(trace, CausalityConfig::cafa()).expect("consistent trace");
    let graph = model.graph();
    let pairs = sample_pairs(graph.node_count(), QUERY_PAIRS, 0x9e3779b97f4a7c15);

    let mut points = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut build = Duration::MAX;
        let mut oracle = None;
        for _ in 0..ITERS {
            let t = Instant::now();
            let o = ReachOracle::build(graph, threads).expect("acyclic");
            build = build.min(t.elapsed());
            oracle = Some(o);
        }
        let oracle = oracle.expect("built at least once");

        // Fan the query volume across the same worker count; chunk
        // granularity keeps the dispatch cost amortized.
        let chunks: Vec<&[(u32, u32)]> = pairs
            .chunks(pairs.len().div_ceil(threads * 8).max(1))
            .collect();
        let mut query = Duration::MAX;
        for _ in 0..ITERS {
            let t = Instant::now();
            let hits: usize = cafa_engine::fleet::map(&chunks, threads, |chunk| {
                chunk.iter().filter(|&&(a, b)| oracle.reaches(a, b)).count()
            })
            .into_iter()
            .sum();
            std::hint::black_box(hits);
            query = query.min(t.elapsed());
        }
        points.push(ParallelPoint {
            threads,
            build,
            query,
        });
    }

    // Head-to-head on a bounded subset: the same pairs through the DFS
    // and through the index, single-worker.
    let subset = &pairs[..DFS_PAIRS.min(pairs.len())];
    let oracle = ReachOracle::build(graph, 1).expect("acyclic");
    let mut dfs = Duration::MAX;
    let mut scratch = BitSet::new(graph.node_count());
    for _ in 0..ITERS {
        let t = Instant::now();
        let hits = subset
            .iter()
            .filter(|&&(a, b)| graph.reaches(a, b, &mut scratch))
            .count();
        std::hint::black_box(hits);
        dfs = dfs.min(t.elapsed());
    }
    let mut oracle_wall = Duration::MAX;
    for _ in 0..ITERS {
        let t = Instant::now();
        let hits = subset
            .iter()
            .filter(|&&(a, b)| oracle.reaches(a, b))
            .count();
        std::hint::black_box(hits);
        oracle_wall = oracle_wall.min(t.elapsed());
    }

    ParallelSweep {
        label: label.to_owned(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        chains: oracle.chain_count(),
        points,
        dfs,
        oracle: oracle_wall,
    }
}

/// Runs the parallel sweep on the synthetic scaling trace and the
/// heaviest catalog app, prints the tables, and writes
/// `BENCH_parallel.json`.
///
/// # Panics
///
/// Panics if recording, analysis, or the JSON write fails.
pub fn parallel_main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel reachability oracle — build + query scaling");
    println!("host parallelism: {host_cpus} (wall-clock thread scaling needs > 1)");
    let synthetic = synthetic_trace(8_000);
    let heaviest = all_apps()
        .into_iter()
        .max_by_key(|a| a.expected.events)
        .expect("catalog is non-empty");
    let heavy_trace = heaviest
        .record(0)
        .expect("workload records cleanly")
        .trace
        .expect("instrumentation is on");

    let sweeps = [
        parallel_sweep("synthetic/8000", &synthetic),
        parallel_sweep(&heaviest.name, &heavy_trace),
    ];
    for s in &sweeps {
        println!(
            "\n{} — {} nodes, {} edges, {} chains; {} queries per point:",
            s.label, s.nodes, s.edges, s.chains, QUERY_PAIRS
        );
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            "threads", "build (s)", "query (s)", "Mquery/s"
        );
        for p in &s.points {
            println!(
                "{:>8} {:>12.4} {:>12.4} {:>12.1}",
                p.threads,
                p.build.as_secs_f64(),
                p.query.as_secs_f64(),
                p.mqueries_per_s()
            );
        }
        println!(
            "query speedup at 4 workers: {:.2}x; DFS vs oracle on {} pairs: {:.4}s vs {:.6}s ({:.0}x)",
            s.query_speedup(4),
            DFS_PAIRS,
            s.dfs.as_secs_f64(),
            s.oracle.as_secs_f64(),
            s.dfs_speedup()
        );
    }

    let json = render_parallel_json(&sweeps, host_cpus);
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}

/// Renders the sweeps as a stable JSON document.
fn render_parallel_json(sweeps: &[ParallelSweep], host_cpus: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    out.push_str("  \"benchmarks\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": \"{}\",", s.label);
        let _ = writeln!(out, "      \"nodes\": {},", s.nodes);
        let _ = writeln!(out, "      \"edges\": {},", s.edges);
        let _ = writeln!(out, "      \"chains\": {},", s.chains);
        let _ = writeln!(out, "      \"query_pairs\": {QUERY_PAIRS},");
        out.push_str("      \"threads\": [\n");
        for (j, p) in s.points.iter().enumerate() {
            let comma = if j + 1 < s.points.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"threads\": {}, \"build_seconds\": {:.6}, \
                 \"query_seconds\": {:.6}, \"mqueries_per_s\": {:.2}}}{comma}",
                p.threads,
                p.build.as_secs_f64(),
                p.query.as_secs_f64(),
                p.mqueries_per_s()
            );
        }
        out.push_str("      ],\n");
        let _ = writeln!(
            out,
            "      \"query_speedup_at_4\": {:.2},",
            s.query_speedup(4)
        );
        let _ = writeln!(out, "      \"dfs_comparison\": {{");
        let _ = writeln!(out, "        \"pairs\": {DFS_PAIRS},");
        let _ = writeln!(out, "        \"dfs_seconds\": {:.6},", s.dfs.as_secs_f64());
        let _ = writeln!(
            out,
            "        \"oracle_seconds\": {:.6},",
            s.oracle.as_secs_f64()
        );
        let _ = writeln!(out, "        \"speedup\": {:.1}", s.dfs_speedup());
        out.push_str("      }\n");
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}
