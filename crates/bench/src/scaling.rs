//! §6.4 harness: offline analysis time as a function of event count.
//!
//! The paper's offline analyzer took 30 minutes to 10 hours per trace,
//! with ToDoList (≈16 h) and Music (≈1 day) slowest "due to the
//! excessive amount of events". The shape to reproduce is analysis
//! time growing superlinearly with the number of events; the absolute
//! numbers are not comparable (this analyzer uses bitset sweeps instead
//! of the paper's per-query graph walks and runs in milliseconds).

use std::time::Instant;

use cafa_apps::all_apps;
use cafa_core::Analyzer;
use cafa_sim::{run, ProgramBuilder, SimConfig};

/// One point of the scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Label (app name or synthetic size).
    pub label: String,
    /// Events in the trace.
    pub events: usize,
    /// Records in the trace.
    pub records: usize,
    /// Analysis wall time in seconds.
    pub analyze_s: f64,
}

fn time_analysis(trace: &cafa_trace::Trace) -> f64 {
    let t = Instant::now();
    let report = Analyzer::new().analyze(trace).expect("analysis succeeds");
    std::hint::black_box(report.races.len());
    t.elapsed().as_secs_f64()
}

/// Builds a synthetic trace of roughly `events` events with a fixed
/// race population, then times its analysis.
///
/// # Panics
///
/// Panics if simulation or analysis fails.
pub fn synthetic_point(events: usize) -> ScalePoint {
    let mut p = ProgramBuilder::new(format!("synthetic-{events}"));
    let proc = p.process();
    let looper = p.looper(proc);
    let mut pats = cafa_apps::patterns::Patterns::new(&mut p, proc, looper);
    pats.intra(false, false);
    pats.inter(false);
    pats.fp_bool_guard();
    pats.scalar_burst(4, 8);
    pats.fill_to(events, 10);
    drop(pats.finish());
    let program = p.build();
    let outcome = run(&program, &SimConfig::with_seed(0)).expect("runs cleanly");
    let trace = outcome.trace.expect("instrumented");
    let stats = trace.stats();
    ScalePoint {
        label: format!("synthetic/{events}"),
        events: stats.events,
        records: stats.records,
        analyze_s: time_analysis(&trace),
    }
}

/// Times the analysis of every app trace.
pub fn app_points(seed: u64) -> Vec<ScalePoint> {
    all_apps()
        .iter()
        .map(|app| {
            let trace = app
                .record(seed)
                .expect("records")
                .trace
                .expect("instrumented");
            let stats = trace.stats();
            ScalePoint {
                label: app.name.to_owned(),
                events: stats.events,
                records: stats.records,
                analyze_s: time_analysis(&trace),
            }
        })
        .collect()
}

/// Runs and prints the sweep plus the per-app timings.
pub fn main() {
    println!("§6.4 — offline analysis time vs trace size");
    println!("\nsynthetic sweep (fixed race population, growing filler):");
    println!(
        "{:<16} {:>8} {:>10} {:>12}",
        "trace", "events", "records", "analysis (s)"
    );
    let mut prev: Option<(usize, f64)> = None;
    for events in [500usize, 1_000, 2_000, 4_000, 8_000, 16_000] {
        let pt = synthetic_point(events);
        let growth = prev
            .map(|(pe, pt_s)| {
                let er = pt.events as f64 / pe as f64;
                let tr = pt.analyze_s / pt_s;
                format!("  ({er:.1}x events -> {tr:.1}x time)")
            })
            .unwrap_or_default();
        println!(
            "{:<16} {:>8} {:>10} {:>12.4}{growth}",
            pt.label, pt.events, pt.records, pt.analyze_s
        );
        prev = Some((pt.events, pt.analyze_s));
    }

    println!("\nper-app traces:");
    println!(
        "{:<16} {:>8} {:>10} {:>12}",
        "app", "events", "records", "analysis (s)"
    );
    let mut points = app_points(0);
    points.sort_by_key(|x| x.events);
    for pt in points {
        println!(
            "{:<16} {:>8} {:>10} {:>12.4}",
            pt.label, pt.events, pt.records, pt.analyze_s
        );
    }
    println!(
        "\nShape check: time grows superlinearly with events, and the\n\
         event-heavy traces (ToDoList, Camera, Music) are the slowest —\n\
         the ordering behind the paper's 16h/1day outliers."
    );
}
