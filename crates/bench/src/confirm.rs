//! End-to-end race confirmation: detect, then dynamically validate.
//!
//! For every race the detector reports, search the app's stress variant
//! for a schedule where the violation actually fires (see
//! `cafa_apps::prober`). True races should confirm with a reproducible
//! witness seed; false positives should never fire — closing the loop
//! between the predictive report and observable behavior.

use cafa_apps::prober::confirm;
use cafa_apps::{all_apps, Label};
use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};

/// Per-app confirmation tallies.
#[derive(Clone, Debug, Default)]
pub struct ConfirmRow {
    /// Application name.
    pub name: &'static str,
    /// Oracle-harmful reports that confirmed (found a witness).
    pub harmful_confirmed: usize,
    /// Oracle-harmful reports that did not confirm in budget.
    pub harmful_unconfirmed: usize,
    /// Oracle-benign reports that (correctly) never fired.
    pub benign_silent: usize,
    /// Oracle-benign reports that fired — must be zero, or the oracle
    /// is wrong.
    pub benign_fired: usize,
}

/// Detects and probes one app.
///
/// # Panics
///
/// Panics if recording, analysis, or probing fails.
pub fn measure_app(app: &cafa_apps::AppSpec, budget: u64) -> ConfirmRow {
    let trace = app.record(0).expect("records").trace.expect("instrumented");
    let session = AnalysisSession::new(&trace);
    let report = Analyzer::new().analyze_with(&session).expect("analyzes");
    let mut row = ConfirmRow {
        name: app.name,
        ..ConfirmRow::default()
    };
    for race in &report.races {
        let confirmed = confirm(app, race.var, budget).is_confirmed();
        match app.truth.get(race.var) {
            Some(Label::Harmful { .. }) => {
                if confirmed {
                    row.harmful_confirmed += 1;
                } else {
                    row.harmful_unconfirmed += 1;
                }
            }
            _ => {
                if confirmed {
                    row.benign_fired += 1;
                } else {
                    row.benign_silent += 1;
                }
            }
        }
    }
    row
}

/// Probes every app on the fleet; rows come back in app order.
pub fn compute(budget: u64) -> Vec<ConfirmRow> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app(app, budget)
    })
}

/// Runs and prints the confirmation table.
pub fn main() {
    let budget = 32;
    println!("Race confirmation by schedule search ({budget} stress schedules per race)");
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>13}",
        "App", "confirmed", "unconfirmed", "benign-quiet", "benign-FIRED"
    );
    let mut t = ConfirmRow::default();
    for r in compute(budget) {
        println!(
            "{:<12} {:>10} {:>13} {:>13} {:>13}",
            r.name, r.harmful_confirmed, r.harmful_unconfirmed, r.benign_silent, r.benign_fired
        );
        t.harmful_confirmed += r.harmful_confirmed;
        t.harmful_unconfirmed += r.harmful_unconfirmed;
        t.benign_silent += r.benign_silent;
        t.benign_fired += r.benign_fired;
    }
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>13}",
        "Overall", t.harmful_confirmed, t.harmful_unconfirmed, t.benign_silent, t.benign_fired
    );
    println!(
        "\n{} of 69 true races confirmed with reproducible witness schedules;\n\
         {} false positives stayed silent (as they must — {} fired).",
        t.harmful_confirmed, t.benign_silent, t.benign_fired
    );
}
