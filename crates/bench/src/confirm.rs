//! End-to-end race confirmation: detect, then dynamically validate —
//! directed schedule synthesis against blind random probing.
//!
//! For every race the detector reports, two searches run over the
//! app's stress variant looking for a schedule where the violation
//! actually fires:
//!
//! * **directed** — the `cafa-replay` ladder: synthesized defer-rule
//!   schedules first, then HB-bounded guided search, then random
//!   probing (all witnesses replay-verified);
//! * **random** — the pre-existing `cafa_apps::prober` baseline:
//!   seeds 0, 1, 2, … until the violation fires or the budget runs
//!   out.
//!
//! True races should confirm under both (directed in far fewer runs);
//! false positives must never fire under either. The binary prints
//! the comparison table and writes `BENCH_confirm.json` to the
//! current directory.

use cafa_apps::all_apps;
use cafa_apps::prober::confirm;
use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};
use cafa_replay::{validate_app, Method, ReplayConfig};

/// Per-app confirmation tallies.
#[derive(Clone, Debug, Default)]
pub struct ConfirmRow {
    /// Application name.
    pub name: String,
    /// Oracle-harmful reports that confirmed (found a witness).
    pub harmful_confirmed: usize,
    /// Oracle-harmful reports that did not confirm in budget.
    pub harmful_unconfirmed: usize,
    /// Oracle-benign reports that (correctly) never fired.
    pub benign_silent: usize,
    /// Oracle-benign reports that fired — must be zero, or the oracle
    /// is wrong.
    pub benign_fired: usize,
    /// Directed-ladder runs spent to witness each confirmed harmful
    /// race, summed.
    pub directed_runs: u64,
    /// Harmful confirmations the directed ladder got from a
    /// synthesized (non-random) schedule.
    pub directed_hits: usize,
    /// Random-probing runs spent on the same harmful races, summed
    /// (a full budget each for the ones random never confirmed).
    pub random_runs: u64,
    /// Harmful races random probing missed within the budget.
    pub random_unconfirmed: usize,
}

impl ConfirmRow {
    fn add(&mut self, other: &ConfirmRow) {
        self.harmful_confirmed += other.harmful_confirmed;
        self.harmful_unconfirmed += other.harmful_unconfirmed;
        self.benign_silent += other.benign_silent;
        self.benign_fired += other.benign_fired;
        self.directed_runs += other.directed_runs;
        self.directed_hits += other.directed_hits;
        self.random_runs += other.random_runs;
        self.random_unconfirmed += other.random_unconfirmed;
    }
}

/// Detects and probes one app.
///
/// # Panics
///
/// Panics if recording, analysis, or probing fails.
pub fn measure_app(app: &cafa_apps::AppSpec, budget: u64) -> ConfirmRow {
    let trace = app.record(0).expect("records").trace.expect("instrumented");
    let session = AnalysisSession::new(&trace);
    let report = Analyzer::new().analyze_with(&session).expect("analyzes");
    let cfg = ReplayConfig {
        budget,
        ..ReplayConfig::default()
    };
    let validation = validate_app(app, &cfg).expect("validates");
    assert_eq!(
        validation.races.len(),
        report.races.len(),
        "validation covers the full report"
    );

    let mut row = ConfirmRow {
        name: app.name.clone(),
        ..ConfirmRow::default()
    };
    for validated in &validation.races {
        let v = &validated.validation;
        if validated.harmful {
            if v.confirmed() && v.replay_verified {
                row.harmful_confirmed += 1;
                row.directed_runs += v.runs_to_witness;
                if matches!(v.method, Some(Method::Directed | Method::Guided)) {
                    row.directed_hits += 1;
                }
                // The random baseline on the same race, same budget.
                let probe = confirm(app, v.var, budget);
                if probe.is_confirmed() {
                    row.random_runs += probe.runs_used();
                } else {
                    row.random_runs += budget;
                    row.random_unconfirmed += 1;
                }
            } else {
                row.harmful_unconfirmed += 1;
            }
        } else if v.confirmed() {
            row.benign_fired += 1;
        } else {
            row.benign_silent += 1;
        }
    }
    row
}

/// Probes every app on the fleet; rows come back in app order.
pub fn compute(budget: u64) -> Vec<ConfirmRow> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app(app, budget)
    })
}

fn render_json(budget: u64, rows: &[ConfirmRow], t: &ConfirmRow) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget\": {budget},\n"));
    json.push_str("  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"harmful_confirmed\": {}, \"harmful_unconfirmed\": {}, \
             \"benign_silent\": {}, \"benign_fired\": {}, \"directed_runs\": {}, \
             \"directed_hits\": {}, \"random_runs\": {}, \"random_unconfirmed\": {}}}{}\n",
            r.name,
            r.harmful_confirmed,
            r.harmful_unconfirmed,
            r.benign_silent,
            r.benign_fired,
            r.directed_runs,
            r.directed_hits,
            r.random_runs,
            r.random_unconfirmed,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"harmful_confirmed\": {}, \"harmful_unconfirmed\": {}, \
         \"benign_silent\": {}, \"benign_fired\": {}, \"directed_runs\": {}, \
         \"directed_hits\": {}, \"random_runs\": {}, \"random_unconfirmed\": {}}}\n",
        t.harmful_confirmed,
        t.harmful_unconfirmed,
        t.benign_silent,
        t.benign_fired,
        t.directed_runs,
        t.directed_hits,
        t.random_runs,
        t.random_unconfirmed,
    ));
    json.push_str("}\n");
    json
}

/// Runs the comparison, prints the table, writes `BENCH_confirm.json`.
///
/// # Panics
///
/// Panics if any pipeline stage fails or the JSON cannot be written.
pub fn main() {
    let budget = 32;
    println!(
        "Race confirmation: directed synthesis vs random probing ({budget} runs budget per race)"
    );
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>13} {:>14} {:>13} {:>15}",
        "App",
        "confirmed",
        "unconfirmed",
        "benign-quiet",
        "benign-FIRED",
        "directed-runs",
        "random-runs",
        "random-missed"
    );
    let rows = compute(budget);
    let mut t = ConfirmRow::default();
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>13} {:>13} {:>13} {:>14} {:>13} {:>15}",
            r.name,
            r.harmful_confirmed,
            r.harmful_unconfirmed,
            r.benign_silent,
            r.benign_fired,
            r.directed_runs,
            r.random_runs,
            r.random_unconfirmed
        );
        t.add(r);
    }
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>13} {:>14} {:>13} {:>15}",
        "Overall",
        t.harmful_confirmed,
        t.harmful_unconfirmed,
        t.benign_silent,
        t.benign_fired,
        t.directed_runs,
        t.random_runs,
        t.random_unconfirmed
    );
    println!(
        "\n{} of 69 true races confirmed with replay-verified witness schedules \
         ({} from synthesized schedules);\n\
         directed ladder: {} runs total vs random probing: {} runs \
         ({} race(s) random never confirmed);\n\
         {} false positives stayed silent (as they must — {} fired).",
        t.harmful_confirmed,
        t.directed_hits,
        t.directed_runs,
        t.random_runs,
        t.random_unconfirmed,
        t.benign_silent,
        t.benign_fired
    );
    let json = render_json(budget, &rows, &t);
    std::fs::write("BENCH_confirm.json", json).expect("write BENCH_confirm.json");
    println!("wrote BENCH_confirm.json");
}
