//! Fleet ingest server benchmark: multi-session throughput, the cost
//! of restoring an evicted session from its journal versus rebuilding
//! from scratch, and the wall-clock overhead of running under a
//! memory budget — plus the memory-bound evidence (settled resident
//! peak under the budget while more session state than the budget
//! allows is live).
//!
//! Alongside the text output, [`main`] writes the measurements to
//! `BENCH_serve.json` in the current directory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cafa_fleetserve::client::{push_trace, FramedClient, ServerFrame};
use cafa_fleetserve::server::{Server, ServerConfig};
use cafa_fleetserve::Totals;
use cafa_stream::{IncrementalSession, StreamOptions};
use cafa_trace::to_binary_vec;

/// One server lifecycle on a background thread.
struct Harness {
    server: Arc<Server>,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
    addr: String,
}

impl Harness {
    fn start(config: ServerConfig) -> Self {
        let server = Arc::new(Server::bind("127.0.0.1:0", None, config).expect("bind"));
        let addr = server.local_addr().expect("bound").to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || server.run(&stop))
        };
        Self {
            server,
            stop,
            handle,
            addr,
        }
    }

    fn stop(self) -> Totals {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("server thread");
        self.server.registry().totals()
    }
}

/// Concurrent-session throughput: wall time for the whole catalog
/// pushed at once, one connection per app.
struct Throughput {
    sessions: usize,
    bytes: usize,
    threads: usize,
    wall: Duration,
}

impl Throughput {
    fn sessions_per_s(&self) -> f64 {
        self.sessions as f64 / self.wall.as_secs_f64()
    }

    fn mib_per_s(&self) -> f64 {
        self.bytes as f64 / (1 << 20) as f64 / self.wall.as_secs_f64()
    }
}

fn measure_throughput(corpus: &[(String, Vec<u8>)], threads: usize) -> Throughput {
    let harness = Harness::start(ServerConfig {
        threads,
        ..ServerConfig::default()
    });
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (name, bytes) in corpus {
            let addr = harness.addr.clone();
            scope.spawn(move || {
                let outcome = push_trace(&addr, name, bytes, 64 << 10).expect("push");
                assert!(outcome.report.is_some(), "{name}: trace completes");
            });
        }
    });
    let wall = start.elapsed();
    let threads = harness.server.threads();
    harness.stop();
    Throughput {
        sessions: corpus.len(),
        bytes: corpus.iter().map(|(_, b)| b.len()).sum(),
        threads,
        wall,
    }
}

/// Restore-vs-rebuild: replaying half a trace's journal frames into a
/// fresh session (what the server does when a cold session's next
/// byte arrives, or after a crash) versus analyzing the whole trace
/// from scratch (what a client would pay to re-send everything).
struct RestoreCost {
    bytes_replayed: usize,
    restore: Duration,
    bytes_full: usize,
    rebuild: Duration,
}

impl RestoreCost {
    /// Restore cost as a fraction of a from-scratch rebuild.
    fn ratio(&self) -> f64 {
        self.restore.as_secs_f64() / self.rebuild.as_secs_f64()
    }
}

fn measure_restore(bytes: &[u8]) -> RestoreCost {
    let cut = bytes.len() / 2;
    let frames: Vec<&[u8]> = bytes[..cut].chunks(64 << 10).collect();

    let start = Instant::now();
    let restored = IncrementalSession::restore(StreamOptions::default(), frames.iter().copied())
        .expect("journal replays");
    let restore = start.elapsed();
    assert_eq!(restored.progress().bytes, cut as u64);

    let start = Instant::now();
    let mut fresh = IncrementalSession::new(StreamOptions::default());
    for c in bytes.chunks(64 << 10) {
        fresh.push(c).expect("valid trace");
    }
    let _ = fresh.finish().expect("valid trace");
    let rebuild = start.elapsed();

    RestoreCost {
        bytes_replayed: cut,
        restore,
        bytes_full: bytes.len(),
        rebuild,
    }
}

/// One framed interleaved run over the whole corpus; returns wall
/// time and the server's final totals.
fn framed_run(
    corpus: &[(String, Vec<u8>)],
    state_dir: &std::path::Path,
    budget: Option<usize>,
) -> (Duration, Totals) {
    let harness = Harness::start(ServerConfig {
        threads: 2,
        state_dir: Some(state_dir.to_path_buf()),
        memory_budget: budget,
        ..ServerConfig::default()
    });
    let start = Instant::now();
    let mut client = FramedClient::connect(&harness.addr, "proxy").expect("connect");
    let chunk = 16 << 10;
    let mut offsets = vec![0usize; corpus.len()];
    loop {
        let mut progressed = false;
        for (i, (name, bytes)) in corpus.iter().enumerate() {
            if offsets[i] < bytes.len() {
                let end = (offsets[i] + chunk).min(bytes.len());
                client
                    .send_data(name, &bytes[offsets[i]..end])
                    .expect("send");
                offsets[i] = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    client.finish_writes().expect("half-close");
    let frames = client.drain().expect("drain");
    let reports = frames
        .iter()
        .filter(|f| matches!(f, ServerFrame::Report { .. }))
        .count();
    assert_eq!(reports, corpus.len(), "every session completes");
    let wall = start.elapsed();
    (wall, harness.stop())
}

/// The memory-budget evidence and overhead measurement.
struct EvictionRun {
    budget: usize,
    footprint_sum: usize,
    sessions: usize,
    unbudgeted_wall: Duration,
    budgeted_wall: Duration,
    totals: Totals,
}

impl EvictionRun {
    fn overhead(&self) -> f64 {
        self.budgeted_wall.as_secs_f64() / self.unbudgeted_wall.as_secs_f64()
    }
}

fn measure_eviction(corpus: &[(String, Vec<u8>)]) -> EvictionRun {
    // Final resident footprint of every session, for calibration.
    let footprint_sum: usize = corpus
        .iter()
        .map(|(_, bytes)| {
            let mut s = IncrementalSession::new(StreamOptions::default());
            s.push(bytes).expect("valid trace");
            s.footprint_bytes()
        })
        .sum();
    let budget = (footprint_sum / 3).max(4096);

    let dir = std::env::temp_dir().join(format!("cafa-bench-serve-{}", std::process::id()));
    // Unmeasured warmup so neither measured run pays one-time costs
    // (page cache, allocator growth, lazy statics).
    let _ = std::fs::remove_dir_all(&dir);
    let _ = framed_run(corpus, &dir, None);
    let _ = std::fs::remove_dir_all(&dir);
    let (unbudgeted_wall, _) = framed_run(corpus, &dir, None);
    let _ = std::fs::remove_dir_all(&dir);
    let (budgeted_wall, totals) = framed_run(corpus, &dir, Some(budget));
    let _ = std::fs::remove_dir_all(&dir);

    assert!(totals.evictions > 0, "budget forces evictions");
    assert!(totals.restores > 0, "cold sessions get restored");
    assert!(
        totals.settled_peak_bytes <= budget,
        "settled peak {} within budget {budget}",
        totals.settled_peak_bytes
    );
    EvictionRun {
        budget,
        footprint_sum,
        sessions: corpus.len(),
        unbudgeted_wall,
        budgeted_wall,
        totals,
    }
}

/// Runs the benchmark and writes `BENCH_serve.json`.
///
/// # Panics
///
/// Panics if recording, the server, or the JSON write fails.
pub fn main() {
    let corpus: Vec<(String, Vec<u8>)> = cafa_apps::all_apps()
        .iter()
        .map(|app| {
            let outcome = app.record(0).expect("workload records cleanly");
            let trace = outcome.trace.expect("instrumentation is on");
            (app.name.to_owned(), to_binary_vec(&trace))
        })
        .collect();

    println!("Fleet ingest server benchmark — {} sessions", corpus.len());
    let sweeps: Vec<Throughput> = [1usize, 2, 0]
        .iter()
        .map(|&t| {
            let m = measure_throughput(&corpus, t);
            println!(
                "throughput at {} workers: {:.1} sessions/s, {:.1} MiB/s ({:.3}s wall)",
                m.threads,
                m.sessions_per_s(),
                m.mib_per_s(),
                m.wall.as_secs_f64()
            );
            m
        })
        .collect();

    let heaviest = corpus
        .iter()
        .max_by_key(|(_, b)| b.len())
        .expect("non-empty corpus");
    let restore = measure_restore(&heaviest.1);
    println!(
        "restore {} journaled bytes: {:.4}s vs {:.4}s full rebuild of {} bytes — {:.2}x",
        restore.bytes_replayed,
        restore.restore.as_secs_f64(),
        restore.rebuild.as_secs_f64(),
        restore.bytes_full,
        restore.ratio()
    );

    let eviction = measure_eviction(&corpus);
    println!(
        "eviction overhead: {:.3}s budgeted vs {:.3}s unbudgeted — {:.2}x \
         ({} evictions, {} restores)",
        eviction.budgeted_wall.as_secs_f64(),
        eviction.unbudgeted_wall.as_secs_f64(),
        eviction.overhead(),
        eviction.totals.evictions,
        eviction.totals.restores
    );
    println!(
        "memory bound held: settled peak {} <= budget {} while {} sessions \
         ({} total footprint bytes) were live",
        eviction.totals.settled_peak_bytes,
        eviction.budget,
        eviction.sessions,
        eviction.footprint_sum
    );

    let json = render_json(&sweeps, &restore, &eviction);
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

/// Renders the measurements as a stable JSON document.
fn render_json(sweeps: &[Throughput], restore: &RestoreCost, eviction: &EvictionRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"throughput\": [");
    for (i, m) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"sessions\": {}, \"bytes\": {}, \
             \"wall_s\": {:.6}, \"sessions_per_s\": {:.3}, \"mib_per_s\": {:.3}}}{comma}",
            m.threads,
            m.sessions,
            m.bytes,
            m.wall.as_secs_f64(),
            m.sessions_per_s(),
            m.mib_per_s()
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"restore\": {{");
    let _ = writeln!(out, "    \"bytes_replayed\": {},", restore.bytes_replayed);
    let _ = writeln!(
        out,
        "    \"restore_s\": {:.6},",
        restore.restore.as_secs_f64()
    );
    let _ = writeln!(out, "    \"bytes_full\": {},", restore.bytes_full);
    let _ = writeln!(
        out,
        "    \"rebuild_s\": {:.6},",
        restore.rebuild.as_secs_f64()
    );
    let _ = writeln!(out, "    \"restore_vs_rebuild\": {:.4}", restore.ratio());
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"eviction\": {{");
    let _ = writeln!(out, "    \"memory_budget_bytes\": {},", eviction.budget);
    let _ = writeln!(
        out,
        "    \"live_footprint_bytes\": {},",
        eviction.footprint_sum
    );
    let _ = writeln!(out, "    \"sessions_live\": {},", eviction.sessions);
    let _ = writeln!(
        out,
        "    \"settled_peak_bytes\": {},",
        eviction.totals.settled_peak_bytes
    );
    let _ = writeln!(out, "    \"evictions\": {},", eviction.totals.evictions);
    let _ = writeln!(out, "    \"restores\": {},", eviction.totals.restores);
    let _ = writeln!(
        out,
        "    \"unbudgeted_wall_s\": {:.6},",
        eviction.unbudgeted_wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "    \"budgeted_wall_s\": {:.6},",
        eviction.budgeted_wall.as_secs_f64()
    );
    let _ = writeln!(out, "    \"overhead\": {:.4}", eviction.overhead());
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}
