//! §6.2 harness: a survey of use-after-free violations.
//!
//! The paper's §6.2 describes *how* the detected races manifest: most
//! trigger when the app pauses and a cleanup handler frees pointers
//! that queued events still use; some crash, some throw exceptions the
//! app swallows (ToDoList's empty catch block — "the latest user input
//! would not be written to the database"). This harness runs every
//! workload under many schedules (stock ROM — no tracing) and tallies
//! the violations that actually fire, split into crashes and silently
//! swallowed exceptions, cross-checked against the oracle labels.

use std::collections::BTreeMap;

use cafa_apps::{all_apps, Label};
use cafa_engine::fleet;

/// Violation tally for one app.
#[derive(Clone, Debug, Default)]
pub struct SurveyRow {
    /// Application name.
    pub name: String,
    /// Schedules exercised.
    pub schedules: usize,
    /// Schedules with at least one uncaught NPE (a crash).
    pub crashing_schedules: usize,
    /// Total uncaught NPEs observed.
    pub crashes: usize,
    /// Total caught-and-swallowed NPEs observed (§6.2's silent data
    /// loss).
    pub swallowed: usize,
    /// Distinct harmful variables whose violation manifested in at
    /// least one schedule.
    pub distinct_vars_hit: usize,
}

/// Surveys one app across `schedules` seeds.
///
/// # Panics
///
/// Panics if a run fails, or if a violation fires on a variable the
/// oracle does not label harmful (that would falsify the ground truth).
pub fn survey_app(app: &cafa_apps::AppSpec, schedules: usize) -> SurveyRow {
    let mut row = SurveyRow {
        name: app.name.clone(),
        schedules,
        ..SurveyRow::default()
    };
    let mut per_var: BTreeMap<u32, usize> = BTreeMap::new();
    for seed in 0..schedules as u64 {
        let outcome = app.run_stress(seed).expect("runs cleanly");
        if outcome.crashed() {
            row.crashing_schedules += 1;
        }
        for npe in &outcome.npes {
            assert!(
                matches!(app.truth.get(npe.var), Some(Label::Harmful { .. })),
                "{}: NPE on non-harmful {}",
                app.name,
                npe.var
            );
            *per_var.entry(npe.var.as_u32()).or_default() += 1;
            if npe.caught {
                row.swallowed += 1;
            } else {
                row.crashes += 1;
            }
        }
    }
    row.distinct_vars_hit = per_var.len();
    row
}

/// Surveys every app on the fleet; rows come back in app order.
pub fn compute(schedules: usize) -> Vec<SurveyRow> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        survey_app(app, schedules)
    })
}

/// Runs and prints the survey.
pub fn main() {
    let schedules = 24;
    println!("§6.2 — survey of use-after-free violations ({schedules} schedules per app)");
    println!(
        "{:<12} {:>10} {:>9} {:>11} {:>10}",
        "App", "crash-run", "crashes", "swallowed", "vars-hit"
    );
    let mut any_swallowed = 0;
    for row in compute(schedules) {
        any_swallowed += row.swallowed;
        println!(
            "{:<12} {:>7}/{:<2} {:>9} {:>11} {:>10}",
            row.name,
            row.crashing_schedules,
            row.schedules,
            row.crashes,
            row.swallowed,
            row.distinct_vars_hit,
        );
    }
    println!(
        "\nAs in §6.2, most violations fire around pause-time cleanup; the\n\
         swallowed column ({any_swallowed} exceptions) is ToDoList's empty-catch\n\
         pattern — no crash, but the write is lost. Every violation hit a\n\
         variable the oracle labels harmful (asserted)."
    );
}
