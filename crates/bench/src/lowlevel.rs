//! §4.1 harness: conventional-definition ("low-level") races versus
//! CAFA's use-free reports.
//!
//! The paper motivates the effect-oriented design with one number:
//! a 30-second ConnectBot trace contains **1,664** races under the
//! plain conflicting-access definition, "and most of them are not
//! harmful bugs", while CAFA reports 3. This harness reproduces the
//! measurement for every app, under both the CAFA and the conventional
//! causality models.

use cafa_apps::{all_apps, AppSpec};
use cafa_core::lowlevel::count_races_with;
use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};
use cafa_hb::CausalityConfig;

/// Per-app low-level race measurement.
#[derive(Clone, Debug)]
pub struct LowLevelRow {
    /// Application name.
    pub name: String,
    /// Racy site pairs under the CAFA (relaxed event order) model.
    pub cafa_pairs: usize,
    /// Racy site pairs under the conventional (total event order)
    /// model.
    pub conventional_pairs: usize,
    /// Use-free races CAFA reports (the Table 1 column, for contrast).
    pub usefree_reports: usize,
    /// Expected CAFA pairs, where the paper publishes a number.
    pub expected: Option<usize>,
}

/// Measures one app.
///
/// # Panics
///
/// Panics if the workload fails to record or analyze.
pub fn measure_app(app: &AppSpec, seed: u64) -> LowLevelRow {
    let trace = app
        .record(seed)
        .expect("records cleanly")
        .trace
        .expect("instrumented");
    // One session serves both counters and the detector: the CAFA and
    // conventional models are each built once and shared.
    let session = AnalysisSession::new(&trace);
    let cafa = count_races_with(&session, CausalityConfig::cafa()).expect("count under cafa");
    let conv = count_races_with(&session, CausalityConfig::conventional())
        .expect("count under conventional");
    let report = Analyzer::new()
        .analyze_with(&session)
        .expect("analysis succeeds");
    LowLevelRow {
        name: app.name.clone(),
        cafa_pairs: cafa.racy_pairs,
        conventional_pairs: conv.racy_pairs,
        usefree_reports: report.races.len(),
        expected: app.lowlevel_pairs,
    }
}

/// Measures all apps on the fleet; rows come back in app order.
pub fn compute(seed: u64) -> Vec<LowLevelRow> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app(app, seed)
    })
}

/// Runs and prints the experiment.
pub fn main() {
    println!("§4.1 — low-level (conventional-definition) races vs use-free reports");
    println!(
        "{:<12} {:>12} {:>8} {:>14} {:>10}",
        "App", "low-level", "paper", "conventional", "use-free"
    );
    for row in compute(0) {
        println!(
            "{:<12} {:>12} {:>8} {:>14} {:>10}",
            row.name,
            row.cafa_pairs,
            row.expected
                .map_or_else(|| "-".to_owned(), |e| e.to_string()),
            row.conventional_pairs,
            row.usefree_reports,
        );
    }
    println!(
        "\nThe ConnectBot row is the paper's exhibit: 1,664 low-level races,\n\
         most benign, versus 3 use-free reports — the motivation for\n\
         effect-oriented detection."
    );
}
