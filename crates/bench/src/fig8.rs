//! Figure 8 harness: per-app tracing slowdown.
//!
//! Each application runs twice under the same seed — once on the
//! "stock ROM" (instrumentation compiled out) and once instrumented —
//! and the ratio of CPU times is the slowdown. The paper measures 2×
//! to 6× on a Nexus 4; the simulator reproduces the band and the
//! relative spread (lightweight event loops like Music and ToDoList
//! pay the most, compute-heavy apps like the browsers the least).

use std::time::Instant;

use cafa_apps::{all_apps, AppSpec};
use cafa_engine::fleet;

/// One app's overhead measurement.
#[derive(Clone, Debug)]
pub struct Overhead {
    /// Application name.
    pub name: String,
    /// Median stock (uninstrumented) run time, seconds.
    pub stock_s: f64,
    /// Median instrumented run time, seconds.
    pub traced_s: f64,
}

impl Overhead {
    /// The Figure 8 bar: traced time over stock time.
    pub fn slowdown(&self) -> f64 {
        self.traced_s / self.stock_s
    }
}

/// Best-of-`reps` wall-clock time of `f` (minimum is the standard
/// noise-robust estimator for CPU-bound microbenchmarks).
fn measure(f: impl Fn() -> u64, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .min_by(f64::total_cmp)
        .expect("reps >= 1")
}

/// Measures one app.
///
/// # Panics
///
/// Panics if the workload fails to run (shipped workloads run clean).
pub fn measure_app(app: &AppSpec, reps: usize) -> Overhead {
    let stock_s = measure(|| app.record_uninstrumented(0).unwrap().sink, reps);
    let traced_s = measure(|| app.record(0).unwrap().sink, reps);
    Overhead {
        name: app.name.clone(),
        stock_s,
        traced_s,
    }
}

/// Measures all apps on the fleet. Each app's stock/traced pair runs
/// on one worker, so the slowdown ratio sees the same contention on
/// both sides; best-of-`reps` absorbs the rest of the noise.
pub fn compute(reps: usize) -> Vec<Overhead> {
    let apps = all_apps();
    fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app(app, reps)
    })
}

/// Runs and prints the experiment.
pub fn main() {
    println!("Figure 8 — slowdown of trace collection (paper band: 2x-6x)");
    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "App", "stock (s)", "traced (s)", "slowdown"
    );
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for o in compute(7) {
        let s = o.slowdown();
        lo = lo.min(s);
        hi = hi.max(s);
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>8.2}x",
            o.name, o.stock_s, o.traced_s, s
        );
    }
    println!("\nmeasured band: {lo:.2}x - {hi:.2}x (paper: 2x - 6x)");
}
