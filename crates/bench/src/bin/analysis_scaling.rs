//! Regenerates the §6.4 analysis-time observation; with `--parallel`,
//! the reachability-oracle build/query scaling sweep; with
//! `--fixpoint`, the semi-naive-vs-naive fixpoint engine comparison.
fn main() {
    if std::env::args().any(|a| a == "--fixpoint") {
        cafa_bench::fixpoint::main();
    } else if std::env::args().any(|a| a == "--parallel") {
        cafa_bench::scaling::parallel_main();
    } else {
        cafa_bench::scaling::main();
    }
}
