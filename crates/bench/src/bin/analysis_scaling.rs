//! Regenerates the §6.4 analysis-time observation.
fn main() {
    cafa_bench::scaling::main();
}
