//! Regenerates the §6.4 analysis-time observation; with `--parallel`,
//! the reachability-oracle build/query scaling sweep instead.
fn main() {
    if std::env::args().any(|a| a == "--parallel") {
        cafa_bench::scaling::parallel_main();
    } else {
        cafa_bench::scaling::main();
    }
}
