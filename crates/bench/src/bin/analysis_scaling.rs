//! Regenerates the §6.4 analysis-time observation; with `--parallel`,
//! the reachability-oracle build/query scaling sweep; with
//! `--fixpoint`, the semi-naive-vs-naive fixpoint engine comparison;
//! with `--catalog`, the generated-corpus precision/recall +
//! throughput sweep (`BENCH_catalog.json`); with `--serve`, the fleet
//! ingest server throughput/eviction/restore sweep
//! (`BENCH_serve.json`); with `--scale [--quick]`, the demand-engine
//! fleet-island scaling sweep (`BENCH_scale.json`); with `--predict`,
//! the predictive-vs-HB comparison with replay adjudication
//! (`BENCH_predict.json`).
fn main() {
    if std::env::args().any(|a| a == "--fixpoint") {
        cafa_bench::fixpoint::main();
    } else if std::env::args().any(|a| a == "--parallel") {
        cafa_bench::scaling::parallel_main();
    } else if std::env::args().any(|a| a == "--catalog") {
        cafa_bench::catalog::main();
    } else if std::env::args().any(|a| a == "--serve") {
        cafa_bench::serve::main();
    } else if std::env::args().any(|a| a == "--scale") {
        let quick = std::env::args().any(|a| a == "--quick");
        cafa_bench::scale::main(quick);
    } else if std::env::args().any(|a| a == "--predict") {
        cafa_bench::predict::main();
    } else {
        cafa_bench::scaling::main();
    }
}
