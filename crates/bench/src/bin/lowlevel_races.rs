//! Regenerates the §4.1 low-level race measurement.
fn main() {
    cafa_bench::lowlevel::main();
}
