//! Streaming ingestion throughput and incremental-append benchmark.
fn main() {
    cafa_bench::streaming::main();
}
