//! Runs the design-choice ablations (queue rules, heuristics, coverage).
fn main() {
    cafa_bench::ablation::main();
}
