//! One-command artifact runner: every experiment, one markdown report.
//!
//! ```text
//! cargo run -p cafa-bench --bin fullreport --release > report.md
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let mut md = String::new();
    let _ = writeln!(md, "# CAFA-rs — full evaluation run\n");

    // ---- Table 1 ---------------------------------------------------------
    let _ = writeln!(md, "## Table 1\n");
    let _ = writeln!(
        md,
        "| App | Events | Reported | a/b/c | I/II/III | paper match |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    let mut exact = true;
    let mut session_builds = 0usize;
    let mut session_hits = 0usize;
    for (app, m, s) in cafa_bench::table1::compute_stats(0) {
        session_builds += s.model_builds;
        session_hits += s.model_cache_hits;
        let e = app.expected;
        let ok = m.events == e.events
            && m.reported == e.reported
            && (m.a, m.b, m.c) == (e.a, e.b, e.c)
            && (m.fp1, m.fp2, m.fp3) == (e.fp1, e.fp2, e.fp3);
        exact &= ok;
        let _ = writeln!(
            md,
            "| {} | {} | {} | {}/{}/{} | {}/{}/{} | {} |",
            app.name,
            m.events,
            m.reported,
            m.a,
            m.b,
            m.c,
            m.fp1,
            m.fp2,
            m.fp3,
            if ok { "exact" } else { "MISMATCH" }
        );
    }
    let _ = writeln!(
        md,
        "\nTable 1 reproduction: {}\n",
        if exact { "**exact**" } else { "MISMATCH" }
    );
    let _ = writeln!(
        md,
        "Engine sessions: {session_builds} HB model build(s), {session_hits} cache hit(s).\n"
    );

    // ---- Figure 8 --------------------------------------------------------
    let _ = writeln!(md, "## Figure 8 (tracing slowdown; paper band 2x-6x)\n");
    let _ = writeln!(md, "| App | slowdown |");
    let _ = writeln!(md, "|---|---|");
    for o in cafa_bench::fig8::compute(5) {
        let _ = writeln!(md, "| {} | {:.2}x |", o.name, o.slowdown());
    }

    // ---- §4.1 ------------------------------------------------------------
    let _ = writeln!(md, "\n## §4.1 low-level races\n");
    let _ = writeln!(md, "| App | low-level (CAFA) | conventional | use-free |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in cafa_bench::lowlevel::compute(0) {
        let _ = writeln!(
            md,
            "| {} | {}{} | {} | {} |",
            r.name,
            r.cafa_pairs,
            r.expected
                .map_or(String::new(), |e| format!(" (paper {e})")),
            r.conventional_pairs,
            r.usefree_reports
        );
    }

    // ---- Ablations ---------------------------------------------------------
    let _ = writeln!(md, "\n## Ablations (total reports)\n");
    let rows = cafa_bench::ablation::compute(0);
    let sum =
        |f: fn(&cafa_bench::ablation::AblationRow) -> usize| -> usize { rows.iter().map(f).sum() };
    let _ = writeln!(md, "| configuration | reports |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(md, "| full CAFA | {} |", sum(|r| r.cafa.reported));
    let _ = writeln!(
        md,
        "| no heuristics | {} |",
        sum(|r| r.no_heuristics.reported)
    );
    let _ = writeln!(
        md,
        "| no queue rules | {} |",
        sum(|r| r.no_queue_rules.reported)
    );
    let _ = writeln!(
        md,
        "| full listener coverage | {} |",
        sum(|r| r.full_coverage.reported)
    );
    let _ = writeln!(
        md,
        "| precise deref matching | {} |",
        sum(|r| r.precise_matching.reported)
    );

    // ---- Survey + confirmation ----------------------------------------------
    let _ = writeln!(md, "\n## §6.2 violation survey (stress, 16 schedules)\n");
    let _ = writeln!(md, "| App | crashing schedules | crashes | swallowed |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in cafa_bench::survey::compute(16) {
        let _ = writeln!(
            md,
            "| {} | {}/{} | {} | {} |",
            r.name, r.crashing_schedules, r.schedules, r.crashes, r.swallowed
        );
    }

    let _ = writeln!(md, "\n## Race confirmation (24 schedules per race)\n");
    let rows = cafa_bench::confirm::compute(24);
    let confirmed: usize = rows.iter().map(|r| r.harmful_confirmed).sum();
    let unconfirmed: usize = rows.iter().map(|r| r.harmful_unconfirmed).sum();
    let fired: usize = rows.iter().map(|r| r.benign_fired).sum();
    let _ = writeln!(
        md,
        "- true races confirmed with witness schedules: **{confirmed}** (unconfirmed: {unconfirmed})"
    );
    let _ = writeln!(md, "- false positives that fired: **{fired}** (must be 0)");

    // ---- Analysis cost breakdown -----------------------------------------
    // The Figure-8 numbers above cover the tracing side; this is the
    // analysis-side counterpart: where the detector's time goes, summed
    // over all ten app traces (absolute times vary run to run).
    let _ = writeln!(
        md,
        "\n## Analysis cost breakdown (per-pass wall time, all apps)\n"
    );
    let apps = cafa_apps::all_apps();
    let measured = cafa_engine::fleet::map(&apps, cafa_engine::fleet::default_threads(), |app| {
        let trace = app.record(0).expect("records").trace.expect("instrumented");
        let session = cafa_engine::AnalysisSession::new(&trace);
        let report = cafa_core::Analyzer::new()
            .analyze_with(&session)
            .expect("analyzes");
        report.stats.passes
    });
    let mut order: Vec<&'static str> = Vec::new();
    let mut totals: HashMap<&'static str, (Duration, usize)> = HashMap::new();
    for passes in &measured {
        for r in &passes.records {
            if !order.contains(&r.name) {
                order.push(r.name);
            }
            let entry = totals.entry(r.name).or_default();
            entry.0 += r.wall;
            entry.1 += r.items;
        }
    }
    let grand: Duration = totals.values().map(|(w, _)| *w).sum();
    let _ = writeln!(md, "| pass | wall (ms) | share | items |");
    let _ = writeln!(md, "|---|---|---|---|");
    for name in &order {
        let (wall, items) = totals[name];
        let share = if grand.is_zero() {
            0.0
        } else {
            100.0 * wall.as_secs_f64() / grand.as_secs_f64()
        };
        let _ = writeln!(
            md,
            "| {name} | {:.3} | {share:.1}% | {items} |",
            wall.as_secs_f64() * 1e3
        );
    }
    let _ = writeln!(
        md,
        "| total | {:.3} | 100.0% | |",
        grand.as_secs_f64() * 1e3
    );

    print!("{md}");
}
