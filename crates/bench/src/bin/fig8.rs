//! Regenerates Figure 8 of the paper (tracing slowdown).
fn main() {
    cafa_bench::fig8::main();
}
