//! Detect races, then dynamically confirm them by schedule search.
fn main() {
    cafa_bench::confirm::main();
}
