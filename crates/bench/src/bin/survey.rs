//! Runs the §6.2 use-after-free violation survey.
fn main() {
    cafa_bench::survey::main();
}
