//! Regenerates Table 1 of the paper. With `--detector both`, appends
//! the per-backend comparison (HB vs predictive, replay-adjudicated)
//! instead of the plain table.
fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        None => cafa_bench::table1::main(),
        Some("--detector") => match args.next().as_deref() {
            Some("hb") => cafa_bench::table1::main(),
            Some("both") | Some("predictive") => cafa_bench::table1::main_both(),
            other => {
                eprintln!(
                    "error: bad detector `{}` (valid backends: hb|predictive|both)",
                    other.unwrap_or("")
                );
                std::process::exit(1);
            }
        },
        Some(other) => {
            eprintln!("error: unknown argument `{other}` (usage: table1 [--detector hb|both])");
            std::process::exit(1);
        }
    }
}
