//! Regenerates Table 1 of the paper.
fn main() {
    cafa_bench::table1::main();
}
