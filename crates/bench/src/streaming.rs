//! Streaming-ingestion benchmark: decode throughput, per-pass times,
//! and the incremental-append-vs-full-rebuild comparison.
//!
//! Measures, on the largest catalog workload:
//!
//! * raw [`StreamDecoder`] throughput for both wire formats;
//! * end-to-end [`IncrementalSession`] throughput with its per-pass
//!   wall-time breakdown (`stream-decode`, `hb-ingest`, `hb-derive`);
//! * the cost of appending the final 10% of the trace's tasks to a
//!   warm [`IncrementalHb`] (ingest + seal + fixpoint extension +
//!   model assembly) against rebuilding the happens-before model from
//!   scratch — the case streaming ingestion exists for.
//!
//! Alongside the text output, [`main`] writes the measurements to
//! `BENCH_streaming.json` in the current directory.

use std::time::{Duration, Instant};

use cafa_apps::{all_apps, AppSpec};
use cafa_hb::{CausalityConfig, HbModel, IncrementalHb};
use cafa_stream::{IncrementalSession, StreamOptions};
use cafa_trace::{to_binary_vec, to_text_string, StreamDecoder, Trace};

/// Fraction of tasks treated as the already-ingested warm prefix in
/// the append benchmark.
const PREFIX_FRACTION: f64 = 0.9;

/// Timing iterations; the minimum is reported.
const ITERS: usize = 3;

/// One format's decode measurement.
#[derive(Clone, Copy, Debug)]
pub struct DecodeMeasurement {
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Best-of-[`ITERS`] wall time for a full chunked decode.
    pub wall: Duration,
}

impl DecodeMeasurement {
    /// Throughput in MiB/s.
    pub fn mib_per_s(&self) -> f64 {
        self.bytes as f64 / (1 << 20) as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The incremental-append-vs-rebuild measurement.
#[derive(Clone, Copy, Debug)]
pub struct AppendMeasurement {
    /// Tasks in the trace.
    pub tasks_total: usize,
    /// Tasks appended on top of the warm prefix.
    pub tasks_appended: usize,
    /// Best-of-[`ITERS`] wall time for a full batch model build
    /// (graph + fixpoint + query-model assembly).
    pub full_rebuild: Duration,
    /// Best-of-[`ITERS`] wall time to append the suffix to a warm
    /// incremental state and finalize the model. Includes the same
    /// query-model assembly as the rebuild — that part is not
    /// incremental.
    pub incremental_append: Duration,
    /// Best-of-[`ITERS`] wall time for the batch base graph +
    /// fixpoint alone (no model assembly).
    pub full_fixpoint: Duration,
    /// Best-of-[`ITERS`] wall time to ingest the suffix and extend
    /// the warm fixpoint alone (no model assembly).
    pub incremental_fixpoint: Duration,
}

impl AppendMeasurement {
    /// How many times cheaper the full append is than the rebuild.
    pub fn speedup(&self) -> f64 {
        self.full_rebuild.as_secs_f64() / self.incremental_append.as_secs_f64().max(1e-9)
    }

    /// How many times cheaper the fixpoint extension is than a cold
    /// graph + fixpoint.
    pub fn fixpoint_speedup(&self) -> f64 {
        self.full_fixpoint.as_secs_f64() / self.incremental_fixpoint.as_secs_f64().max(1e-9)
    }
}

/// Decodes `bytes` through the chunked stream decoder, timed.
fn time_decode(bytes: &[u8], chunk: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let mut d = StreamDecoder::new();
        for c in bytes.chunks(chunk) {
            d.push(c).expect("valid stream");
        }
        let trace = d.finish().expect("valid trace");
        let wall = start.elapsed();
        assert!(trace.task_count() > 0);
        best = best.min(wall);
    }
    best
}

/// Builds the warm 90% prefix state (untimed), then times appending
/// the final tasks and finalizing, against a batch rebuild.
fn measure_append(trace: &Trace, config: CausalityConfig) -> AppendMeasurement {
    let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();
    let split = ((tasks.len() as f64) * PREFIX_FRACTION) as usize;
    let split = split.clamp(1, tasks.len().saturating_sub(1));

    let mut full_rebuild = Duration::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let model = HbModel::build(trace, config).expect("batch build");
        let wall = start.elapsed();
        assert!(!model.events().is_empty());
        full_rebuild = full_rebuild.min(wall);
    }

    let mut incremental_append = Duration::MAX;
    for _ in 0..ITERS {
        // Warm prefix: everything before the split, derived — the
        // state a long-running ingester holds. Built outside the
        // timed region.
        let mut inc = IncrementalHb::new(trace, config).expect("valid trace");
        for &t in &tasks[..split] {
            inc.seal(trace, t);
        }
        inc.derive_now().expect("prefix derivation converges");

        let start = Instant::now();
        for &t in &tasks[split..] {
            inc.seal(trace, t);
        }
        let model = inc.into_model(trace).expect("finalization converges");
        let wall = start.elapsed();
        assert!(!model.events().is_empty());
        incremental_append = incremental_append.min(wall);
    }

    let mut full_fixpoint = Duration::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        let mut g = cafa_hb::base_graph(trace, &config);
        let stats = cafa_hb::derive(&mut g, trace, &config).expect("batch derivation");
        let wall = start.elapsed();
        assert!(stats.rounds >= 1);
        full_fixpoint = full_fixpoint.min(wall);
    }

    let mut incremental_fixpoint = Duration::MAX;
    for _ in 0..ITERS {
        let mut inc = IncrementalHb::new(trace, config).expect("valid trace");
        for &t in &tasks[..split] {
            inc.seal(trace, t);
        }
        inc.derive_now().expect("prefix derivation converges");

        let start = Instant::now();
        for &t in &tasks[split..] {
            inc.seal(trace, t);
        }
        inc.derive_now().expect("suffix derivation converges");
        let wall = start.elapsed();
        incremental_fixpoint = incremental_fixpoint.min(wall);
    }

    AppendMeasurement {
        tasks_total: tasks.len(),
        tasks_appended: tasks.len() - split,
        full_rebuild,
        incremental_append,
        full_fixpoint,
        incremental_fixpoint,
    }
}

/// Picks the catalog app with the most events — the heaviest trace.
fn heaviest_app() -> AppSpec {
    all_apps()
        .into_iter()
        .max_by_key(|a| a.expected.events)
        .expect("catalog is non-empty")
}

/// Runs the benchmark and writes `BENCH_streaming.json`.
///
/// # Panics
///
/// Panics if recording, analysis, or the JSON write fails.
pub fn main() {
    let app = heaviest_app();
    let outcome = app.record(0).expect("workload records cleanly");
    let trace = outcome.trace.expect("instrumentation is on");
    let binary = to_binary_vec(&trace);
    let text = to_text_string(&trace).into_bytes();

    println!("Streaming ingestion benchmark — app {}", app.name);
    let bin_decode = DecodeMeasurement {
        bytes: binary.len(),
        wall: time_decode(&binary, 64 << 10),
    };
    let text_decode = DecodeMeasurement {
        bytes: text.len(),
        wall: time_decode(&text, 64 << 10),
    };
    println!(
        "decode throughput: binary {:.1} MiB/s ({} bytes), text {:.1} MiB/s ({} bytes)",
        bin_decode.mib_per_s(),
        bin_decode.bytes,
        text_decode.mib_per_s(),
        text_decode.bytes
    );

    // End-to-end streaming analysis with per-pass times.
    let mut session = IncrementalSession::new(StreamOptions::default());
    let e2e_start = Instant::now();
    for c in binary.chunks(64 << 10) {
        session.push(c).expect("valid stream");
    }
    let streamed = session.finish().expect("valid trace");
    let e2e = e2e_start.elapsed();
    println!(
        "end-to-end streaming analysis: {:.3}s ({} races, {} derives)",
        e2e.as_secs_f64(),
        streamed.report.races.len(),
        streamed.progress.derives
    );
    println!("streaming passes:");
    print!("{}", streamed.passes.render());

    let append = measure_append(&trace, CausalityConfig::cafa());
    println!(
        "incremental append of final {} of {} tasks: {:.4}s vs full rebuild {:.4}s — {:.1}x",
        append.tasks_appended,
        append.tasks_total,
        append.incremental_append.as_secs_f64(),
        append.full_rebuild.as_secs_f64(),
        append.speedup()
    );
    println!(
        "fixpoint only: extension {:.4}s vs cold graph+fixpoint {:.4}s — {:.1}x",
        append.incremental_fixpoint.as_secs_f64(),
        append.full_fixpoint.as_secs_f64(),
        append.fixpoint_speedup()
    );

    let json = render_json(
        &app.name,
        &bin_decode,
        &text_decode,
        e2e,
        &streamed.passes,
        &append,
    );
    std::fs::write("BENCH_streaming.json", json).expect("write BENCH_streaming.json");
    println!("wrote BENCH_streaming.json");
}

/// Renders the measurements as a stable JSON document.
fn render_json(
    app: &str,
    bin: &DecodeMeasurement,
    text: &DecodeMeasurement,
    e2e: Duration,
    passes: &cafa_engine::PassStats,
    append: &AppendMeasurement,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"app\": \"{app}\",");
    let _ = writeln!(out, "  \"decode\": {{");
    let _ = writeln!(
        out,
        "    \"binary\": {{\"bytes\": {}, \"seconds\": {:.6}, \"mib_per_s\": {:.2}}},",
        bin.bytes,
        bin.wall.as_secs_f64(),
        bin.mib_per_s()
    );
    let _ = writeln!(
        out,
        "    \"text\": {{\"bytes\": {}, \"seconds\": {:.6}, \"mib_per_s\": {:.2}}}",
        text.bytes,
        text.wall.as_secs_f64(),
        text.mib_per_s()
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"end_to_end_seconds\": {:.6},", e2e.as_secs_f64());
    out.push_str("  \"passes\": [\n");
    for (i, r) in passes.records.iter().enumerate() {
        let comma = if i + 1 < passes.records.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"items\": {}}}{comma}",
            r.name,
            r.wall.as_secs_f64(),
            r.items
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"incremental_append\": {{");
    let _ = writeln!(out, "    \"tasks_total\": {},", append.tasks_total);
    let _ = writeln!(out, "    \"tasks_appended\": {},", append.tasks_appended);
    let _ = writeln!(
        out,
        "    \"full_rebuild_seconds\": {:.6},",
        append.full_rebuild.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "    \"incremental_append_seconds\": {:.6},",
        append.incremental_append.as_secs_f64()
    );
    let _ = writeln!(out, "    \"speedup\": {:.2},", append.speedup());
    let _ = writeln!(
        out,
        "    \"full_fixpoint_seconds\": {:.6},",
        append.full_fixpoint.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "    \"incremental_fixpoint_seconds\": {:.6},",
        append.incremental_fixpoint.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "    \"fixpoint_speedup\": {:.2}",
        append.fixpoint_speedup()
    );
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
