//! Generated-corpus sweep: detector throughput and per-label
//! precision/recall at corpus scale.
//!
//! Table 1 pins 10 apps; the generated catalog gives the same
//! measurement a ~20× larger surface. This harness generates the
//! pinned regression corpus (`--seed 42 --count 200`), records and
//! analyzes every app on the fleet, and reports apps analyzed per
//! second plus the per-label join of reports against the models'
//! embedded ground truth. Writes `BENCH_catalog.json` to the current
//! directory.

use std::time::Instant;

use cafa_core::Analyzer;
use cafa_engine::{fleet, AnalysisSession};
use cafa_model::eval::Score;
use cafa_model::{generate, lower, GenConfig};

/// The pinned regression corpus (`tests/catalog_regression.rs` joins
/// the same one).
pub const SEED: u64 = 42;
/// Corpus size.
pub const COUNT: usize = 200;

/// One corpus sweep measurement.
#[derive(Clone, Copy, Debug)]
pub struct CatalogSweep {
    /// Apps in the corpus.
    pub apps: usize,
    /// Events across all recorded traces.
    pub events: usize,
    /// Wall time for the record+analyze+join sweep.
    pub wall_s: f64,
    /// The corpus-wide label join.
    pub score: Score,
}

impl CatalogSweep {
    /// Apps analyzed per second of sweep wall time.
    pub fn apps_per_s(&self) -> f64 {
        self.apps as f64 / self.wall_s
    }
}

/// Runs the sweep: generate, then record + analyze + join on the
/// fleet.
///
/// # Panics
///
/// Panics if a generated workload fails to lower, record, or analyze.
pub fn compute(seed: u64, count: usize) -> CatalogSweep {
    let models = generate(&GenConfig {
        seed,
        count,
        ..GenConfig::default()
    });
    let start = Instant::now();
    let results = fleet::map(&models, fleet::default_threads(), |model| {
        let app = lower(model).expect("generated models are valid");
        let outcome = app.record(seed).expect("generated workloads run clean");
        let trace = outcome.trace.expect("instrumentation is on");
        let report = Analyzer::new()
            .analyze_with(&AnalysisSession::new(&trace))
            .expect("analysis succeeds");
        let mut s = Score::new();
        s.tally_app(&app.truth, report.races.iter().map(|r| r.var));
        (s, trace.stats().events)
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut score = Score::new();
    let mut events = 0;
    for (s, e) in &results {
        score.merge(s);
        events += e;
    }
    CatalogSweep {
        apps: models.len(),
        events,
        wall_s,
        score,
    }
}

fn render_json(sweep: &CatalogSweep) -> String {
    let s = &sweep.score;
    let tally = |name: &str, t: cafa_model::eval::Tally| {
        format!(
            "    \"{name}\": {{\"planted\": {}, \"reported\": {}}}",
            t.planted, t.reported
        )
    };
    format!(
        "{{\n  \"seed\": {SEED},\n  \"apps\": {},\n  \"events\": {},\n  \"wall_s\": {:.3},\n  \
         \"apps_per_s\": {:.1},\n  \"reported\": {},\n  \"precision\": {:.4},\n  \
         \"harmful_recall\": {:.4},\n  \"benign_recall\": {:.4},\n  \"unlabeled\": {},\n  \
         \"labels\": {{\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{}\n  }}\n}}\n",
        sweep.apps,
        sweep.events,
        sweep.wall_s,
        sweep.apps_per_s(),
        s.reported,
        s.precision(),
        s.harmful_recall(),
        s.benign_recall(),
        s.unlabeled,
        tally("a", s.a),
        tally("b", s.b),
        tally("c", s.c),
        tally("fp1", s.fp1),
        tally("fp2", s.fp2),
        tally("fp3", s.fp3),
        tally("filtered", s.filtered),
        tally("ordered", s.ordered),
    )
}

/// Runs the sweep, prints the table, writes `BENCH_catalog.json`.
///
/// # Panics
///
/// Panics if the sweep or the JSON write fails.
pub fn main() {
    println!("generated-catalog sweep — corpus-scale precision/recall + throughput");
    let sweep = compute(SEED, COUNT);
    let s = &sweep.score;
    println!(
        "{} apps, {} events recorded+analyzed in {:.2}s ({:.1} apps/s)",
        sweep.apps,
        sweep.events,
        sweep.wall_s,
        sweep.apps_per_s()
    );
    println!(
        "{:<10} {:>8} {:>9} {:>7}",
        "label", "planted", "reported", "recall"
    );
    for (name, t) in [
        ("a", s.a),
        ("b", s.b),
        ("c", s.c),
        ("fp1", s.fp1),
        ("fp2", s.fp2),
        ("fp3", s.fp3),
        ("filtered", s.filtered),
        ("ordered", s.ordered),
    ] {
        println!(
            "{:<10} {:>8} {:>9} {:>7.3}",
            name,
            t.planted,
            t.reported,
            t.recall()
        );
    }
    println!(
        "precision {:.3}  harmful-recall {:.3}  benign-recall {:.3}  unlabeled {}",
        s.precision(),
        s.harmful_recall(),
        s.benign_recall(),
        s.unlabeled
    );
    let json = render_json(&sweep);
    std::fs::write("BENCH_catalog.json", json).expect("write BENCH_catalog.json");
    println!("wrote BENCH_catalog.json");
}
