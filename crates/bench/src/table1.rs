//! Table 1 harness: per-app use-free races, classified.
//!
//! For each of the ten applications this records a trace with the
//! paper's instrumentation coverage, runs the full CAFA pipeline, and
//! joins the detector's report against the workload's ground-truth
//! labels to produce the true-race (a)/(b)/(c) and false-positive
//! I/II/III columns.

use cafa_apps::{all_apps, AppSpec, FpType, Label, TrueClass};
use cafa_core::{Analyzer, RaceClass, RaceReport};
use cafa_engine::{fleet, AnalysisSession, SessionStats};
use cafa_hb::CausalityConfig;

/// One measured Table 1 row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Row {
    /// Events in the recorded trace.
    pub events: usize,
    /// Races the detector reported.
    pub reported: usize,
    /// True races: intra-thread (a).
    pub a: usize,
    /// True races: inter-thread (b).
    pub b: usize,
    /// True races: conventional (c).
    pub c: usize,
    /// Type I false positives.
    pub fp1: usize,
    /// Type II false positives.
    pub fp2: usize,
    /// Type III false positives.
    pub fp3: usize,
    /// Reported races with no ground-truth label (must be 0).
    pub unlabeled: usize,
    /// Reports whose detector class disagrees with the oracle class.
    pub misclassified: usize,
    /// Known bugs rediscovered.
    pub known: usize,
    /// Candidates the heuristics filtered.
    pub filtered: usize,
}

/// Classifies one app's report against its ground truth.
pub fn classify(app: &AppSpec, report: &RaceReport) -> Row {
    let mut row = Row {
        reported: report.races.len(),
        filtered: report.filtered.len(),
        ..Row::default()
    };
    for race in &report.races {
        match app.truth.get(race.var) {
            Some(Label::Harmful { class, known }) => {
                let expected_class = match class {
                    TrueClass::IntraThread => RaceClass::IntraThread,
                    TrueClass::InterThread => RaceClass::InterThread,
                    TrueClass::Conventional => RaceClass::Conventional,
                };
                if race.class != expected_class {
                    row.misclassified += 1;
                }
                match class {
                    TrueClass::IntraThread => row.a += 1,
                    TrueClass::InterThread => row.b += 1,
                    TrueClass::Conventional => row.c += 1,
                }
                if known {
                    row.known += 1;
                }
            }
            Some(Label::Benign { fp }) => match fp {
                FpType::MissingListener => row.fp1 += 1,
                FpType::ImpreciseCommutativity => row.fp2 += 1,
                FpType::DerefMismatch => row.fp3 += 1,
            },
            // Predictive-only labels must stay out of the HB report, so
            // one leaking in is as wrong as an unlabeled variable.
            Some(Label::Filtered)
            | Some(Label::Ordered)
            | Some(Label::Predictive { .. })
            | None => row.unlabeled += 1,
        }
    }
    row
}

/// Runs the experiment for one app, also returning the engine
/// session's cache counters.
///
/// The whole measurement shares one [`AnalysisSession`]: the detector
/// builds the CAFA model through it, and the harness then reads the
/// `Events` column from that same cached model instead of re-deriving
/// it — the lookup is the session's cache-hit path.
///
/// # Panics
///
/// Panics if recording or analysis fails (the shipped workloads run
/// clean).
pub fn measure_app_stats(app: &AppSpec, seed: u64) -> (Row, SessionStats) {
    let outcome = app.record(seed).expect("workload records cleanly");
    let trace = outcome.trace.expect("instrumentation is on");
    let session = AnalysisSession::new(&trace);
    let report = Analyzer::new()
        .analyze_with(&session)
        .expect("analysis succeeds");
    let mut row = classify(app, &report);
    row.events = session
        .model(CausalityConfig::cafa())
        .expect("cached by the analysis")
        .events()
        .len();
    (row, session.stats())
}

/// Runs the experiment for one app.
///
/// # Panics
///
/// Panics if recording or analysis fails (the shipped workloads run
/// clean).
pub fn measure_app(app: &AppSpec, seed: u64) -> Row {
    measure_app_stats(app, seed).0
}

/// Runs the experiment for all ten apps on the fleet, returning
/// `(app, measured, session stats)` in app order regardless of worker
/// count.
pub fn compute_stats(seed: u64) -> Vec<(AppSpec, Row, SessionStats)> {
    let apps = all_apps();
    let rows = fleet::map(&apps, fleet::default_threads(), |app| {
        measure_app_stats(app, seed)
    });
    apps.into_iter()
        .zip(rows)
        .map(|(app, (row, stats))| (app, row, stats))
        .collect()
}

/// Runs the experiment for all ten apps, returning `(app, measured)`.
pub fn compute(seed: u64) -> Vec<(AppSpec, Row)> {
    compute_stats(seed)
        .into_iter()
        .map(|(app, row, _)| (app, row))
        .collect()
}

/// Runs and prints the full table, paper numbers alongside.
pub fn main() {
    println!("Table 1 — use-free races reported by CAFA (measured vs paper)");
    println!(
        "{:<12} | {:>6} {:>6} | {:>4} {:>5} | {:>8} {:>8} | {:>8} {:>8} | {:>5}",
        "App", "events", "paper", "rep", "paper", "a/b/c", "paper", "I/II/III", "paper", "known"
    );
    let results = compute_stats(0);
    let mut tot = Row::default();
    let mut te = (0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
    for (app, m, _) in &results {
        let e = app.expected;
        println!(
            "{:<12} | {:>6} {:>6} | {:>4} {:>5} | {:>8} {:>8} | {:>8} {:>8} | {:>5}",
            app.name,
            m.events,
            e.events,
            m.reported,
            e.reported,
            format!("{}/{}/{}", m.a, m.b, m.c),
            format!("{}/{}/{}", e.a, e.b, e.c),
            format!("{}/{}/{}", m.fp1, m.fp2, m.fp3),
            format!("{}/{}/{}", e.fp1, e.fp2, e.fp3),
            m.known,
        );
        tot.reported += m.reported;
        tot.a += m.a;
        tot.b += m.b;
        tot.c += m.c;
        tot.fp1 += m.fp1;
        tot.fp2 += m.fp2;
        tot.fp3 += m.fp3;
        tot.known += m.known;
        tot.unlabeled += m.unlabeled;
        tot.misclassified += m.misclassified;
        te.0 += e.reported;
        te.1 += e.a;
        te.2 += e.b;
        te.3 += e.c;
        te.4 += e.fp1;
        te.5 += e.fp2;
        te.6 += e.fp3;
    }
    println!(
        "{:<12} | {:>6} {:>6} | {:>4} {:>5} | {:>8} {:>8} | {:>8} {:>8} | {:>5}",
        "Overall",
        "-",
        "-",
        tot.reported,
        te.0,
        format!("{}/{}/{}", tot.a, tot.b, tot.c),
        format!("{}/{}/{}", te.1, te.2, te.3),
        format!("{}/{}/{}", tot.fp1, tot.fp2, tot.fp3),
        format!("{}/{}/{}", te.4, te.5, te.6),
        tot.known,
    );
    let true_races = tot.a + tot.b + tot.c;
    println!(
        "\n{true_races} true races / {} reported = {:.0}% precision (paper: 69/115 = 60%)",
        tot.reported,
        100.0 * true_races as f64 / tot.reported as f64
    );
    println!(
        "known bugs rediscovered: {} (paper: 2); unlabeled: {}; class disagreements: {}",
        tot.known, tot.unlabeled, tot.misclassified
    );
    let (builds, hits) = results.iter().fold((0, 0), |(b, h), (_, _, s)| {
        (b + s.model_builds, h + s.model_cache_hits)
    });
    println!("engine sessions: {builds} HB model build(s), {hits} cache hit(s)");

    std::fs::write("BENCH_table1.json", render_json(&results, &tot))
        .expect("write BENCH_table1.json");
    println!("wrote BENCH_table1.json");
}

/// `table1 --detector both`: the Table-1-style per-backend comparison.
///
/// Same ten apps and seed as the plain table, but each row carries
/// both backends' report counts side by side plus the replay verdicts
/// on the predictive extras. The catalog plants no predictive-only
/// patterns, so the expected steady state is `extra = 0` on every row
/// — the HB column equality with the plain table is the regression
/// signal this mode exists for.
pub fn main_both() {
    println!("Table 1 per-backend comparison — HB vs predictive (replay-adjudicated)");
    println!(
        "{:<12} | {:>6} | {:>4} {:>4} | {:>5} {:>9} {:>4} | {:>8}",
        "App", "events", "hb", "pred", "extra", "confirmed", "fp", "overhead"
    );
    let apps = all_apps();
    let rows: Vec<_> = apps
        .iter()
        .map(|app| crate::predict::measure_app(app, 0))
        .collect();
    let mut hb = 0;
    let mut extra = 0;
    let mut confirmed = 0;
    let mut fp = 0;
    for r in &rows {
        println!(
            "{:<12} | {:>6} | {:>4} {:>4} | {:>5} {:>9} {:>4} | {:>7.2}x",
            r.app,
            r.events,
            r.hb_reported,
            r.pred_reported,
            r.extra,
            r.confirmed,
            r.false_positives,
            r.overhead(),
        );
        hb += r.hb_reported;
        extra += r.extra;
        confirmed += r.confirmed;
        fp += r.false_positives;
    }
    println!(
        "\nhb reported: {hb} (paper: 115); predictive extras: {extra} \
         ({confirmed} confirmed, {fp} false positive(s))"
    );
}

/// Renders the measured table as a stable JSON document.
fn render_json(results: &[(AppSpec, Row, SessionStats)], tot: &Row) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"seed\": 0,\n  \"apps\": [\n");
    for (i, (app, m, _)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let e = app.expected;
        let _ = writeln!(
            out,
            "    {{\"app\": \"{}\", \"events\": {}, \"reported\": {}, \
             \"true_races\": {{\"a\": {}, \"b\": {}, \"c\": {}}}, \
             \"false_positives\": {{\"i\": {}, \"ii\": {}, \"iii\": {}}}, \
             \"known\": {}, \"filtered\": {}, \
             \"paper\": {{\"events\": {}, \"reported\": {}, \"true\": {}, \"fp\": {}}}}}{comma}",
            app.name,
            m.events,
            m.reported,
            m.a,
            m.b,
            m.c,
            m.fp1,
            m.fp2,
            m.fp3,
            m.known,
            m.filtered,
            e.events,
            e.reported,
            e.true_races(),
            e.false_positives(),
        );
    }
    out.push_str("  ],\n");
    let true_races = tot.a + tot.b + tot.c;
    let _ = writeln!(
        out,
        "  \"overall\": {{\"reported\": {}, \"true_races\": {}, \"precision_pct\": {:.1}, \
         \"known\": {}, \"unlabeled\": {}, \"misclassified\": {}}}",
        tot.reported,
        true_races,
        100.0 * true_races as f64 / (tot.reported as f64).max(1.0),
        tot.known,
        tot.unlabeled,
        tot.misclassified,
    );
    out.push_str("}\n");
    out
}
