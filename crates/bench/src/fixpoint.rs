//! Fixpoint-engine benchmark: the semi-naive delta-driven engine
//! (`derive`) against the naive textbook reference loop
//! (`derive_naive`) on synthetic event ladders and every catalog app.
//!
//! For each trace both engines run from identical base graphs; the
//! benchmark records rounds, rule instances evaluated, derived edges,
//! and best-of-[`ITERS`] wall time, and asserts the two engines
//! materialize the same number of edges (the differential test suite
//! pins exact edge-set equality; here the count is a cheap guard).
//! The headline aggregate is the total instances-evaluated ratio —
//! how much rule work delta-driven evaluation avoids.
//!
//! Alongside the text output, [`main`] writes the measurements to
//! `BENCH_fixpoint.json` in the current directory.

use std::time::{Duration, Instant};

use cafa_apps::all_apps;
use cafa_hb::{base_graph, derive, derive_naive, CausalityConfig, DerivationStats};
use cafa_trace::Trace;

use crate::scaling::synthetic_trace;

/// Timing iterations; the minimum wall time is reported.
const ITERS: usize = 3;

/// Synthetic ladder sizes (target event counts).
const LADDER: [usize; 4] = [250, 500, 1000, 2000];

/// One engine's run on one trace.
#[derive(Clone, Copy, Debug)]
pub struct EngineMeasurement {
    /// Rounds until convergence.
    pub rounds: u32,
    /// Rule instances evaluated across all rounds.
    pub instances: u64,
    /// Edges derived by the rules.
    pub derived_edges: usize,
    /// Best-of-[`ITERS`] fixpoint wall time (excluding base-graph
    /// construction, which is shared by both engines).
    pub wall: Duration,
}

/// Both engines on one trace.
#[derive(Clone, Debug)]
pub struct FixpointRow {
    /// Trace label (app name or synthetic size).
    pub label: String,
    /// Events in the trace.
    pub events: usize,
    /// Semi-naive engine measurement.
    pub semi: EngineMeasurement,
    /// Naive reference measurement.
    pub naive: EngineMeasurement,
}

impl FixpointRow {
    /// Rule-work reduction: naive instances / semi instances.
    pub fn instance_ratio(&self) -> f64 {
        self.naive.instances as f64 / self.semi.instances.max(1) as f64
    }

    /// Wall-time speedup: naive / semi.
    pub fn speedup(&self) -> f64 {
        self.naive.wall.as_secs_f64() / self.semi.wall.as_secs_f64().max(1e-9)
    }
}

fn time_engine(
    trace: &Trace,
    config: &CausalityConfig,
    run: impl Fn(&Trace, &CausalityConfig) -> DerivationStats,
) -> EngineMeasurement {
    let mut best = Duration::MAX;
    let mut stats = DerivationStats::default();
    for _ in 0..ITERS {
        let t = Instant::now();
        stats = run(trace, config);
        best = best.min(t.elapsed());
    }
    EngineMeasurement {
        rounds: stats.rounds,
        instances: stats.instances,
        derived_edges: stats.derived_edges(),
        wall: best,
    }
}

/// Measures both engines on one trace.
///
/// # Panics
///
/// Panics if either engine fails to converge or they disagree on the
/// number of derived edges.
pub fn measure(label: &str, trace: &Trace) -> FixpointRow {
    let config = CausalityConfig::cafa();
    let semi = time_engine(trace, &config, |t, c| {
        let mut g = base_graph(t, c);
        derive(&mut g, t, c).expect("semi-naive fixpoint converges")
    });
    let naive = time_engine(trace, &config, |t, c| {
        let mut g = base_graph(t, c);
        derive_naive(&mut g, t, c).expect("naive fixpoint converges")
    });
    assert_eq!(
        semi.derived_edges, naive.derived_edges,
        "engines disagree on {label}"
    );
    FixpointRow {
        label: label.to_owned(),
        events: trace.stats().events,
        semi,
        naive,
    }
}

/// Runs the benchmark and writes `BENCH_fixpoint.json`.
///
/// # Panics
///
/// Panics if recording, derivation, or the JSON write fails.
pub fn main() {
    let mut rows = Vec::new();
    println!("Fixpoint engine benchmark — semi-naive vs naive reference");
    println!(
        "{:<16} {:>7} {:>7} {:>12} {:>10} {:>8} | {:>7} {:>12} {:>10} | {:>6} {:>7}",
        "trace",
        "events",
        "rounds",
        "instances",
        "wall",
        "edges",
        "rounds",
        "instances",
        "wall",
        "work×",
        "speed×"
    );
    for events in LADDER {
        let trace = synthetic_trace(events);
        let row = measure(&format!("synthetic/{events}"), &trace);
        print_row(&row);
        rows.push(row);
    }
    for app in all_apps() {
        let outcome = app.record(0).expect("workload records cleanly");
        let trace = outcome.trace.expect("instrumentation is on");
        let row = measure(&app.name, &trace);
        print_row(&row);
        rows.push(row);
    }

    let semi_total: u64 = rows.iter().map(|r| r.semi.instances).sum();
    let naive_total: u64 = rows.iter().map(|r| r.naive.instances).sum();
    let ratio = naive_total as f64 / semi_total.max(1) as f64;
    println!(
        "aggregate: {naive_total} naive instances vs {semi_total} semi-naive — {ratio:.1}x less rule work"
    );

    let json = render_json(&rows, ratio);
    std::fs::write("BENCH_fixpoint.json", json).expect("write BENCH_fixpoint.json");
    println!("wrote BENCH_fixpoint.json");
}

fn print_row(r: &FixpointRow) {
    println!(
        "{:<16} {:>7} {:>7} {:>12} {:>9.3}ms {:>8} | {:>7} {:>12} {:>9.3}ms | {:>5.1}x {:>6.1}x",
        r.label,
        r.events,
        r.semi.rounds,
        r.semi.instances,
        r.semi.wall.as_secs_f64() * 1e3,
        r.semi.derived_edges,
        r.naive.rounds,
        r.naive.instances,
        r.naive.wall.as_secs_f64() * 1e3,
        r.instance_ratio(),
        r.speedup()
    );
}

fn render_json(rows: &[FixpointRow], aggregate_ratio: f64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"fixpoint\",");
    let _ = writeln!(out, "  \"iters\": {ITERS},");
    let _ = writeln!(out, "  \"aggregate_instance_ratio\": {aggregate_ratio:.2},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        for (name, m) in [("semi", &r.semi), ("naive", &r.naive)] {
            let _ = writeln!(out, "      \"{name}\": {{");
            let _ = writeln!(out, "        \"rounds\": {},", m.rounds);
            let _ = writeln!(out, "        \"instances\": {},", m.instances);
            let _ = writeln!(out, "        \"derived_edges\": {},", m.derived_edges);
            let _ = writeln!(out, "        \"wall_seconds\": {:.6}", m.wall.as_secs_f64());
            let _ = writeln!(out, "      }},");
        }
        let _ = writeln!(out, "      \"instance_ratio\": {:.2},", r.instance_ratio());
        let _ = writeln!(out, "      \"speedup\": {:.2}", r.speedup());
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
