//! Guards the small-trace regression the fixpoint benchmark exposed:
//! on tiny synthetic tiers the semi-naive engine's per-round delta
//! bookkeeping used to cost more than the rule work it saved, showing
//! up as a speedup *below* 1.0 on `synthetic/500` in
//! `BENCH_fixpoint.json`. `SMALL_EVENT_CUTOFF` now routes small traces
//! through a full resweep per round, so semi-naive wall time must stay
//! within noise of the naive reference there.

use std::time::{Duration, Instant};

use cafa_bench::scaling::synthetic_trace;
use cafa_hb::{base_graph, derive, derive_naive, CausalityConfig};
use cafa_trace::Trace;

/// Best-of-N timing; generous because CI machines are noisy.
const ITERS: usize = 7;

fn best_wall(trace: &Trace, run: impl Fn(&Trace) -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut edges = 0;
    for _ in 0..ITERS {
        let t = Instant::now();
        edges = run(trace);
        best = best.min(t.elapsed());
    }
    (best, edges)
}

#[test]
fn semi_naive_is_not_slower_on_small_synthetic_tiers() {
    let config = CausalityConfig::cafa();
    for events in [250, 500] {
        let trace = synthetic_trace(events);
        let (semi_wall, semi_edges) = best_wall(&trace, |t| {
            let mut g = base_graph(t, &config);
            derive(&mut g, t, &config)
                .expect("semi-naive converges")
                .derived_edges()
        });
        let (naive_wall, naive_edges) = best_wall(&trace, |t| {
            let mut g = base_graph(t, &config);
            derive_naive(&mut g, t, &config)
                .expect("naive converges")
                .derived_edges()
        });
        assert_eq!(semi_edges, naive_edges, "engines disagree at {events}");
        let ratio = semi_wall.as_secs_f64() / naive_wall.as_secs_f64().max(1e-9);
        assert!(
            ratio <= 1.2,
            "semi-naive {ratio:.2}x slower than naive on synthetic/{events} \
             (semi {semi_wall:?}, naive {naive_wall:?}): the small-trace \
             resweep cutoff is not engaging"
        );
    }
}
