//! Criterion: simulator throughput, instrumented versus stock — the
//! microbenchmark behind Figure 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cafa_apps::all_apps;

fn bench_sim(c: &mut Criterion) {
    let apps = all_apps();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for name in ["ConnectBot", "Music"] {
        let app = apps.iter().find(|a| a.name == name).unwrap();
        group.bench_with_input(BenchmarkId::new("stock", name), app, |b, a| {
            b.iter(|| black_box(a.record_uninstrumented(0).unwrap().sink))
        });
        group.bench_with_input(BenchmarkId::new("traced", name), app, |b, a| {
            b.iter(|| black_box(a.record(0).unwrap().sink))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
