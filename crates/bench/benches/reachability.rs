//! Criterion: happens-before query throughput — point queries (DFS with
//! event-matrix acceleration) versus batched multi-source sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cafa_apps::all_apps;
use cafa_engine::AnalysisSession;
use cafa_hb::CausalityConfig;
use cafa_trace::OpRef;

fn bench_queries(c: &mut Criterion) {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.name == "ConnectBot").unwrap();
    let trace = app.record(0).unwrap().trace.unwrap();
    let model = AnalysisSession::new(&trace)
        .model(CausalityConfig::cafa())
        .unwrap();

    // A spread of query positions: first record of every 8th task.
    let points: Vec<OpRef> = trace
        .tasks()
        .filter(|t| trace.body_len(t.id) > 0)
        .step_by(8)
        .map(|t| OpRef::new(t.id, 0))
        .collect();

    let mut group = c.benchmark_group("reachability");
    group.sample_size(20);
    group.bench_function("point_queries_1k", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for (i, &a) in points.iter().enumerate().take(40) {
                for &bb in points.iter().skip(i + 1).take(25) {
                    if model.happens_before(black_box(a), black_box(bb)) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.bench_function("event_order_matrix_10k", |b| {
        let events: Vec<_> = model.events().to_vec();
        b.iter(|| {
            let mut hits = 0u32;
            for (i, &e1) in events.iter().enumerate().take(100) {
                for &e2 in events.iter().skip(i + 1).take(100) {
                    if model.event_before(black_box(e1), e2) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.bench_function("batch_build_200_sources", |b| {
        let sources: Vec<OpRef> = points.iter().copied().take(200).collect();
        b.iter(|| model.batch(black_box(&sources)).source_count())
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
