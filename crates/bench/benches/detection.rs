//! Criterion: end-to-end use-free race detection per app trace,
//! with and without the §4.3 pruning heuristics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cafa_apps::all_apps;
use cafa_core::{Analyzer, DetectorConfig};

fn bench_detect(c: &mut Criterion) {
    let apps = all_apps();
    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    for name in ["ConnectBot", "Browser", "Camera"] {
        let app = apps.iter().find(|a| a.name == name).unwrap();
        let trace = app.record(0).unwrap().trace.unwrap();
        group.bench_with_input(BenchmarkId::new("cafa", name), &trace, |b, t| {
            b.iter(|| Analyzer::new().analyze(black_box(t)).unwrap().races.len())
        });
        group.bench_with_input(BenchmarkId::new("unfiltered", name), &trace, |b, t| {
            b.iter(|| {
                Analyzer::with_config(DetectorConfig::unfiltered())
                    .analyze(black_box(t))
                    .unwrap()
                    .races
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
