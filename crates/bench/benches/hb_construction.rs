//! Criterion: happens-before model construction cost.
//!
//! Measures `HbModel::build` — base edges plus the atomicity/queue-rule
//! fixpoint — on the smallest and largest app traces and under the
//! baseline configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cafa_apps::all_apps;
use cafa_hb::{CausalityConfig, HbModel};

fn bench_build(c: &mut Criterion) {
    let apps = all_apps();
    let mut group = c.benchmark_group("hb_build");
    group.sample_size(10);
    for name in ["VLC", "Camera"] {
        let app = apps.iter().find(|a| a.name == name).unwrap();
        let trace = app.record(0).unwrap().trace.unwrap();
        group.bench_with_input(BenchmarkId::new("cafa", name), &trace, |b, t| {
            b.iter(|| HbModel::build(black_box(t), CausalityConfig::cafa()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("conventional", name), &trace, |b, t| {
            b.iter(|| HbModel::build(black_box(t), CausalityConfig::conventional()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("no_queue_rules", name), &trace, |b, t| {
            b.iter(|| HbModel::build(black_box(t), CausalityConfig::no_queue_rules()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
