//! Criterion: trace serialization throughput (the §5.1 logger-device
//! path: dump to flash, read back offline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cafa_apps::all_apps;
use cafa_trace::{from_binary_slice, from_text_str, to_binary_vec, to_text_string};

fn bench_serialization(c: &mut Criterion) {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.name == "ConnectBot").unwrap();
    let trace = app.record(0).unwrap().trace.unwrap();
    let text = to_text_string(&trace);
    let bin = to_binary_vec(&trace);

    let mut group = c.benchmark_group("serialization");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("write_text", "ConnectBot"),
        &trace,
        |b, t| b.iter(|| to_text_string(black_box(t)).len()),
    );
    group.bench_with_input(
        BenchmarkId::new("read_text", "ConnectBot"),
        &text,
        |b, s| b.iter(|| from_text_str(black_box(s)).unwrap().task_count()),
    );
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("write_binary", "ConnectBot"),
        &trace,
        |b, t| b.iter(|| to_binary_vec(black_box(t)).len()),
    );
    group.bench_with_input(
        BenchmarkId::new("read_binary", "ConnectBot"),
        &bin,
        |b, s| b.iter(|| from_binary_slice(black_box(s)).unwrap().task_count()),
    );
    group.finish();
}

criterion_group!(benches, bench_serialization);
criterion_main!(benches);
