//! Named analysis passes with per-pass wall time and item counters —
//! the observability layer behind `cafa analyze --timings`.

use std::time::{Duration, Instant};

/// One timed pass: what ran, for how long, over how many items.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// Pass name (`extract`, `hb-build`, `candidates`, ...).
    pub name: &'static str,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Items the pass produced or processed (pass-specific meaning).
    pub items: usize,
}

/// Per-pass statistics for one analysis, in execution order.
///
/// Equality ignores wall times: two analyses of the same trace are
/// "equal" when they ran the same passes over the same item counts,
/// regardless of how fast the machine was that day. This keeps
/// determinism tests meaningful.
#[derive(Clone, Debug, Default)]
pub struct PassStats {
    /// Completed passes, in execution order.
    pub records: Vec<PassRecord>,
}

impl PassStats {
    /// Runs `f` as pass `name`, recording its wall time; `f` returns
    /// the pass result plus its item count.
    pub fn run<T>(&mut self, name: &'static str, f: impl FnOnce() -> (T, usize)) -> T {
        let start = Instant::now();
        let (value, items) = f();
        self.records.push(PassRecord {
            name,
            wall: start.elapsed(),
            items,
        });
        value
    }

    /// Folds one batch's contribution into the pass named `name`,
    /// creating the record if absent. Streaming sessions run the same
    /// logical pass (decode, ingest, derive) once per append batch;
    /// accumulation keeps the breakdown per *pass* rather than one
    /// record per batch.
    pub fn accumulate(&mut self, name: &'static str, wall: Duration, items: usize) {
        match self.records.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.wall += wall;
                r.items += items;
            }
            None => self.records.push(PassRecord { name, wall, items }),
        }
    }

    /// Runs `f` as pass `name`, folding its wall time and item count
    /// into any existing record of that name (see
    /// [`accumulate`](PassStats::accumulate)).
    pub fn run_accumulating<T>(&mut self, name: &'static str, f: impl FnOnce() -> (T, usize)) -> T {
        let start = Instant::now();
        let (value, items) = f();
        self.accumulate(name, start.elapsed(), items);
        value
    }

    /// Total wall time across all recorded passes.
    pub fn total_wall(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// The record for `name`, if that pass ran.
    pub fn get(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Renders an aligned per-pass breakdown (for `--timings` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_wall();
        for r in &self.records {
            let share = if total.is_zero() {
                0.0
            } else {
                100.0 * r.wall.as_secs_f64() / total.as_secs_f64()
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>12.3?} {:>5.1}%  {:>8} item(s)",
                r.name, r.wall, share, r.items
            );
        }
        let _ = writeln!(out, "  {:<12} {:>12.3?}", "total", total);
        out
    }
}

impl PartialEq for PassStats {
    fn eq(&self, other: &Self) -> bool {
        self.records.len() == other.records.len()
            && self
                .records
                .iter()
                .zip(&other.records)
                .all(|(a, b)| a.name == b.name && a.items == b.items)
    }
}

impl Eq for PassStats {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_record_in_order_with_items() {
        let mut stats = PassStats::default();
        let x = stats.run("extract", || (21, 3));
        let y = stats.run("hb-build", || (x * 2, 1));
        assert_eq!(y, 42);
        assert_eq!(stats.records.len(), 2);
        assert_eq!(stats.records[0].name, "extract");
        assert_eq!(stats.records[0].items, 3);
        assert_eq!(stats.get("hb-build").unwrap().items, 1);
        assert!(stats.get("missing").is_none());
    }

    #[test]
    fn accumulate_folds_batches_into_one_record() {
        let mut stats = PassStats::default();
        stats.accumulate("ingest", Duration::from_millis(2), 10);
        stats.accumulate("derive", Duration::from_millis(1), 1);
        stats.accumulate("ingest", Duration::from_millis(3), 5);
        assert_eq!(stats.records.len(), 2);
        let ingest = stats.get("ingest").unwrap();
        assert_eq!(ingest.items, 15);
        assert_eq!(ingest.wall, Duration::from_millis(5));
        let v = stats.run_accumulating("ingest", || (7, 2));
        assert_eq!(v, 7);
        assert_eq!(stats.get("ingest").unwrap().items, 17);
        assert_eq!(stats.records.len(), 2);
    }

    #[test]
    fn equality_ignores_wall_time() {
        let mut a = PassStats::default();
        a.run("extract", || {
            (std::thread::sleep(Duration::from_millis(2)), 5)
        });
        let mut b = PassStats::default();
        b.run("extract", || ((), 5));
        assert_eq!(a, b);
        let mut c = PassStats::default();
        c.run("extract", || ((), 6));
        assert_ne!(a, c);
    }

    #[test]
    fn render_lists_every_pass_and_total() {
        let mut stats = PassStats::default();
        stats.run("extract", || ((), 7));
        stats.run("classify", || ((), 2));
        let text = stats.render();
        assert!(text.contains("extract"));
        assert!(text.contains("classify"));
        assert!(text.contains("total"));
        assert!(text.contains("7 item(s)"));
    }
}
