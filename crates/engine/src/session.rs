//! Per-trace analysis sessions: shared memory-op extraction and a
//! happens-before model cache.
//!
//! Every consumer of a trace — the detector, the conventional baseline
//! used for classification, the low-level race counter, ablations over
//! several [`CausalityConfig`]s — needs the same two expensive
//! artifacts: the extracted [`MemoryOps`] and an [`HbModel`] fixpoint
//! per configuration. An [`AnalysisSession`] computes each at most
//! once and hands out shared references, so running four ablation
//! configs over one trace builds four models instead of eight, and a
//! race-free trace never pays for the conventional baseline at all.

use std::cell::{Cell, OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use cafa_hb::{CausalityConfig, HbError, HbModel};
use cafa_trace::Trace;

use crate::partition::{partition, TracePartition};
use crate::usefree::{extract, MemoryOps};

/// Counters exposing what a session computed versus reused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Times `MemoryOps` were extracted (0 or 1 per session).
    pub ops_extractions: usize,
    /// Happens-before fixpoints actually built.
    pub model_builds: usize,
    /// Model requests served from the cache.
    pub model_cache_hits: usize,
}

/// A per-trace analysis context owning the derived state every
/// analysis pass shares.
///
/// The session borrows the trace, extracts [`MemoryOps`] on first use,
/// and caches one [`HbModel`] per [`CausalityConfig`] behind `Rc` so
/// passes can hold a model across cache insertions. Sessions are
/// single-threaded by design (`Rc` + `RefCell`); the fleet runner
/// gives each worker its own sessions.
///
/// # Examples
///
/// ```
/// use cafa_engine::AnalysisSession;
/// use cafa_hb::CausalityConfig;
/// use cafa_trace::TraceBuilder;
///
/// let trace = TraceBuilder::new("demo").finish().unwrap();
/// let session = AnalysisSession::new(&trace);
/// let first = session.model(CausalityConfig::cafa()).unwrap();
/// let again = session.model(CausalityConfig::cafa()).unwrap();
/// assert!(std::rc::Rc::ptr_eq(&first, &again));
/// assert_eq!(session.stats().model_builds, 1);
/// assert_eq!(session.stats().model_cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct AnalysisSession<'t> {
    trace: &'t Trace,
    ops: OnceCell<MemoryOps>,
    models: RefCell<HashMap<CausalityConfig, Rc<HbModel<'t>>>>,
    partition: OnceCell<Rc<TracePartition>>,
    islanded: bool,
    stats: Cell<SessionStats>,
}

impl<'t> AnalysisSession<'t> {
    /// Creates a session over `trace`. Nothing is computed yet.
    pub fn new(trace: &'t Trace) -> Self {
        Self {
            trace,
            ops: OnceCell::new(),
            models: RefCell::new(HashMap::new()),
            partition: OnceCell::new(),
            islanded: false,
            stats: Cell::new(SessionStats::default()),
        }
    }

    /// Creates a session over a projected island sub-trace. Identical
    /// to [`new`](AnalysisSession::new) except that models are built
    /// with [`HbModel::build_islanded`]: sub-traces fall below the
    /// demand engine's per-event auto-threshold while keeping the
    /// many-island shape it is built for, so the size heuristic
    /// mispredicts. Answers are engine-independent; only wall time
    /// changes.
    pub fn new_islanded(trace: &'t Trace) -> Self {
        Self {
            islanded: true,
            ..Self::new(trace)
        }
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &'t Trace {
        self.trace
    }

    /// The extracted memory operations, computed on first call.
    pub fn ops(&self) -> &MemoryOps {
        self.ops.get_or_init(|| {
            let mut stats = self.stats.get();
            stats.ops_extractions += 1;
            self.stats.set(stats);
            extract(self.trace)
        })
    }

    /// The happens-before model for `config`, built on first request
    /// and served from the cache afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] if the model cannot be built (cyclic
    /// relation or diverging fixpoint). Failures are not cached:
    /// retrying re-runs the build.
    pub fn model(&self, config: CausalityConfig) -> Result<Rc<HbModel<'t>>, HbError> {
        if let Some(model) = self.models.borrow().get(&config) {
            let mut stats = self.stats.get();
            stats.model_cache_hits += 1;
            self.stats.set(stats);
            return Ok(Rc::clone(model));
        }
        let model = Rc::new(if self.islanded {
            HbModel::build_islanded(self.trace, config)?
        } else {
            HbModel::build(self.trace, config)?
        });
        let mut stats = self.stats.get();
        stats.model_builds += 1;
        self.stats.set(stats);
        self.models.borrow_mut().insert(config, Rc::clone(&model));
        Ok(model)
    }

    /// Seeds the cache with an externally built model (e.g. one grown
    /// incrementally by a streaming session), so later
    /// [`model`](AnalysisSession::model) calls for its configuration
    /// reuse it instead of rebuilding the fixpoint. Counted as a model
    /// build. Replaces any model already cached for that configuration.
    pub fn insert_model(&self, model: HbModel<'t>) {
        let config = *model.config();
        let mut stats = self.stats.get();
        stats.model_builds += 1;
        self.stats.set(stats);
        self.models.borrow_mut().insert(config, Rc::new(model));
    }

    /// The causality-skeleton partition of the trace, computed on
    /// first call and cached for the session's lifetime. The skeleton
    /// is config-independent, so one partition serves every
    /// [`CausalityConfig`] (see [`crate::partition`]).
    pub fn partition(&self) -> Rc<TracePartition> {
        Rc::clone(
            self.partition
                .get_or_init(|| Rc::new(partition(self.trace))),
        )
    }

    /// Whether a model for `config` is already cached.
    pub fn has_model(&self, config: CausalityConfig) -> bool {
        self.models.borrow().contains_key(&config)
    }

    /// A snapshot of the session's reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.stats.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{DerefKind, ObjId, Pc, TraceBuilder, VarId};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new("session-test");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(0);
        let o = ObjId::new(1);
        b.obj_read(t, v, Some(o), Pc::new(0x10));
        b.deref(t, o, Pc::new(0x14), DerefKind::Field);
        b.obj_write(t, v, None, Pc::new(0x18));
        b.finish().unwrap()
    }

    #[test]
    fn ops_are_extracted_once() {
        let trace = small_trace();
        let session = AnalysisSession::new(&trace);
        assert_eq!(session.stats().ops_extractions, 0);
        let a = session.ops() as *const MemoryOps;
        let b = session.ops() as *const MemoryOps;
        assert_eq!(a, b);
        assert_eq!(session.stats().ops_extractions, 1);
        assert_eq!(session.ops().uses.len(), 1);
        assert_eq!(session.ops().frees.len(), 1);
    }

    #[test]
    fn models_are_cached_per_config() {
        let trace = small_trace();
        let session = AnalysisSession::new(&trace);
        let cafa = session.model(CausalityConfig::cafa()).unwrap();
        let conv = session.model(CausalityConfig::conventional()).unwrap();
        let cafa2 = session.model(CausalityConfig::cafa()).unwrap();
        assert!(Rc::ptr_eq(&cafa, &cafa2));
        assert!(!Rc::ptr_eq(&cafa, &conv));
        let stats = session.stats();
        assert_eq!(stats.model_builds, 2);
        assert_eq!(stats.model_cache_hits, 1);
        assert!(session.has_model(CausalityConfig::cafa()));
        assert!(!session.has_model(CausalityConfig::fasttrack_like()));
    }

    #[test]
    fn inserted_model_is_served_from_cache() {
        let trace = small_trace();
        let session = AnalysisSession::new(&trace);
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        session.insert_model(model);
        assert!(session.has_model(CausalityConfig::cafa()));
        let got = session.model(CausalityConfig::cafa()).unwrap();
        assert_eq!(got.events().len(), 0);
        let stats = session.stats();
        assert_eq!(stats.model_builds, 1, "insert counts as the build");
        assert_eq!(stats.model_cache_hits, 1);
    }

    #[test]
    fn cached_models_answer_like_fresh_ones() {
        let trace = small_trace();
        let session = AnalysisSession::new(&trace);
        let cached = session.model(CausalityConfig::cafa()).unwrap();
        let fresh = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(cached.events().len(), fresh.events().len());
    }
}
