//! Extraction of uses, frees, allocations, and matched guards (§5.3).
//!
//! A **free** is a null store to a pointer variable; an **allocation**
//! is a non-null store. A **use** is a pointer read whose value is
//! later dereferenced; since the tracer "cannot afford a data flow
//! analysis at runtime", a dereference is matched with *the nearest
//! previous pointer read that gets the same object ID* in the same
//! task. The paper is explicit that this heuristic "is neither sound
//! nor complete, but it works well in practice" — its failures are the
//! Type III false positives of §6.3, and this module reproduces them
//! faithfully rather than fixing them.

use std::collections::HashMap;

use cafa_trace::{BranchKind, ObjId, OpRef, Pc, Record, Trace, VarId};

/// A use: a pointer read later dereferenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseSite {
    /// Position of the pointer read (the racing operation).
    pub at: OpRef,
    /// The pointer variable read.
    pub var: VarId,
    /// The object the read observed.
    pub obj: ObjId,
    /// Address of the read instruction.
    pub read_pc: Pc,
    /// Position of the dereference matched to this read.
    pub deref_at: OpRef,
    /// Address of the dereferencing instruction.
    pub deref_pc: Pc,
    /// True when another earlier read of a *different* variable also
    /// observed the same object, so the nearest-previous-read match may
    /// have picked the wrong pointer — the Type III failure mode. §6.3
    /// suggests static data-flow analysis would resolve these; the
    /// `drop_ambiguous_uses` policy of `cafa-core`'s `DetectorConfig`
    /// approximates that fix offline.
    pub ambiguous: bool,
}

/// A free: a null store to a pointer variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeSite {
    /// Position of the null store.
    pub at: OpRef,
    /// The pointer variable freed.
    pub var: VarId,
    /// Address of the store instruction.
    pub pc: Pc,
}

/// An allocation: a non-null store to a pointer variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSite {
    /// Position of the store.
    pub at: OpRef,
    /// The pointer variable assigned.
    pub var: VarId,
    /// The stored object.
    pub obj: ObjId,
}

/// A guard branch matched back to the pointer variable it tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuardSite {
    /// Position of the branch record.
    pub at: OpRef,
    /// The pointer variable the branch was matched to.
    pub var: VarId,
    /// Branch kind (`if-eqz` / `if-nez` / `if-eq`).
    pub kind: BranchKind,
    /// Branch instruction address.
    pub pc: Pc,
    /// Branch target address.
    pub target: Pc,
}

/// All memory operations extracted from a trace, grouped by variable.
#[derive(Clone, Debug, Default)]
pub struct MemoryOps {
    /// Every use, in task/index order.
    pub uses: Vec<UseSite>,
    /// Every free, in task/index order.
    pub frees: Vec<FreeSite>,
    /// Every allocation, in task/index order.
    pub allocs: Vec<AllocSite>,
    /// Every matched guard, in task/index order.
    pub guards: Vec<GuardSite>,
    by_var: HashMap<VarId, VarOps>,
}

/// Indexes into [`MemoryOps`] for one variable.
#[derive(Clone, Debug, Default)]
pub struct VarOps {
    /// Indexes into [`MemoryOps::uses`].
    pub uses: Vec<usize>,
    /// Indexes into [`MemoryOps::frees`].
    pub frees: Vec<usize>,
    /// Indexes into [`MemoryOps::allocs`].
    pub allocs: Vec<usize>,
    /// Indexes into [`MemoryOps::guards`].
    pub guards: Vec<usize>,
}

impl MemoryOps {
    /// Per-variable operation index; only variables with at least one
    /// extracted operation appear.
    pub fn var_ops(&self, var: VarId) -> Option<&VarOps> {
        self.by_var.get(&var)
    }

    /// Variables that have both a use and a free — the candidate set
    /// for use-free races.
    pub fn candidate_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.by_var
            .iter()
            .filter(|(_, ops)| !ops.uses.is_empty() && !ops.frees.is_empty())
            .map(|(&v, _)| v)
    }
}

/// Extracts uses, frees, allocations, and guards from `trace`.
///
/// Matching state is per task: a dereference or guard of object `o`
/// pairs with the nearest previous `ObjRead` in the *same task* that
/// observed `o`.
pub fn extract(trace: &Trace) -> MemoryOps {
    let mut ops = MemoryOps::default();
    for task in trace.tasks() {
        extract_task(trace, task.id, &mut ops);
    }
    ops
}

/// Extracts the operations of one task's (complete) body into `ops`.
///
/// Matching state is wholly per-task, so a streaming ingester can call
/// this once per completed task and accumulate the same `MemoryOps` a
/// batch [`extract`] would produce. Call at most once per task.
pub fn extract_task(trace: &Trace, task: cafa_trace::TaskId, ops: &mut MemoryOps) {
    // obj -> (position, var, pc) of its nearest previous read, plus
    // the variable of the read before that (ambiguity witness).
    let mut last_read: HashMap<ObjId, (OpRef, VarId, Pc, Option<VarId>)> = HashMap::new();
    for (i, r) in trace.body(task).iter().enumerate() {
        let at = OpRef::new(task, i as u32);
        match *r {
            Record::ObjRead {
                var,
                obj: Some(obj),
                pc,
            } => {
                let prev_var = last_read.get(&obj).map(|&(_, v, _, _)| v);
                last_read.insert(obj, (at, var, pc, prev_var));
            }
            Record::ObjWrite { var, value, pc } => match value {
                None => {
                    let idx = ops.frees.len();
                    ops.frees.push(FreeSite { at, var, pc });
                    ops.by_var.entry(var).or_default().frees.push(idx);
                }
                Some(obj) => {
                    let idx = ops.allocs.len();
                    ops.allocs.push(AllocSite { at, var, obj });
                    ops.by_var.entry(var).or_default().allocs.push(idx);
                    // A store also makes the object "nearest read"?
                    // No: §5.3 matches dereferences against pointer
                    // *reads* only, so stores do not update the map.
                }
            },
            Record::Deref { obj, pc, .. } => {
                if let Some(&(read_at, var, read_pc, prev_var)) = last_read.get(&obj) {
                    let idx = ops.uses.len();
                    ops.uses.push(UseSite {
                        at: read_at,
                        var,
                        obj,
                        read_pc,
                        deref_at: at,
                        deref_pc: pc,
                        ambiguous: prev_var.is_some_and(|p| p != var),
                    });
                    ops.by_var.entry(var).or_default().uses.push(idx);
                }
            }
            Record::Guard {
                kind,
                pc,
                target,
                obj,
            } => {
                if let Some(&(_, var, _, _)) = last_read.get(&obj) {
                    let idx = ops.guards.len();
                    ops.guards.push(GuardSite {
                        at,
                        var,
                        kind,
                        pc,
                        target,
                    });
                    ops.by_var.entry(var).or_default().guards.push(idx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{DerefKind, TraceBuilder};

    #[test]
    fn deref_matches_nearest_previous_read() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v0 = VarId::new(0);
        let v1 = VarId::new(1);
        let o = ObjId::new(7);
        b.obj_read(t, v0, Some(o), Pc::new(0x10)); // earlier read, same obj
        b.obj_read(t, v1, Some(o), Pc::new(0x14)); // nearest read
        b.deref(t, o, Pc::new(0x18), DerefKind::Field);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert_eq!(ops.uses.len(), 1);
        // Matched to v1, not v0 — the Type III failure mode — and
        // flagged as ambiguous.
        assert_eq!(ops.uses[0].var, v1);
        assert_eq!(ops.uses[0].at, OpRef::new(t, 1));
        assert_eq!(ops.uses[0].deref_at, OpRef::new(t, 2));
        assert!(ops.uses[0].ambiguous);
    }

    #[test]
    fn frees_and_allocs_are_classified() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(0);
        b.obj_write(t, v, None, Pc::new(0x10));
        b.obj_write(t, v, Some(ObjId::new(1)), Pc::new(0x14));
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert_eq!(ops.frees.len(), 1);
        assert_eq!(ops.allocs.len(), 1);
        assert_eq!(ops.frees[0].var, v);
        assert_eq!(ops.allocs[0].obj, ObjId::new(1));
        let vo = ops.var_ops(v).unwrap();
        assert_eq!(vo.frees.len(), 1);
        assert_eq!(vo.allocs.len(), 1);
        assert!(vo.uses.is_empty());
    }

    #[test]
    fn unmatched_deref_is_dropped() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        // Dereference with no previous read of that object.
        b.deref(t, ObjId::new(9), Pc::new(0x20), DerefKind::Invoke);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert!(ops.uses.is_empty());
    }

    #[test]
    fn matching_is_per_task() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t1 = b.add_thread(p, "a");
        let t2 = b.add_thread(p, "b");
        let o = ObjId::new(3);
        b.obj_read(t1, VarId::new(0), Some(o), Pc::new(0x10));
        b.deref(t2, o, Pc::new(0x14), DerefKind::Field); // different task
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert!(ops.uses.is_empty(), "cross-task matching is not allowed");
    }

    #[test]
    fn guards_match_like_uses() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(2);
        let o = ObjId::new(5);
        b.obj_read(t, v, Some(o), Pc::new(0x10));
        b.guard(t, BranchKind::IfEqz, Pc::new(0x14), Pc::new(0x30), o);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert_eq!(ops.guards.len(), 1);
        assert_eq!(ops.guards[0].var, v);
        assert_eq!(ops.guards[0].kind, BranchKind::IfEqz);
    }

    #[test]
    fn candidate_vars_require_use_and_free() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let used = VarId::new(0);
        let freed = VarId::new(1);
        let both = VarId::new(2);
        let o = ObjId::new(1);
        b.obj_read(t, used, Some(o), Pc::new(0x10));
        b.deref(t, o, Pc::new(0x14), DerefKind::Field);
        b.obj_write(t, freed, None, Pc::new(0x18));
        let o2 = ObjId::new(2);
        b.obj_read(t, both, Some(o2), Pc::new(0x1c));
        b.deref(t, o2, Pc::new(0x20), DerefKind::Field);
        b.obj_write(t, both, None, Pc::new(0x24));
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        let vars: Vec<VarId> = ops.candidate_vars().collect();
        assert_eq!(vars, vec![both]);
    }

    #[test]
    fn null_read_never_matches() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.obj_read(t, VarId::new(0), None, Pc::new(0x10));
        b.deref(t, ObjId::new(0), Pc::new(0x14), DerefKind::Field);
        let trace = b.finish().unwrap();
        assert!(extract(&trace).uses.is_empty());
    }
}
