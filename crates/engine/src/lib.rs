//! Staged analysis engine for CAFA race detection.
//!
//! This crate is the shared infrastructure layer between the
//! happens-before model (`cafa-hb`) and its consumers (`cafa-core`'s
//! detector, the CLI, and every bench binary):
//!
//! * [`AnalysisSession`] — a per-trace context that extracts
//!   [`MemoryOps`] once and caches one [`HbModel`](cafa_hb::HbModel)
//!   per [`CausalityConfig`](cafa_hb::CausalityConfig), so the
//!   detector, its conventional classification baseline, ablations,
//!   and the low-level counter stop rebuilding identical fixpoints;
//! * [`usefree`] — extraction of uses, frees, allocations, and guards
//!   (§5.3), shared by every analysis;
//! * [`PassStats`] — named per-pass wall-time and item counters, the
//!   observability behind `cafa analyze --timings`;
//! * [`fleet`] — a deterministic `std::thread::scope` fan-out that
//!   parallelizes per-app / per-config analyses while keeping output
//!   byte-identical at any worker count.
//!
//! # Examples
//!
//! ```
//! use cafa_engine::AnalysisSession;
//! use cafa_hb::CausalityConfig;
//! use cafa_trace::{DerefKind, ObjId, Pc, TraceBuilder, VarId};
//!
//! let mut b = TraceBuilder::new("demo");
//! let p = b.add_process();
//! let t = b.add_thread(p, "main");
//! b.obj_read(t, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
//! b.deref(t, ObjId::new(1), Pc::new(0x14), DerefKind::Field);
//! let trace = b.finish().unwrap();
//!
//! let session = AnalysisSession::new(&trace);
//! assert_eq!(session.ops().uses.len(), 1);        // extracted once
//! let model = session.model(CausalityConfig::cafa()).unwrap();
//! let cached = session.model(CausalityConfig::cafa()).unwrap();
//! assert!(std::rc::Rc::ptr_eq(&model, &cached));  // served from cache
//! assert_eq!(session.stats().model_cache_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fleet;
pub mod partition;
mod passes;
mod session;
pub mod usefree;

pub use partition::TracePartition;
pub use passes::{PassRecord, PassStats};
pub use session::{AnalysisSession, SessionStats};
pub use usefree::{
    extract, extract_task, AllocSite, FreeSite, GuardSite, MemoryOps, UseSite, VarOps,
};
