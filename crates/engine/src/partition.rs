//! Causality-skeleton partitioning: weakly-connected components of a
//! trace's task graph.
//!
//! Two tasks can only ever be related — by any [`CausalityConfig`]'s
//! happens-before relation, by the conventional per-queue total order
//! used for classification, or by a candidate use/free pair — if they
//! are connected in a conservative *skeleton* graph whose edges
//! over-approximate every rule the engine knows:
//!
//! * **fork/join** — `Fork`/`Join` records and a thread's `forked_at`
//!   back-pointer;
//! * **posting** — `Send`/`SendAtFront` records and an event's origin
//!   send site;
//! * **queue co-membership** — all events of one queue (queue rules
//!   1–4, atomicity, and the conventional total order relate events of
//!   the same queue regardless of direct posts);
//! * **monitors** — `Wait`/`Notify` (signal-and-wait rule) and
//!   `Lock`/`Unlock` (lockset filter, FastTrack-style baselines);
//! * **listeners** — `Register`/`Perform` (listener rule);
//! * **RPC transactions** — the four `Rpc*` records (RPC rules);
//! * **externals** — *all* external events, pairwise: the
//!   external-input rule chains every external in global sequence
//!   order (§3.3), so they form one clique;
//! * **shared variables** — any two tasks accessing the same `VarId`
//!   (a use/free candidate pair needs both ends; keeping each
//!   variable's accesses on one island means per-island candidate
//!   enumeration is exhaustive).
//!
//! The skeleton is deliberately config-independent: a partition
//! computed once per session is sound for every causality ablation and
//! for the lazy conventional baseline. Dereferences, guards, and
//! method markers need no edges — the analyzer matches them strictly
//! within a task.
//!
//! Components are closed under [`Trace::project`]'s requirements by
//! construction, so each one can be analyzed as a standalone sub-trace
//! and the findings merged (see `cafa-core`'s partition pass).
//!
//! [`CausalityConfig`]: cafa_hb::CausalityConfig
//! [`Trace::project`]: cafa_trace::Trace::project

use std::collections::HashMap;

use cafa_trace::{Record, TaskId, TaskKind, Trace};

/// The weakly-connected components of a trace's causality skeleton.
///
/// Components are ordered by their smallest source task id; the tasks
/// inside each component are sorted ascending. Both orders are pure
/// functions of the trace, independent of thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TracePartition {
    /// Task sets, each sorted ascending, ordered by minimum task id.
    pub components: Vec<Vec<TaskId>>,
    /// Total body records per component (same indexing).
    pub records: Vec<usize>,
}

impl TracePartition {
    /// Number of islands.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the trace has no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Records in the largest island (0 for an empty trace).
    pub fn largest_records(&self) -> usize {
        self.records.iter().copied().max().unwrap_or(0)
    }

    /// Total records across all islands.
    pub fn total_records(&self) -> usize {
        self.records.iter().sum()
    }
}

/// Union-find over task indexes with path halving and union by size.
struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Computes the weakly-connected components of `trace`'s causality
/// skeleton (see the [module docs](self)).
pub fn partition(trace: &Trace) -> TracePartition {
    let n = trace.task_count();
    let mut sets = DisjointSets::new(n);

    // Anchor maps: the first task touching a given shared id; later
    // toucher tasks union with the anchor.
    let mut monitors: HashMap<u32, u32> = HashMap::new();
    let mut listeners: HashMap<u32, u32> = HashMap::new();
    let mut txns: HashMap<u32, u32> = HashMap::new();
    let mut vars: HashMap<u32, u32> = HashMap::new();
    let anchor =
        |map: &mut HashMap<u32, u32>, id: u32, task: u32, sets: &mut DisjointSets| match map
            .get(&id)
        {
            Some(&first) => sets.union(first, task),
            None => {
                map.insert(id, task);
            }
        };

    for info in trace.tasks() {
        let t = info.id.as_u32();
        match info.kind {
            TaskKind::Thread { forked_at, .. } => {
                if let Some(at) = forked_at {
                    sets.union(t, at.task.as_u32());
                }
            }
            // Origins are covered again below via the sender's
            // Send/SendAtFront record; queue co-membership is handled
            // per queue afterwards.
            TaskKind::Event { .. } => {}
        }
        for record in trace.body(info.id) {
            match *record {
                Record::Fork { child } | Record::Join { child } => {
                    sets.union(t, child.as_u32());
                }
                Record::Send { event, .. } | Record::SendAtFront { event, .. } => {
                    sets.union(t, event.as_u32());
                }
                Record::Wait { monitor, .. }
                | Record::Notify { monitor, .. }
                | Record::Lock { monitor, .. }
                | Record::Unlock { monitor, .. } => {
                    anchor(&mut monitors, monitor.as_u32(), t, &mut sets);
                }
                Record::Register { listener } | Record::Perform { listener } => {
                    anchor(&mut listeners, listener.as_u32(), t, &mut sets);
                }
                Record::RpcCall { txn }
                | Record::RpcHandle { txn }
                | Record::RpcReply { txn }
                | Record::RpcReceive { txn } => {
                    anchor(&mut txns, txn.as_u32(), t, &mut sets);
                }
                Record::Read { var }
                | Record::Write { var }
                | Record::ObjRead { var, .. }
                | Record::ObjWrite { var, .. } => {
                    anchor(&mut vars, var.as_u32(), t, &mut sets);
                }
                Record::Deref { .. }
                | Record::Guard { .. }
                | Record::MethodEnter { .. }
                | Record::MethodExit { .. } => {}
            }
        }
    }

    // Queue co-membership: every event of a queue in one component.
    for (_, queue) in trace.queues() {
        let mut events = queue.events.iter();
        if let Some(first) = events.next() {
            let first = first.as_u32();
            for event in events {
                sets.union(first, event.as_u32());
            }
        }
    }

    // External-input rule: all externals chain in sequence order.
    let mut externals = trace.external_events().iter();
    if let Some(first) = externals.next() {
        let first = first.as_u32();
        for event in externals {
            sets.union(first, event.as_u32());
        }
    }

    // Group by root; first-seen order over ascending task ids yields
    // components ordered by minimum task id with sorted members.
    let mut component_of_root: HashMap<u32, usize> = HashMap::new();
    let mut components: Vec<Vec<TaskId>> = Vec::new();
    let mut records: Vec<usize> = Vec::new();
    for i in 0..n as u32 {
        let root = sets.find(i);
        let slot = *component_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            records.push(0);
            components.len() - 1
        });
        let task = TaskId::new(i);
        components[slot].push(task);
        records[slot] += trace.body_len(task) as usize;
    }
    TracePartition {
        components,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{MonitorId, Pc, TraceBuilder, VarId};

    #[test]
    fn empty_trace_has_no_components() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        let p = partition(&trace);
        assert!(p.is_empty());
        assert_eq!(p.largest_records(), 0);
    }

    #[test]
    fn single_task_trace_is_one_island() {
        let mut b = TraceBuilder::new("one");
        let pr = b.add_process();
        let t = b.add_thread(pr, "main");
        b.write(t, VarId::new(0));
        let trace = b.finish().unwrap();
        let p = partition(&trace);
        assert_eq!(p.len(), 1);
        assert_eq!(p.components[0], vec![t]);
        assert_eq!(p.total_records(), 1);
    }

    #[test]
    fn fully_connected_trace_is_one_island() {
        let mut b = TraceBuilder::new("connected");
        let pr = b.add_process();
        let q = b.add_queue(pr);
        let t = b.add_thread(pr, "main");
        let w = b.fork(t, pr, "worker");
        let e = b.post(w, q, "ev", 0);
        b.process_event(e);
        b.join(t, w);
        let trace = b.finish().unwrap();
        let p = partition(&trace);
        assert_eq!(p.len(), 1);
        assert_eq!(p.components[0].len(), trace.task_count());
    }

    /// Builds two islands plus an optional bridging record, returning
    /// the component count.
    fn islands_with(bridge: impl FnOnce(&mut TraceBuilder, TaskId, TaskId)) -> usize {
        let mut b = TraceBuilder::new("bridge");
        let p1 = b.add_process();
        let t1 = b.add_thread(p1, "a");
        b.obj_write(t1, VarId::new(0), None, Pc::new(0x10));
        let p2 = b.add_process();
        let t2 = b.add_thread(p2, "b");
        b.obj_write(t2, VarId::new(1), None, Pc::new(0x20));
        bridge(&mut b, t1, t2);
        let trace = b.finish().unwrap();
        partition(&trace).len()
    }

    #[test]
    fn disconnected_tasks_stay_separate() {
        assert_eq!(islands_with(|_, _, _| {}), 2);
    }

    #[test]
    fn shared_variable_merges_components() {
        assert_eq!(
            islands_with(|b, t1, t2| {
                b.write(t1, VarId::new(7));
                b.read(t2, VarId::new(7));
            }),
            1
        );
    }

    #[test]
    fn shared_monitor_merges_components() {
        assert_eq!(
            islands_with(|b, t1, t2| {
                b.lock(t1, MonitorId::new(0), 0);
                b.unlock(t1, MonitorId::new(0), 0);
                b.lock(t2, MonitorId::new(0), 1);
                b.unlock(t2, MonitorId::new(0), 1);
            }),
            1
        );
    }

    #[test]
    fn shared_listener_merges_components() {
        assert_eq!(
            islands_with(|b, t1, t2| {
                let l = b.add_listener("com.example.Listener");
                b.register(t1, l);
                b.perform(t2, l);
            }),
            1
        );
        // Distinct listeners do not.
        assert_eq!(
            islands_with(|b, t1, t2| {
                let la = b.add_listener("com.example.A");
                let lb = b.add_listener("com.example.B");
                b.register(t1, la);
                b.perform(t2, lb);
            }),
            2
        );
    }

    /// Two self-contained islands — a driver posting to its own queue
    /// each — with an optional cross-island post from A into B's queue.
    fn two_queue_islands(cross: bool) -> usize {
        let mut b = TraceBuilder::new("post");
        let p1 = b.add_process();
        let q1 = b.add_queue(p1);
        let t1 = b.add_thread(p1, "a");
        let e1 = b.post(t1, q1, "ev-a", 0);
        b.process_event(e1);
        let p2 = b.add_process();
        let q2 = b.add_queue(p2);
        let t2 = b.add_thread(p2, "b");
        let e2 = b.post(t2, q2, "ev-b", 0);
        b.process_event(e2);
        if cross {
            let c = b.post(t1, q2, "cross", 0);
            b.process_event(c);
        }
        partition(&b.finish().unwrap()).len()
    }

    #[test]
    fn cross_island_post_merges_components() {
        assert_eq!(two_queue_islands(false), 2);
        // A post into the other island's queue fuses them: the send
        // edge reaches the event, queue co-membership the rest.
        assert_eq!(two_queue_islands(true), 1);
    }

    #[test]
    fn cross_island_join_merges_components() {
        let mut b = TraceBuilder::new("join");
        let p1 = b.add_process();
        let t1 = b.add_thread(p1, "a");
        let p2 = b.add_process();
        let t2 = b.add_thread(p2, "b");
        let w = b.fork(t2, p2, "w");
        b.join(t1, w);
        let trace = b.finish().unwrap();
        assert_eq!(partition(&trace).len(), 1);
    }

    #[test]
    fn queue_comembership_merges_unrelated_posters() {
        let mut b = TraceBuilder::new("queue");
        let pr = b.add_process();
        let q = b.add_queue(pr);
        let t1 = b.add_thread(pr, "a");
        let t2 = b.add_thread(pr, "b");
        let e1 = b.post(t1, q, "e1", 0);
        let e2 = b.post(t2, q, "e2", 0);
        b.process_event(e1);
        b.process_event(e2);
        let trace = b.finish().unwrap();
        // t1 and t2 never interact directly, but their events share a
        // queue, whose atomicity/order rules relate them.
        assert_eq!(partition(&trace).len(), 1);
    }

    #[test]
    fn externals_form_one_clique() {
        let mut b = TraceBuilder::new("ext");
        let p1 = b.add_process();
        let q1 = b.add_queue(p1);
        let p2 = b.add_process();
        let q2 = b.add_queue(p2);
        let e1 = b.external(q1, "ext-1");
        let e2 = b.external(q2, "ext-2");
        b.process_event(e1);
        b.process_event(e2);
        let trace = b.finish().unwrap();
        // The external-input rule chains e1 → e2 across queues.
        assert_eq!(partition(&trace).len(), 1);
    }

    #[test]
    fn components_ordered_by_min_task_with_sorted_members() {
        let mut b = TraceBuilder::new("order");
        let pr = b.add_process();
        let a = b.add_thread(pr, "a"); // t0, island 1
        let c = b.add_thread(pr, "b"); // t1, island 2
        let d = b.fork(a, pr, "a2"); // t2, island 1
        b.write(c, VarId::new(9));
        let trace = b.finish().unwrap();
        let p = partition(&trace);
        assert_eq!(p.components, vec![vec![a, d], vec![c]]);
        assert_eq!(p.records, vec![1, 1]);
    }
}
