//! Deterministic parallel fleet runner.
//!
//! Fans independent per-app / per-config analyses across cores with
//! `std::thread::scope` — no extra dependencies — while keeping output
//! deterministic: results come back in **input order** no matter how
//! many workers ran or how work interleaved. Callers compute in
//! parallel, then print sequentially from the returned `Vec`, so the
//! bytes written are identical at 1 thread and at N.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on `threads` workers, returning results
/// in input order.
///
/// Work is distributed by an atomic cursor, so long items do not stall
/// the queue behind them. `f` must be `Sync` because all workers share
/// it; items are borrowed, letting workers read shared inputs without
/// cloning.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// let squares = cafa_engine::fleet::map(&[1, 2, 3, 4], 2, |&n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(item)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("fleet worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed"))
        .collect()
}

/// Deterministic key→shard assignment for long-lived sharded pools
/// (the fleet discipline applied to keyed streams): FNV-1a over the
/// key's bytes, reduced modulo `shards`. The same key always lands on
/// the same shard for a given shard count, on any machine — so a
/// multi-tenant server that routes a session id through `shard_of`
/// processes that session's bytes on one worker, in arrival order,
/// and its output is independent of how many shards exist.
///
/// # Examples
///
/// ```
/// let s = cafa_engine::fleet::shard_of("device-42", 8);
/// assert_eq!(s, cafa_engine::fleet::shard_of("device-42", 8));
/// assert!(s < 8);
/// ```
pub fn shard_of(key: &str, shards: usize) -> usize {
    (fnv1a(key.as_bytes()) % shards.max(1) as u64) as usize
}

/// FNV-1a 64-bit over `bytes` — the same pinned constants the schedule
/// explorer uses for trace fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The worker count to use: `CAFA_FLEET_THREADS` when set and
/// positive, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CAFA_FLEET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 64] {
            let out = map(&items, threads, |&n| n * 3);
            assert_eq!(out, items.iter().map(|n| n * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let idx: Vec<usize> = (0..50).collect();
        map(&idx, 8, |&i| counters[i].fetch_add(1, Ordering::SeqCst));
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert!(map(&none, 4, |&b| b).is_empty());
        assert_eq!(map(&[9], 4, |&b: &u8| b + 1), vec![10]);
    }

    #[test]
    fn oversubscription_is_clamped() {
        // More threads than items must not deadlock or drop results.
        let out = map(&[1, 2], 32, |&n: &i32| n - 1);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned FNV-1a values: a change here would silently re-home
        // every journaled session of a live fleet server.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(shard_of("device-0", 1), 0);
        for shards in [1, 2, 7, 8, 64] {
            for key in ["", "a", "device-42", "anon-17", "gen:7:3"] {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "stable for {key}/{shards}");
            }
        }
    }
}
