//! Per-app structural checks: each workload really contains the
//! app-specific machinery its module documents, and the pipeline
//! behaves accordingly.

use cafa_apps::{all_apps, AppSpec, Label, TrueClass};
use cafa_core::Analyzer;
use cafa_trace::Record;

fn app(name: &str) -> AppSpec {
    all_apps().into_iter().find(|a| a.name == name).unwrap()
}

#[test]
fn mytracks_uses_binder() {
    let a = app("MyTracks");
    let trace = a.record(0).unwrap().trace.unwrap();
    // The Figure 1 pattern binds a service in a second process.
    assert!(trace.process_count() >= 2, "service process exists");
    let rpc_calls = trace
        .iter_ops()
        .filter(|(_, r)| matches!(r, Record::RpcCall { .. }))
        .count();
    assert!(rpc_calls >= 1, "onResume binds over Binder");
    // Its known bug is an intra-thread race.
    let known: Vec<_> = a
        .truth
        .iter()
        .filter(|(_, l)| matches!(l, Label::Harmful { known: true, .. }))
        .collect();
    assert_eq!(known.len(), 1);
    assert!(matches!(
        known[0].1,
        Label::Harmful {
            class: TrueClass::IntraThread,
            known: true
        }
    ));
}

#[test]
fn connectbot_has_figure2_and_known_interthread_bug() {
    let a = app("ConnectBot");
    let known: Vec<_> = a
        .truth
        .iter()
        .filter(|(_, l)| matches!(l, Label::Harmful { known: true, .. }))
        .collect();
    assert_eq!(known.len(), 1);
    assert!(matches!(
        known[0].1,
        Label::Harmful {
            class: TrueClass::InterThread,
            known: true
        }
    ));
    // The Figure 2 scalar is a write in onPause#? — shape check via the
    // low-level counter: ConnectBot has its calibrated 1,664 pairs.
    assert_eq!(a.lowlevel_pairs, Some(1664));
}

#[test]
fn todolist_swallows_every_violation() {
    let a = app("ToDoList");
    // Under stress, violations fire but never crash (§6.2).
    let mut fired = 0;
    for seed in 0..12 {
        let o = a.run_stress(seed).unwrap();
        assert!(!o.crashed(), "ToDoList catches its NPEs");
        fired += o.npes.len();
    }
    assert!(fired > 0, "the races do manifest");
}

#[test]
fn listener_fp_apps_have_uncovered_packages() {
    // Apps with Type I FPs register listeners outside the four
    // instrumented framework packages; with paper coverage those
    // listeners never appear in the trace.
    for name in ["ConnectBot", "ZXing", "Firefox", "FBReader", "Browser"] {
        let a = app(name);
        let paper = a.record(0).unwrap().trace.unwrap();
        let full = a.record_full_coverage(0).unwrap().trace.unwrap();
        assert!(
            paper.listener_count() < full.listener_count(),
            "{name}: paper coverage drops app-package listeners"
        );
    }
}

#[test]
fn every_app_report_is_stable_across_detector_runs() {
    for a in all_apps().iter().take(3) {
        let trace = a.record(0).unwrap().trace.unwrap();
        let r1 = Analyzer::new().analyze(&trace).unwrap();
        let r2 = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(r1.races, r2.races, "{}", a.name);
    }
}

#[test]
fn event_counts_are_schedule_independent() {
    // The "Events" column must not depend on the seed.
    for a in all_apps().iter().take(2) {
        let e0 = a.record(0).unwrap().events_processed;
        let e1 = a.record(17).unwrap().events_processed;
        assert_eq!(e0, e1, "{}", a.name);
        assert_eq!(e0 as usize, a.expected.events, "{}", a.name);
    }
}

#[test]
fn stress_and_normal_variants_share_label_tables() {
    for a in all_apps() {
        // Same pattern variables in both builds: every labelled var is
        // a pointer slot in both programs (indices match by recipe
        // determinism; spot-check the count).
        assert!(!a.truth.is_empty(), "{}", a.name);
        assert_eq!(
            a.program.var_count(),
            a.stress_program.var_count(),
            "{}: builds declare identical variable tables",
            a.name
        );
    }
}
