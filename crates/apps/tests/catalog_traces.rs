//! Pinned trace fingerprints for the ten catalog apps.
//!
//! The DSL migration was proven by a differential test recording the
//! legacy imperative builders and the model-lowered programs side by
//! side and comparing trace bytes. The legacy builders are gone; these
//! FNV-1a hashes of the serialized traces are the surviving evidence.
//! If a change to `cafa-model`'s interpreter, the pattern vocabulary,
//! or the catalog data moves any hash, the recorded workloads are no
//! longer the ones Table 1 and the golden reports were produced from.

use cafa_apps::all_apps;
use cafa_trace::to_binary_vec;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// (app, record(0), record_full_coverage(0), record_stress(0)).
const PINNED: [(&str, u64, u64, u64); 10] = [
    (
        "ConnectBot",
        0x80d06236a97addb0,
        0x414d03bd9049dca4,
        0xa65383e3b0af2f80,
    ),
    (
        "MyTracks",
        0xc2f83769332f4d69,
        0xc2f83769332f4d69,
        0xd5eaaaf99c9ffc4a,
    ),
    (
        "ZXing",
        0x8341961fbd40ada8,
        0x6404cabb3743a019,
        0xcdb1bbf14f125363,
    ),
    (
        "ToDoList",
        0x5ebd1627ece1f6b3,
        0x5ebd1627ece1f6b3,
        0x5d42d99ff5cce627,
    ),
    (
        "Browser",
        0x562a9e4013c1549b,
        0x3248d3511063fe7e,
        0x371faf1186759ede,
    ),
    (
        "Firefox",
        0x0b444231ba3608e7,
        0xa0669899da6526d5,
        0x096a11d0286545a4,
    ),
    (
        "VLC",
        0xa37d051ef864903f,
        0xa37d051ef864903f,
        0x0f3f03810da1dda6,
    ),
    (
        "FBReader",
        0x196794be7dc35ee6,
        0xfe4d638cb018106e,
        0xdefbba553ff3eb27,
    ),
    (
        "Camera",
        0xed38c1e272c7a100,
        0xed38c1e272c7a100,
        0xc62c26cf6309ff32,
    ),
    (
        "Music",
        0x288b308cba6af9c2,
        0x288b308cba6af9c2,
        0x464ad68815163af8,
    ),
];

#[test]
fn catalog_trace_hashes_are_pinned() {
    let mut mismatches = Vec::new();
    for (app, pin) in all_apps().iter().zip(PINNED) {
        assert_eq!(app.name, pin.0, "catalog order changed");
        let got = (
            fnv1a(&to_binary_vec(&app.record(0).unwrap().trace.unwrap())),
            fnv1a(&to_binary_vec(
                &app.record_full_coverage(0).unwrap().trace.unwrap(),
            )),
            fnv1a(&to_binary_vec(
                &app.record_stress(0).unwrap().trace.unwrap(),
            )),
        );
        if got != (pin.1, pin.2, pin.3) {
            mismatches.push(format!(
                "    (\"{}\", {:#018x}, {:#018x}, {:#018x}),",
                app.name, got.0, got.1, got.2
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "trace fingerprints moved; actual values:\n{}",
        mismatches.join("\n")
    );
}
