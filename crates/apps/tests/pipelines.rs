//! The bespoke per-app pipelines really exist in the recorded traces
//! and behave as documented (ordered plumbing, no reports).

use cafa_apps::all_apps;

#[test]
fn bespoke_pipeline_handlers_appear_in_traces() {
    let expectations = [
        ("ConnectBot", "connectbot:onTermUpdate"),
        ("MyTracks", "mytracks:onLocationChanged"),
        ("ZXing", "zxing:onDecodeResult"),
        ("ToDoList", "todolist:onSaveNote"),
        ("Browser", "browser:parse"),
        ("Firefox", "firefox:composite"),
        ("VLC", "vlc:decodePacket"),
        ("FBReader", "fbreader:onPageTurn0"),
        ("Camera", "camera:onReview"),
        ("Music", "music:onSeekTick"),
    ];
    for app in all_apps() {
        let trace = app.record(0).unwrap().trace.unwrap();
        let (_, handler) = expectations
            .iter()
            .find(|(n, _)| *n == app.name)
            .expect("every app has a pipeline expectation");
        assert!(
            trace
                .events()
                .any(|e| trace.names().resolve(e.name) == *handler),
            "{}: pipeline handler {handler} missing from the trace",
            app.name
        );
    }
}

#[test]
fn dual_looper_apps_have_two_plus_queues() {
    // Every app gets a HandlerThread from the flavor bundle; Firefox
    // and VLC add dedicated compositor/video loopers on top.
    for app in all_apps() {
        let trace = app.record(0).unwrap().trace.unwrap();
        let min = match app.name.as_str() {
            "Firefox" | "VLC" => 3,
            _ => 2,
        };
        assert!(
            trace.queue_count() >= min,
            "{}: expected >= {min} loopers, got {}",
            app.name,
            trace.queue_count()
        );
        // Every queue processed at least one event.
        for (qid, q) in trace.queues() {
            assert!(!q.events.is_empty(), "{}: empty looper {qid}", app.name);
        }
    }
}

#[test]
fn pipelines_never_crash_under_any_survey_seed() {
    // The bespoke plumbing must be schedule-safe: its pointers are
    // never freed, so even stress runs can only crash on pattern vars.
    for app in all_apps().iter().take(4) {
        for seed in 0..6 {
            let outcome = app.run_stress(seed).unwrap();
            for npe in &outcome.npes {
                assert!(
                    app.truth.get(npe.var).is_some(),
                    "{}: NPE on unplanted var {} in {}",
                    app.name,
                    npe.var,
                    npe.context
                );
            }
        }
    }
}
