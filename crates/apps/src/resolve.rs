//! Name → workload resolution shared by the CLI commands.
//!
//! Two namespaces resolve to an [`AppSpec`]: the ten catalog apps by
//! their Table 1 name (case-insensitive), and generated apps by the
//! coordinate scheme `gen:<seed>:<index>` — app `<index>` of the
//! default-sized corpus `cafa gen --seed <seed>` produces. Failures
//! are typed: [`ResolveError::UnknownApp`] carries every valid name so
//! the CLI can print them instead of a bare "unknown app".

use std::fmt;

use cafa_model::{generate_one, lower, AppSpec};

/// Why a workload name failed to resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// The name matches neither a catalog app nor the `gen:` scheme.
    UnknownApp {
        /// The name that failed to resolve.
        name: String,
        /// Every catalog app name, in Table 1 order.
        valid: Vec<String>,
    },
    /// The name used the `gen:` scheme but the coordinates are
    /// malformed.
    BadGenSpec {
        /// The offending spec.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownApp { name, valid } => write!(
                f,
                "unknown app `{name}`; valid apps: {}, or a generated app \
                 `gen:<seed>:<index>` (see `cafa gen`)",
                valid.join(", ")
            ),
            Self::BadGenSpec { spec, reason } => {
                write!(
                    f,
                    "bad generated-app spec `{spec}`: {reason} (expected `gen:<seed>:<index>`)"
                )
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolves a workload name to its spec: a catalog app by
/// (case-insensitive) Table 1 name, or `gen:<seed>:<index>` for a
/// generated app.
///
/// # Errors
///
/// [`ResolveError::BadGenSpec`] for malformed `gen:` coordinates,
/// [`ResolveError::UnknownApp`] (listing every valid name) otherwise.
pub fn resolve(name: &str) -> Result<AppSpec, ResolveError> {
    if let Some(coords) = name.strip_prefix("gen:") {
        return resolve_generated(name, coords);
    }
    let apps = crate::all_apps();
    if let Some(app) = apps.iter().position(|a| a.name.eq_ignore_ascii_case(name)) {
        let mut apps = apps;
        return Ok(apps.swap_remove(app));
    }
    Err(ResolveError::UnknownApp {
        name: name.to_owned(),
        valid: apps.into_iter().map(|a| a.name).collect(),
    })
}

fn resolve_generated(spec: &str, coords: &str) -> Result<AppSpec, ResolveError> {
    let bad = |reason: String| ResolveError::BadGenSpec {
        spec: spec.to_owned(),
        reason,
    };
    let (seed, index) = coords
        .split_once(':')
        .ok_or_else(|| bad("missing `:<index>`".to_owned()))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| bad(format!("seed `{seed}` is not a number")))?;
    let index: usize = index
        .parse()
        .map_err(|_| bad(format!("index `{index}` is not a number")))?;
    let model = generate_one(seed, index);
    Ok(lower(&model).expect("generated models are valid by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve_case_insensitively() {
        assert_eq!(resolve("connectbot").unwrap().name, "ConnectBot");
        assert_eq!(resolve("Music").unwrap().name, "Music");
    }

    #[test]
    fn generated_coordinates_resolve() {
        let app = resolve("gen:7:3").unwrap();
        assert_eq!(app.name, "gen7-0003");
        assert!(!app.truth.is_empty());
    }

    #[test]
    fn unknown_app_lists_every_valid_name() {
        let err = resolve("nosuch").unwrap_err();
        let ResolveError::UnknownApp { name, valid } = &err else {
            panic!("expected UnknownApp, got {err:?}");
        };
        assert_eq!(name, "nosuch");
        assert_eq!(valid.len(), 10);
        let msg = err.to_string();
        for app in ["ConnectBot", "MyTracks", "ZXing", "Music"] {
            assert!(msg.contains(app), "{msg}");
        }
        assert!(msg.contains("gen:<seed>:<index>"), "{msg}");
    }

    #[test]
    fn malformed_gen_specs_are_typed_errors() {
        for (spec, needle) in [
            ("gen:7", "missing"),
            ("gen:x:3", "seed `x`"),
            ("gen:7:x", "index `x`"),
        ] {
            let err = resolve(spec).unwrap_err();
            assert!(
                matches!(err, ResolveError::BadGenSpec { .. }),
                "{spec}: {err:?}"
            );
            assert!(err.to_string().contains(needle), "{spec}: {err}");
        }
    }
}
