//! The ten applications of the paper's evaluation (§6.1), as simulator
//! workloads.
//!
//! Each module plants exactly the races and false positives the paper's
//! Table 1 reports for that app — the detector must rediscover them
//! from the recorded trace — plus enough benign filler activity to
//! reach the paper's per-app event count. `compute_units` tunes the
//! uninstrumented CPU work per filler event, which sets where the app
//! lands in the 2×–6× tracing-overhead band of Figure 8.

use cafa_sim::ProgramBuilder;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

pub mod browser;
pub mod camera;
pub mod connectbot;
pub mod fbreader;
pub mod firefox;
pub mod music;
pub mod mytracks;
pub mod todolist;
pub mod vlc;
pub mod zxing;

/// Shared scaffold: a single app process with one main looper, the
/// recipe closure planting patterns, and filler to the exact event
/// target. The recipe runs twice, producing the deterministic Table 1
/// program and a *stress* variant where the harmful patterns' racing
/// sides land simultaneously (the §6.2 survey configuration).
pub(crate) fn build_app(
    name: &'static str,
    expected: ExpectedRow,
    lowlevel_pairs: Option<usize>,
    compute_units: u32,
    recipe: impl Fn(&mut Patterns<'_>),
) -> AppSpec {
    let build = |stress: bool| {
        let mut p = ProgramBuilder::new(name);
        let proc = p.process();
        let looper = p.looper(proc);
        let mut pats = if stress {
            Patterns::new_stress(&mut p, proc, looper)
        } else {
            Patterns::new(&mut p, proc, looper)
        };
        recipe(&mut pats);
        pats.fill_to(expected.events, compute_units);
        let planted = pats.events_planted();
        assert_eq!(planted, expected.events, "{name}: event budget mismatch");
        let truth = pats.finish();
        (p.build(), truth)
    };
    let (program, truth) = build(false);
    let (stress_program, stress_truth) = build(true);
    // Both builds declare variables in the same order, so the label
    // tables must be identical.
    debug_assert_eq!(truth.len(), stress_truth.len());
    AppSpec {
        name,
        program,
        stress_program,
        truth,
        expected,
        lowlevel_pairs,
    }
}

/// Builds every evaluated application, in the order of Table 1.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        connectbot::build(),
        mytracks::build(),
        zxing::build(),
        todolist::build(),
        browser::build(),
        firefox::build(),
        vlc::build(),
        fbreader::build(),
        camera::build(),
        music::build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_have_consistent_expected_rows() {
        let apps = all_apps();
        assert_eq!(apps.len(), 10);
        for app in &apps {
            assert!(
                app.expected.is_consistent(),
                "{} row inconsistent",
                app.name
            );
        }
        // The paper's overall row.
        let reported: usize = apps.iter().map(|a| a.expected.reported).sum();
        let a: usize = apps.iter().map(|x| x.expected.a).sum();
        let b: usize = apps.iter().map(|x| x.expected.b).sum();
        let c: usize = apps.iter().map(|x| x.expected.c).sum();
        let f1: usize = apps.iter().map(|x| x.expected.fp1).sum();
        let f2: usize = apps.iter().map(|x| x.expected.fp2).sum();
        let f3: usize = apps.iter().map(|x| x.expected.fp3).sum();
        assert_eq!(reported, 115);
        assert_eq!((a, b, c), (13, 25, 31));
        assert_eq!((f1, f2, f3), (9, 32, 5));
    }

    #[test]
    fn truth_matches_expected_rows() {
        use crate::truth::{FpType, TrueClass};
        for app in all_apps() {
            let e = app.expected;
            assert_eq!(
                app.truth.harmful_count(TrueClass::IntraThread),
                e.a,
                "{} (a)",
                app.name
            );
            assert_eq!(
                app.truth.harmful_count(TrueClass::InterThread),
                e.b,
                "{} (b)",
                app.name
            );
            assert_eq!(
                app.truth.harmful_count(TrueClass::Conventional),
                e.c,
                "{} (c)",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::MissingListener),
                e.fp1,
                "{} I",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::ImpreciseCommutativity),
                e.fp2,
                "{} II",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::DerefMismatch),
                e.fp3,
                "{} III",
                app.name
            );
        }
    }

    #[test]
    fn exactly_two_known_bugs() {
        let known: usize = all_apps().iter().map(|a| a.truth.known_count()).sum();
        assert_eq!(known, 2, "ConnectBot r90632bd and MyTracks Figure 1");
    }
}
