//! The ten applications of the paper's evaluation (§6.1), as app-model
//! *data*.
//!
//! Each module is now a single [`AppModel`] value: the statements plant
//! exactly the races and false positives the paper's Table 1 reports
//! for that app — the detector must rediscover them from the recorded
//! trace — and the event budget adds enough benign filler activity to
//! reach the paper's per-app event count. `compute_units` tunes the
//! uninstrumented CPU work per filler event, which sets where the app
//! lands in the 2×–6× tracing-overhead band of Figure 8.
//!
//! The models lower through `cafa-model`'s interpreter, which replays
//! the historical builders' call sequence exactly; the recorded traces
//! are byte-for-byte those of the pre-DSL hand-written catalog (pinned
//! by the `catalog_traces` integration test).

use cafa_model::{lower, AppModel, AppSpec, Stmt};

pub mod browser;
pub mod camera;
pub mod connectbot;
pub mod fbreader;
pub mod firefox;
pub mod music;
pub mod mytracks;
pub mod todolist;
pub mod vlc;
pub mod zxing;

/// `n` copies of a statement (Table 1 rows plant whole populations).
pub(crate) fn times(stmt: Stmt, n: usize) -> impl Iterator<Item = Stmt> {
    std::iter::repeat(stmt).take(n)
}

/// The tail every catalog app shares: two send-ordered teardown pairs
/// (safe under CAFA's queue rules, racy under an EventRacer-style
/// model — ablation material) followed by the benign plumbing bundle
/// (Binder polls, a decode pipeline, front-posted input, a framework
/// listener, and a background `HandlerThread`).
pub(crate) fn shared_plumbing(service: &str, burst: u32) -> [Stmt; 3] {
    [
        Stmt::QueueProtected,
        Stmt::QueueProtected,
        Stmt::FlavorBundle {
            service: service.to_owned(),
            burst,
        },
    ]
}

/// Every evaluated application's model, in the order of Table 1.
pub fn all_models() -> Vec<AppModel> {
    vec![
        connectbot::model(),
        mytracks::model(),
        zxing::model(),
        todolist::model(),
        browser::model(),
        firefox::model(),
        vlc::model(),
        fbreader::model(),
        camera::model(),
        music::model(),
    ]
}

/// Builds every evaluated application, in the order of Table 1.
pub fn all_apps() -> Vec<AppSpec> {
    all_models()
        .iter()
        .map(|m| lower(m).expect("catalog models are valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_imply_the_published_rows() {
        let models = all_models();
        assert_eq!(models.len(), 10);
        let expected = [
            connectbot::EXPECTED,
            mytracks::EXPECTED,
            zxing::EXPECTED,
            todolist::EXPECTED,
            browser::EXPECTED,
            firefox::EXPECTED,
            vlc::EXPECTED,
            fbreader::EXPECTED,
            camera::EXPECTED,
            music::EXPECTED,
        ];
        for (model, exp) in models.iter().zip(expected) {
            // The row is *derived* from the statements' embedded
            // labels; it must still equal the paper's published
            // constants.
            assert_eq!(model.expected_row(), exp, "{}", model.name);
            assert!(model.expected_row().is_consistent(), "{}", model.name);
            model.check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn all_apps_have_consistent_expected_rows() {
        let apps = all_apps();
        assert_eq!(apps.len(), 10);
        for app in &apps {
            assert!(
                app.expected.is_consistent(),
                "{} row inconsistent",
                app.name
            );
        }
        // The paper's overall row.
        let reported: usize = apps.iter().map(|a| a.expected.reported).sum();
        let a: usize = apps.iter().map(|x| x.expected.a).sum();
        let b: usize = apps.iter().map(|x| x.expected.b).sum();
        let c: usize = apps.iter().map(|x| x.expected.c).sum();
        let f1: usize = apps.iter().map(|x| x.expected.fp1).sum();
        let f2: usize = apps.iter().map(|x| x.expected.fp2).sum();
        let f3: usize = apps.iter().map(|x| x.expected.fp3).sum();
        assert_eq!(reported, 115);
        assert_eq!((a, b, c), (13, 25, 31));
        assert_eq!((f1, f2, f3), (9, 32, 5));
    }

    #[test]
    fn truth_matches_expected_rows() {
        use cafa_model::{FpType, TrueClass};
        for app in all_apps() {
            let e = app.expected;
            assert_eq!(
                app.truth.harmful_count(TrueClass::IntraThread),
                e.a,
                "{} (a)",
                app.name
            );
            assert_eq!(
                app.truth.harmful_count(TrueClass::InterThread),
                e.b,
                "{} (b)",
                app.name
            );
            assert_eq!(
                app.truth.harmful_count(TrueClass::Conventional),
                e.c,
                "{} (c)",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::MissingListener),
                e.fp1,
                "{} I",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::ImpreciseCommutativity),
                e.fp2,
                "{} II",
                app.name
            );
            assert_eq!(
                app.truth.benign_count(FpType::DerefMismatch),
                e.fp3,
                "{} III",
                app.name
            );
        }
    }

    #[test]
    fn exactly_two_known_bugs() {
        let known: usize = all_apps().iter().map(|a| a.truth.known_count()).sum();
        assert_eq!(known, 2, "ConnectBot r90632bd and MyTracks Figure 1");
    }

    #[test]
    fn models_round_trip_through_text() {
        let models = all_models();
        let text = cafa_model::text::corpus_to_text(&models);
        assert_eq!(cafa_model::text::parse_corpus(&text).unwrap(), models);
    }
}
