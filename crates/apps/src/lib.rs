//! Workload models of the ten Android applications evaluated in the
//! CAFA paper (§6.1).
//!
//! The paper's evaluation ran instrumented builds of ConnectBot,
//! MyTracks, ZXing, ToDoList, Browser, Firefox, VLC, FBReader, Camera,
//! and Music on a Nexus 4 and reported, per app, the event count, the
//! use-free races found, their true/false classification, and the
//! tracing overhead. This crate holds each app as a `cafa-model`
//! [`AppModel`](cafa_model::AppModel) — plain data whose statements
//! carry their own ground-truth labels — and lowers it into a
//! `cafa-sim` workload that plants the same population of races and
//! false-positive patterns and generates the same number of events, so
//! the whole pipeline — record with `cafa-sim`, analyze with
//! `cafa-core` — regenerates Table 1 row by row.
//!
//! The detector never sees the ground truth: it must rediscover every
//! planted pattern from the trace alone. The labels only enter when the
//! evaluation harness splits the detector's report into the
//! true (a)/(b)/(c) and false I/II/III columns.
//!
//! # Examples
//!
//! ```
//! use cafa_apps::all_apps;
//!
//! let apps = all_apps();
//! assert_eq!(apps.len(), 10);
//! let total_reported: usize = apps.iter().map(|a| a.expected.reported).sum();
//! assert_eq!(total_reported, 115); // the paper's overall row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod prober;
pub mod resolve;

pub use cafa_model::{
    patterns, AppModel, AppSpec, ExpectedRow, FpType, GroundTruth, Label, Stmt, TrueClass,
};
pub use catalog::{all_apps, all_models};
pub use resolve::{resolve, ResolveError};
