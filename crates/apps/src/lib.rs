//! Workload models of the ten Android applications evaluated in the
//! CAFA paper (§6.1).
//!
//! The paper's evaluation ran instrumented builds of ConnectBot,
//! MyTracks, ZXing, ToDoList, Browser, Firefox, VLC, FBReader, Camera,
//! and Music on a Nexus 4 and reported, per app, the event count, the
//! use-free races found, their true/false classification, and the
//! tracing overhead. This crate rebuilds each app as a `cafa-sim`
//! workload that plants the same population of races and
//! false-positive patterns (with labelled ground truth) and generates
//! the same number of events, so the whole pipeline — record with
//! `cafa-sim`, analyze with `cafa-core` — regenerates Table 1 row by
//! row.
//!
//! The detector never sees the ground truth: it must rediscover every
//! planted pattern from the trace alone. The labels only enter when the
//! evaluation harness splits the detector's report into the
//! true (a)/(b)/(c) and false I/II/III columns.
//!
//! # Examples
//!
//! ```
//! use cafa_apps::all_apps;
//!
//! let apps = all_apps();
//! assert_eq!(apps.len(), 10);
//! let total_reported: usize = apps.iter().map(|a| a.expected.reported).sum();
//! assert_eq!(total_reported, 115); // the paper's overall row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
mod flavor;
pub mod patterns;
pub mod prober;
mod truth;

pub use catalog::all_apps;
pub use truth::{ExpectedRow, FpType, GroundTruth, Label, TrueClass};

use cafa_sim::{run, InstrumentConfig, Program, RunOutcome, SimConfig, SimError};

/// One evaluated application: its workload program, oracle labels, and
/// the paper's published Table 1 row.
#[derive(Debug)]
pub struct AppSpec {
    /// Application name as it appears in Table 1.
    pub name: &'static str,
    /// The simulator workload (deterministic benign-order timing; the
    /// Table 1 configuration).
    pub program: Program,
    /// The stress variant: harmful patterns race for real, so
    /// violations manifest under some schedules (the §6.2 survey
    /// configuration).
    pub stress_program: Program,
    /// Oracle labels for every planted pattern variable.
    pub truth: GroundTruth,
    /// The paper's numbers for this app.
    pub expected: ExpectedRow,
    /// Expected conventional-definition racy site pairs, where the
    /// paper publishes one (ConnectBot's 1,664 of §4.1).
    pub lowlevel_pairs: Option<usize>,
}

impl AppSpec {
    /// Records a trace with the paper's instrumentation coverage
    /// (framework listener packages only — the configuration Table 1
    /// was produced with).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; the shipped workloads run clean.
    pub fn record(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::paper_packages();
        run(&self.program, &config)
    }

    /// Records with *full* listener coverage (Type I false positives
    /// disappear — the fix §6.3 anticipates).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; the shipped workloads run clean.
    pub fn record_full_coverage(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::full();
        run(&self.program, &config)
    }

    /// Runs without instrumentation (the stock ROM), for Figure 8
    /// overhead baselines.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; the shipped workloads run clean.
    pub fn record_uninstrumented(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::off();
        run(&self.program, &config)
    }

    /// Runs the *stress* variant uninstrumented: harmful patterns race
    /// for real, so use-after-free violations manifest under some
    /// schedules — the §6.2 survey.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; the shipped workloads run clean.
    pub fn run_stress(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::off();
        run(&self.stress_program, &config)
    }

    /// Records the *stress* variant with **full** instrumentation
    /// coverage. Instrumentation never consumes scheduling decisions,
    /// so this trace describes exactly the schedule `run_stress(seed)`
    /// executes — the reference `cafa-replay` synthesizes directed
    /// schedules from.
    ///
    /// Full coverage matters here: the detector deliberately analyzes
    /// paper-coverage traces (whose missing listener records *cause*
    /// the Type I false positives), but schedule synthesis must respect
    /// the platform's real causality — a register/perform edge the
    /// analyzer cannot see still constrains which schedules the
    /// platform can produce, and a directed run that broke it would
    /// "confirm" a race no real execution exhibits.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; the shipped workloads run clean.
    pub fn record_stress(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::full();
        run(&self.stress_program, &config)
    }
}
