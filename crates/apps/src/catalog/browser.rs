//! Browser: the AOSP built-in browser. Trace scenario of §6.1: load the
//! Google homepage, search "cse", open the result, press back.
//!
//! The largest row of Table 1: 35 reports, dominated by class-(c)
//! thread-versus-thread races among network/cache/render workers plus 8
//! class-(b) races only CAFA's relaxed event order exposes.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_965,
    reported: 35,
    a: 0,
    b: 8,
    c: 19,
    fp1: 1,
    fp2: 7,
    fp3: 0,
};

/// The Browser workload as data.
pub fn model() -> AppModel {
    // WebView teardown vs. pending page-load callbacks.
    let mut stmts: Vec<Stmt> = times(Stmt::Inter { known: false }, 8).collect();
    // Worker-thread races: network vs. cache vs. history writers.
    stmts.extend(times(Stmt::Conv, 19));
    // A WebViewClient callback registered in an uninstrumented
    // package.
    stmts.push(Stmt::FpListener {
        package: "com.android.browser.internal".to_owned(),
    });
    // Loading-state flags guarding progress/title updates (Type II).
    stmts.extend(times(Stmt::FpBoolGuard, 7));
    // A correctly-filtered tab-switch guard.
    stmts.push(Stmt::FilteredGuard);
    stmts.extend(shared_plumbing("NetworkDispatcher", 8));
    // The network->cache->parse->layout->paint page-load pipeline.
    stmts.push(Stmt::PageLoadPipeline);
    // Progress/scroll counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 6,
        readers: 14,
    });
    AppModel {
        name: "Browser".to_owned(),
        events: EXPECTED.events,
        compute_units: 1500,
        lowlevel_pairs: None,
        stmts,
    }
}
