//! Browser: the AOSP built-in browser. Trace scenario of §6.1: load the
//! Google homepage, search "cse", open the result, press back.
//!
//! The largest row of Table 1: 35 reports, dominated by class-(c)
//! thread-versus-thread races among network/cache/render workers plus 8
//! class-(b) races only CAFA's relaxed event order exposes.

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The page-load pipeline: a network thread streams chunks to a cache
/// thread through a monitor, the cache thread posts a parse event,
/// parsing posts layout, layout posts a short chain of paint events.
/// All ordered — fork/notify/send edges end to end — so the detector
/// must stay silent about a pipeline that touches shared state at
/// every stage.
///
/// Plants 5 events (parse, layout, 3 paints).
fn page_load_pipeline(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let chunk_buf = p.ptr_var_alloc();
    let dom = p.ptr_var_alloc();
    let m = p.monitor();

    // paint chain (declared first so layout can reference it).
    let frame_no = p.scalar_var(0);
    let paint_budget = p.counter(2);
    let paint = {
        let me = p.next_handler_id();
        p.handler(
            "browser:paint",
            Body::from_actions(vec![
                Action::ReadScalar(frame_no),
                Action::Compute(30),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 16,
                    budget: paint_budget,
                },
            ]),
        )
    };
    let layout = p.handler(
        "browser:layout",
        Body::from_actions(vec![
            Action::UsePtr {
                var: dom,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::Compute(40),
            Action::Post {
                looper,
                handler: paint,
                delay_ms: 16,
            },
        ]),
    );
    let parse = p.handler(
        "browser:parse",
        Body::from_actions(vec![
            Action::UsePtr {
                var: chunk_buf,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::AllocPtr(dom),
            Action::Post {
                looper,
                handler: layout,
                delay_ms: 0,
            },
        ]),
    );
    // Cache thread: waits for the network thread's chunk, then posts
    // parse to the main looper.
    let cache = p.thread_spec(
        proc,
        "browser:cache",
        Body::from_actions(vec![
            Action::Lock(m),
            Action::Wait(m),
            Action::Unlock(m),
            Action::UsePtr {
                var: chunk_buf,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::Post {
                looper,
                handler: parse,
                delay_ms: 0,
            },
        ]),
    );
    // Network thread: forks the cache consumer, fills the buffer,
    // signals, joins.
    p.thread(
        proc,
        "browser:net",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Fork(cache),
            // Virtual time only advances when every entity is blocked,
            // so this sleep guarantees the cache thread reached its
            // `Wait` before the chunk is published — no lost wake-up.
            Action::Sleep(1),
            Action::AllocPtr(chunk_buf),
            Action::Compute(60),
            Action::Lock(m),
            Action::Notify(m),
            Action::Unlock(m),
            Action::JoinLast,
        ]),
    );
    pats.add_events(5);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_965,
    reported: 35,
    a: 0,
    b: 8,
    c: 19,
    fp1: 1,
    fp2: 7,
    fp3: 0,
};

/// Builds the Browser workload.
pub fn build() -> AppSpec {
    super::build_app("Browser", EXPECTED, None, 1500, |pats| {
        // WebView teardown vs. pending page-load callbacks.
        for _ in 0..8 {
            pats.inter(false);
        }
        // Worker-thread races: network vs. cache vs. history writers.
        for _ in 0..19 {
            pats.conv();
        }
        // A WebViewClient callback registered in an uninstrumented
        // package.
        pats.fp_listener("com.android.browser.internal");
        // Loading-state flags guarding progress/title updates (Type II).
        for _ in 0..7 {
            pats.fp_bool_guard();
        }
        // A correctly-filtered tab-switch guard.
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("NetworkDispatcher", 8);
        // The network->cache->parse->layout->paint page-load pipeline.
        page_load_pipeline(pats);
        // Progress/scroll counters.
        pats.scalar_burst(6, 14);
    })
}
