//! ZXing: barcode scanner (tested version 4.5.1). Trace scenario of
//! §6.1: scan a barcode, pause to the home screen, return and scan
//! again.
//!
//! §6.2 singles ZXing out for pause-time cleanup races: "any event that
//! is scheduled after the pause event ... would crash the application
//! if it tries to use the freed pointers."

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::shared_plumbing;

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 4_554,
    reported: 5,
    a: 0,
    b: 2,
    c: 0,
    fp1: 1,
    fp2: 1,
    fp3: 1,
};

/// The ZXing workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![
        // Camera preview teardown vs. decode-result delivery.
        Stmt::Inter { known: false },
        Stmt::Inter { known: false },
        // The decode listener lives in ZXing's own package, outside the
        // instrumented framework set.
        Stmt::FpListener {
            package: "com.google.zxing.client.android".to_owned(),
        },
        // hasSurface-flag-guarded preview use (Type II).
        Stmt::FpBoolGuard,
        // The decode handler aliases the camera manager (Type III).
        Stmt::FpAlias,
        // A correctly-filtered viewfinder guard.
        Stmt::FilteredGuard,
    ];
    stmts.extend(shared_plumbing("CameraService", 5));
    // Preview frames + fork/join decode + result publication.
    stmts.push(Stmt::ScanPipeline { frames: 8 });
    // Autofocus / preview-frame counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 4,
        readers: 12,
    });
    AppModel {
        name: "ZXing".to_owned(),
        events: EXPECTED.events,
        compute_units: 550,
        lowlevel_pairs: None,
        stmts,
    }
}
