//! ZXing: barcode scanner (tested version 4.5.1). Trace scenario of
//! §6.1: scan a barcode, pause to the home screen, return and scan
//! again.
//!
//! §6.2 singles ZXing out for pause-time cleanup races: "any event that
//! is scheduled after the pause event ... would crash the application
//! if it tries to use the freed pointers."

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The scan pipeline: preview frames arrive as a chain; the capture
/// frame forks a decode thread whose result is joined and published by
/// a result event that dereferences the decoded object.
///
/// Plants `frames + 2` events.
fn scan_pipeline(pats: &mut Patterns<'_>, frames: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let luma = p.scalar_var(0);
    let result = p.ptr_var();

    let budget = p.counter(frames - 1);
    let preview = {
        let me = p.next_handler_id();
        p.handler(
            "zxing:onPreviewFrame",
            Body::from_actions(vec![
                Action::ReadScalar(luma),
                Action::Compute(25),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 33,
                    budget,
                },
            ]),
        )
    };
    let publish = p.handler(
        "zxing:onDecodeResult",
        Body::from_actions(vec![Action::UsePtr {
            var: result,
            kind: DerefKind::Invoke,
            catch_npe: false,
        }]),
    );
    let decoder = p.thread_spec(
        proc,
        "zxing:decodeThread",
        Body::from_actions(vec![Action::Compute(120), Action::AllocPtr(result)]),
    );
    let capture = p.handler(
        "zxing:onCaptureFrame",
        Body::from_actions(vec![
            Action::Fork(decoder),
            Action::JoinLast,
            Action::Post {
                looper,
                handler: publish,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "zxing:frameSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper,
                handler: preview,
                delay_ms: 0,
            },
        ]),
    );
    p.gesture(t + 80, looper, capture);
    pats.add_events(frames as usize + 2);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 4_554,
    reported: 5,
    a: 0,
    b: 2,
    c: 0,
    fp1: 1,
    fp2: 1,
    fp3: 1,
};

/// Builds the ZXing workload.
pub fn build() -> AppSpec {
    super::build_app("ZXing", EXPECTED, None, 550, |pats| {
        // Camera preview teardown vs. decode-result delivery.
        pats.inter(false);
        pats.inter(false);
        // The decode listener lives in ZXing's own package, outside the
        // instrumented framework set.
        pats.fp_listener("com.google.zxing.client.android");
        // hasSurface-flag-guarded preview use (Type II).
        pats.fp_bool_guard();
        // The decode handler aliases the camera manager (Type III).
        pats.fp_alias();
        // A correctly-filtered viewfinder guard.
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("CameraService", 5);
        // Preview frames + fork/join decode + result publication.
        scan_pipeline(pats, 8);
        // Autofocus / preview-frame counters.
        pats.scalar_burst(4, 12);
    })
}
