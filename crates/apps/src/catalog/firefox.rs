//! Firefox for Android (tested version 25). Same §6.1 scenario as
//! Browser: load Google, search "cse", open the result, press back.
//!
//! Gecko's many helper threads give 6 class-(b) and 10 class-(c) true
//! races; its listener-heavy chrome layer, largely outside the
//! instrumented framework packages, yields the largest Type I count.

use cafa_sim::{Action, Body, HandlerId};

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The compositor bounce: frames ping-pong between the UI looper and a
/// dedicated compositor looper (Gecko's architecture): the UI submits a
/// layer tree, the compositor composites it and posts the frame-done
/// callback back. Each hop is a send, so every pair of hops is ordered
/// across the two atomicity domains.
///
/// Plants `2 × rounds` events.
fn compositor_bounce(pats: &mut Patterns<'_>, rounds: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let ui = pats.looper();
    let p = &mut *pats.p;
    let compositor = p.looper(proc);
    let layer_epoch = p.scalar_var(0);

    // submit (ui) -> composite (compositor) -> submit ... bounded by a
    // shared budget; handler ids are interleaved so each can name the
    // other via a forward reference.
    let budget = p.counter(2 * rounds - 1);
    let submit_id = p.next_handler_id();
    let composite_id = HandlerId::from_index(submit_id.index() + 1);
    let _submit = p.handler(
        "firefox:submitLayers",
        Body::from_actions(vec![
            Action::WriteScalar(layer_epoch, 1),
            Action::Compute(45),
            Action::PostChain {
                looper: compositor,
                handler: composite_id,
                delay_ms: 3,
                budget,
            },
        ]),
    );
    let _composite = p.handler(
        "firefox:composite",
        Body::from_actions(vec![
            Action::ReadScalar(layer_epoch),
            Action::Compute(60),
            Action::PostChain {
                looper: ui,
                handler: submit_id,
                delay_ms: 3,
                budget,
            },
        ]),
    );
    p.thread(
        proc,
        "firefox:vsyncSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper: ui,
                handler: submit_id,
                delay_ms: 0,
            },
        ]),
    );
    pats.add_events(2 * rounds as usize);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 5_467,
    reported: 25,
    a: 0,
    b: 6,
    c: 10,
    fp1: 4,
    fp2: 5,
    fp3: 0,
};

/// Builds the Firefox workload.
pub fn build() -> AppSpec {
    super::build_app("Firefox", EXPECTED, None, 1800, |pats| {
        for _ in 0..6 {
            pats.inter(false);
        }
        for _ in 0..10 {
            pats.conv();
        }
        // Gecko event listeners outside the instrumented set.
        for _ in 0..4 {
            pats.fp_listener("org.mozilla.gecko");
        }
        for _ in 0..5 {
            pats.fp_bool_guard();
        }
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("GeckoCompositor", 7);
        // Frames ping-pong between the UI and compositor loopers.
        compositor_bounce(pats, 6);
        // Compositor / telemetry counters.
        pats.scalar_burst(5, 10);
    })
}
