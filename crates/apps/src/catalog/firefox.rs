//! Firefox for Android (tested version 25). Same §6.1 scenario as
//! Browser: load Google, search "cse", open the result, press back.
//!
//! Gecko's many helper threads give 6 class-(b) and 10 class-(c) true
//! races; its listener-heavy chrome layer, largely outside the
//! instrumented framework packages, yields the largest Type I count.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 5_467,
    reported: 25,
    a: 0,
    b: 6,
    c: 10,
    fp1: 4,
    fp2: 5,
    fp3: 0,
};

/// The Firefox workload as data.
pub fn model() -> AppModel {
    let mut stmts: Vec<Stmt> = times(Stmt::Inter { known: false }, 6).collect();
    stmts.extend(times(Stmt::Conv, 10));
    // Gecko event listeners outside the instrumented set.
    stmts.extend(times(
        Stmt::FpListener {
            package: "org.mozilla.gecko".to_owned(),
        },
        4,
    ));
    stmts.extend(times(Stmt::FpBoolGuard, 5));
    stmts.push(Stmt::FilteredGuard);
    stmts.extend(shared_plumbing("GeckoCompositor", 7));
    // Frames ping-pong between the UI and compositor loopers.
    stmts.push(Stmt::CompositorBounce { rounds: 6 });
    // Compositor / telemetry counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 5,
        readers: 10,
    });
    AppModel {
        name: "Firefox".to_owned(),
        events: EXPECTED.events,
        compute_units: 1800,
        lowlevel_pairs: None,
        stmts,
    }
}
