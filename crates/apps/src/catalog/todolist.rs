//! ToDoList: a to-do list widget (tested version 1.1.7). Trace scenario
//! of §6.1: add two notes to the widget, delete them.
//!
//! Table 1's biggest intra-thread count: 8 class-(a) races. §6.2 shows
//! the app catching the resulting NullPointerException with an empty
//! handler — "the latest user input would not be written to the
//! database and the data would be lost", so the races stay harmful even
//! though they never crash.

use cafa_sim::{Action, Body};

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The note-save path: each save gesture hands the note to a db writer
/// thread through a monitor and waits for the commit acknowledgement
/// before posting the widget refresh. Exercises looper-blocking waits
/// (the anti-pattern Android docs warn about, but common in small
/// apps like this one).
///
/// Plants 2 events per save.
fn note_save_path(pats: &mut Patterns<'_>, saves: usize) {
    for _ in 0..saves {
        let t = pats.next_slot();
        let proc = pats.proc();
        let looper = pats.looper();
        let p = &mut *pats.p;
        let note = p.ptr_var_alloc();
        let m = p.monitor();
        let writer = p.thread_spec(
            proc,
            "todolist:dbWriter",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::UsePtr {
                    var: note,
                    kind: cafa_trace::DerefKind::Field,
                    catch_npe: false,
                },
                Action::Compute(70),
                Action::Notify(m),
                Action::Unlock(m),
            ]),
        );
        let refresh = p.handler("todolist:onWidgetRefresh", Body::new().compute(10));
        let save = p.handler(
            "todolist:onSaveNote",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::Fork(writer),
                Action::Wait(m),
                Action::Unlock(m),
                Action::JoinLast,
                Action::Post {
                    looper,
                    handler: refresh,
                    delay_ms: 0,
                },
            ]),
        );
        p.gesture(t, looper, save);
        pats.add_events(2);
    }
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 7_122,
    reported: 9,
    a: 8,
    b: 0,
    c: 0,
    fp1: 0,
    fp2: 1,
    fp3: 0,
};

/// Builds the ToDoList workload.
pub fn build() -> AppSpec {
    super::build_app("ToDoList", EXPECTED, None, 260, |pats| {
        // Eight db/widget teardown hazards; every one swallows the NPE
        // (`catch (NullPointerException npe) { /* do nothing */ }`).
        for _ in 0..8 {
            pats.intra(false, true);
        }
        // A widget-enabled flag guard (Type II).
        pats.fp_bool_guard();
        // A correctly-pruned re-allocation on refresh.
        pats.filtered_alloc();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("WidgetUpdateService", 3);
        // Two note saves through the db writer handshake ("adding two
        // notes to the widget", §6.1).
        note_save_path(pats, 2);
        // Widget refresh ticks.
        pats.scalar_burst(2, 6);
    })
}
