//! ToDoList: a to-do list widget (tested version 1.1.7). Trace scenario
//! of §6.1: add two notes to the widget, delete them.
//!
//! Table 1's biggest intra-thread count: 8 class-(a) races. §6.2 shows
//! the app catching the resulting NullPointerException with an empty
//! handler — "the latest user input would not be written to the
//! database and the data would be lost", so the races stay harmful even
//! though they never crash.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 7_122,
    reported: 9,
    a: 8,
    b: 0,
    c: 0,
    fp1: 0,
    fp2: 1,
    fp3: 0,
};

/// The ToDoList workload as data.
pub fn model() -> AppModel {
    // Eight db/widget teardown hazards; every one swallows the NPE
    // (`catch (NullPointerException npe) { /* do nothing */ }`).
    let mut stmts: Vec<Stmt> = times(
        Stmt::Intra {
            known: false,
            caught: true,
        },
        8,
    )
    .collect();
    // A widget-enabled flag guard (Type II).
    stmts.push(Stmt::FpBoolGuard);
    // A correctly-pruned re-allocation on refresh.
    stmts.push(Stmt::FilteredAlloc);
    stmts.extend(shared_plumbing("WidgetUpdateService", 3));
    // Two note saves through the db writer handshake ("adding two
    // notes to the widget", §6.1).
    stmts.push(Stmt::NoteSavePath { saves: 2 });
    // Widget refresh ticks.
    stmts.push(Stmt::ScalarBurst {
        writers: 2,
        readers: 6,
    });
    AppModel {
        name: "ToDoList".to_owned(),
        events: EXPECTED.events,
        compute_units: 260,
        lowlevel_pairs: None,
        stmts,
    }
}
