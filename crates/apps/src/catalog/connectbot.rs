//! ConnectBot: an SSH client (tested version 1.7, which contains the
//! known bug r90632bd). Trace scenario of §6.1: click a host, enter the
//! password, log in.
//!
//! Table 1 row: 3 reported = 2 inter-thread true races (one previously
//! known) + 1 Type I false positive. ConnectBot is also the §4.1
//! exhibit: its 30-second trace contains **1,664** conventional-
//! definition races, planted here as Figure 2's `onPause`/`onLayout`
//! read-write race plus scalar bursts between terminal-relayout,
//! keyboard, and transport events.

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The SSH transport relay: a network thread receives ciphertext,
/// decrypts under the session lock, and posts a chain of terminal
/// update events; each keystroke is front-posted for latency. All
/// ordered — the detector must not confuse the relay with the planted
/// teardown races.
///
/// Plants `updates + keys` events.
fn ssh_relay(pats: &mut Patterns<'_>, updates: u32, keys: usize) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let session = p.ptr_var_alloc();
    let screen = p.scalar_var(0);
    let m = p.monitor();

    // Terminal update chain, driven by the relay thread's first post.
    let budget = p.counter(updates - 1);
    let update = {
        let me = p.next_handler_id();
        p.handler(
            "connectbot:onTermUpdate",
            Body::from_actions(vec![
                Action::ReadScalar(screen),
                Action::Compute(15),
                Action::WriteScalar(screen, 1),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 4,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "connectbot:relay",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Lock(m),
            Action::UsePtr {
                var: session,
                kind: DerefKind::Invoke,
                catch_npe: false,
            },
            Action::Compute(40),
            Action::Unlock(m),
            Action::Post {
                looper,
                handler: update,
                delay_ms: 0,
            },
        ]),
    );

    // Keystrokes: a dispatch gesture front-posts each key event. They
    // touch the input buffer, not the screen var (the update chain and
    // the key events are concurrent, and this is the low-level-race
    // calibrated app — ConnectBot's 1,664 must stay exact).
    let input_buf = p.scalar_var(0);
    let mut key_actions = Vec::with_capacity(keys);
    for k in 0..keys {
        let key = p.handler(
            &format!("connectbot:onKey{k}"),
            Body::new().write(input_buf, k as i64),
        );
        key_actions.push(Action::PostFront {
            looper,
            handler: key,
        });
    }
    let dispatch = p.handler("connectbot:dispatchKeys", Body::from_actions(key_actions));
    p.gesture(t + 100, looper, dispatch);
    pats.add_events(updates as usize + keys + 1);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_058,
    reported: 3,
    a: 0,
    b: 2,
    c: 0,
    fp1: 1,
    fp2: 0,
    fp3: 0,
};

/// Conventional-definition racy site pairs in the trace (§4.1).
pub const LOWLEVEL_PAIRS: usize = 1_664;

/// Builds the ConnectBot workload.
pub fn build() -> AppSpec {
    super::build_app("ConnectBot", EXPECTED, Some(LOWLEVEL_PAIRS), 880, |pats| {
        // The known bug (r90632bd): the relay thread tears down the
        // bridge while a pending relayout event still uses it.
        pats.inter(true);
        // A second, unknown hazard of the same shape in the prompt
        // helper.
        pats.inter(false);
        // A host-status listener in ConnectBot's own (uninstrumented)
        // package orders the real execution; the analyzer cannot see it.
        pats.fp_listener("org.connectbot.service");
        // Figure 2: onPause writes resizeAllowed, onLayout reads it —
        // a low-level race but not a use-free race.
        pats.fig2_scalar_rw();
        // Scalar bursts: terminal redraw/scroll/bell counters touched by
        // logically concurrent events. Together with the patterns above
        // these yield exactly 1,664 racy site pairs:
        //   4×(8w,46r) = 4×396 = 1584
        //   1×(8w,5r)  = 68
        //   1×(2w,1r)  = 3
        //   1×(1w,1r)  = 1
        //   fig2 = 1, 2×inter = 6, listener FP = 1   → 1,664 total.
        for _ in 0..4 {
            pats.scalar_burst(8, 46);
        }
        pats.scalar_burst(8, 5);
        pats.scalar_burst(2, 1);
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("org.connectbot.TerminalBridge", 4);
        // The SSH transport relay and keystroke dispatch.
        ssh_relay(pats, 8, 3);
        pats.scalar_burst(1, 1);
    })
}
