//! ConnectBot: an SSH client (tested version 1.7, which contains the
//! known bug r90632bd). Trace scenario of §6.1: click a host, enter the
//! password, log in.
//!
//! Table 1 row: 3 reported = 2 inter-thread true races (one previously
//! known) + 1 Type I false positive. ConnectBot is also the §4.1
//! exhibit: its 30-second trace contains **1,664** conventional-
//! definition races, planted here as Figure 2's `onPause`/`onLayout`
//! read-write race plus scalar bursts between terminal-relayout,
//! keyboard, and transport events.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_058,
    reported: 3,
    a: 0,
    b: 2,
    c: 0,
    fp1: 1,
    fp2: 0,
    fp3: 0,
};

/// Conventional-definition racy site pairs in the trace (§4.1).
pub const LOWLEVEL_PAIRS: usize = 1_664;

/// The ConnectBot workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![
        // The known bug (r90632bd): the relay thread tears down the
        // bridge while a pending relayout event still uses it.
        Stmt::Inter { known: true },
        // A second, unknown hazard of the same shape in the prompt
        // helper.
        Stmt::Inter { known: false },
        // A host-status listener in ConnectBot's own (uninstrumented)
        // package orders the real execution; the analyzer cannot see it.
        Stmt::FpListener {
            package: "org.connectbot.service".to_owned(),
        },
        // Figure 2: onPause writes resizeAllowed, onLayout reads it —
        // a low-level race but not a use-free race.
        Stmt::Fig2ScalarRw,
    ];
    // Scalar bursts: terminal redraw/scroll/bell counters touched by
    // logically concurrent events. Together with the patterns above
    // these yield exactly 1,664 racy site pairs:
    //   4×(8w,46r) = 4×396 = 1584
    //   1×(8w,5r)  = 68
    //   1×(2w,1r)  = 3
    //   1×(1w,1r)  = 1
    //   fig2 = 1, 2×inter = 6, listener FP = 1   → 1,664 total.
    stmts.extend(times(
        Stmt::ScalarBurst {
            writers: 8,
            readers: 46,
        },
        4,
    ));
    stmts.push(Stmt::ScalarBurst {
        writers: 8,
        readers: 5,
    });
    stmts.push(Stmt::ScalarBurst {
        writers: 2,
        readers: 1,
    });
    stmts.extend(shared_plumbing("org.connectbot.TerminalBridge", 4));
    // The SSH transport relay and keystroke dispatch.
    stmts.push(Stmt::SshRelay {
        updates: 8,
        keys: 3,
    });
    stmts.push(Stmt::ScalarBurst {
        writers: 1,
        readers: 1,
    });
    AppModel {
        name: "ConnectBot".to_owned(),
        events: EXPECTED.events,
        compute_units: 880,
        lowlevel_pairs: Some(LOWLEVEL_PAIRS),
        stmts,
    }
}
