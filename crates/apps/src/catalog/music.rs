//! Music: the AOSP built-in audio player. Trace scenario of §6.1: play
//! an MP3 for a few seconds, pause to the home screen, return and
//! resume.
//!
//! One of the paper's two slowest offline analyses ("about 1 day, due
//! to the excessive amount of events"); here the 6,684 events analyze
//! in milliseconds, which the `analysis_scaling` bench quantifies.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 6_684,
    reported: 5,
    a: 2,
    b: 0,
    c: 0,
    fp1: 0,
    fp2: 2,
    fp3: 1,
};

/// The Music workload as data.
pub fn model() -> AppModel {
    // Service-teardown races against queued album-art and seekbar
    // events.
    let mut stmts: Vec<Stmt> = times(
        Stmt::Intra {
            known: false,
            caught: false,
        },
        2,
    )
    .collect();
    // isPlaying-flag guards (Type II).
    stmts.extend(times(Stmt::FpBoolGuard, 2));
    // Aliased media-session handle (Type III).
    stmts.push(Stmt::FpAlias);
    stmts.push(Stmt::FilteredGuard);
    stmts.extend(shared_plumbing("AudioFlinger", 4));
    // Decoder/audio-out producer-consumer with seekbar updates.
    stmts.push(Stmt::PlaybackEngine);
    // Elapsed-time ticks.
    stmts.push(Stmt::ScalarBurst {
        writers: 3,
        readers: 6,
    });
    AppModel {
        name: "Music".to_owned(),
        events: EXPECTED.events,
        compute_units: 330,
        lowlevel_pairs: None,
        stmts,
    }
}
