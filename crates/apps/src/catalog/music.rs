//! Music: the AOSP built-in audio player. Trace scenario of §6.1: play
//! an MP3 for a few seconds, pause to the home screen, return and
//! resume.
//!
//! One of the paper's two slowest offline analyses ("about 1 day, due
//! to the excessive amount of events"); here the 6,684 events analyze
//! in milliseconds, which the `analysis_scaling` bench quantifies.

use cafa_sim::{Action, Body};

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The playback engine: a producer thread decodes audio frames into a
/// shared buffer, a consumer thread drains it, both hand off through a
/// monitor; the consumer posts a seekbar update per drained batch.
///
/// Plants 2 events.
fn playback_engine(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let frames = p.scalar_var(0);
    let m = p.monitor();

    let tick1 = p.handler("music:onSeekTick", Body::new().read(frames));
    let tick2 = p.handler("music:onSeekDone", Body::new().read(frames));
    let consumer = p.thread_spec(
        proc,
        "music:audioOut",
        Body::from_actions(vec![
            Action::Lock(m),
            Action::Wait(m),
            Action::ReadScalar(frames),
            Action::Unlock(m),
            Action::Post {
                looper,
                handler: tick1,
                delay_ms: 0,
            },
            Action::Post {
                looper,
                handler: tick2,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "music:decoder",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Fork(consumer),
            // Quiesce: the consumer is guaranteed to be waiting before
            // the decoder publishes (see browser.rs for the idiom).
            Action::Sleep(1),
            Action::Lock(m),
            Action::WriteScalar(frames, 1024),
            Action::Compute(60),
            Action::Notify(m),
            Action::Unlock(m),
            Action::JoinLast,
        ]),
    );
    pats.add_events(2);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 6_684,
    reported: 5,
    a: 2,
    b: 0,
    c: 0,
    fp1: 0,
    fp2: 2,
    fp3: 1,
};

/// Builds the Music workload.
pub fn build() -> AppSpec {
    super::build_app("Music", EXPECTED, None, 330, |pats| {
        // Service-teardown races against queued album-art and seekbar
        // events.
        pats.intra(false, false);
        pats.intra(false, false);
        // isPlaying-flag guards (Type II).
        pats.fp_bool_guard();
        pats.fp_bool_guard();
        // Aliased media-session handle (Type III).
        pats.fp_alias();
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("AudioFlinger", 4);
        // Decoder/audio-out producer-consumer with seekbar updates.
        playback_engine(pats);
        // Elapsed-time ticks.
        pats.scalar_burst(3, 6);
    })
}
