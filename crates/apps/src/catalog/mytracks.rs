//! MyTracks: Google's GPS track recorder (tested version 1.1.7, which
//! contains the Figure 1 bug). Trace scenario of §6.1: record a short
//! track, pause by switching away, switch back.
//!
//! Table 1 row: 8 reported = 1 intra-thread (the known Figure 1
//! use-after-free of `providerUtils`) + 3 inter-thread + 4 Type II
//! false positives (§6.2 shows the `onServiceConnected` try/finally
//! hack whose flag-style guards the heuristics cannot verify).

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 6_628,
    reported: 8,
    a: 1,
    b: 3,
    c: 0,
    fp1: 0,
    fp2: 4,
    fp3: 0,
};

/// The MyTracks workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![
        // The known bug: onResume binds TrackRecordingService over
        // Binder; the service posts onServiceConnected (which uses
        // providerUtils) racing with the user's onDestroy free.
        Stmt::Fig1Binder {
            service: "TrackRecordingService".to_owned(),
        },
    ];
    // Recording-state teardown races between the service connection
    // thread and track updates.
    stmts.extend(times(Stmt::Inter { known: false }, 3));
    // startRecordingNewTrack guards pointer uses with boolean
    // recording-state flags: safe, but reported (Type II).
    stmts.extend(times(Stmt::FpBoolGuard, 4));
    // Commutative patterns the heuristics prune correctly.
    stmts.push(Stmt::FilteredAlloc);
    stmts.push(Stmt::FilteredGuard);
    stmts.extend(shared_plumbing("GoogleLocationService", 6));
    // The GPS fix stream with lock-protected distance accounting.
    stmts.push(Stmt::GpsFixPipeline { fixes: 10 });
    // GPS fix / map redraw counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 6,
        readers: 20,
    });
    AppModel {
        name: "MyTracks".to_owned(),
        events: EXPECTED.events,
        compute_units: 1350,
        lowlevel_pairs: None,
        stmts,
    }
}
