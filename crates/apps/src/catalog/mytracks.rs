//! MyTracks: Google's GPS track recorder (tested version 1.1.7, which
//! contains the Figure 1 bug). Trace scenario of §6.1: record a short
//! track, pause by switching away, switch back.
//!
//! Table 1 row: 8 reported = 1 intra-thread (the known Figure 1
//! use-after-free of `providerUtils`) + 3 inter-thread + 4 Type II
//! false positives (§6.2 shows the `onServiceConnected` try/finally
//! hack whose flag-style guards the heuristics cannot verify).

use cafa_sim::{Action, Body};

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The GPS fix pipeline: the location service delivers a sequence of
/// fixes as events; each fix updates the track distance under the
/// recording lock, which the stats thread also takes to snapshot the
/// distance. Lock-protected on both sides, so the lockset check (not a
/// happens-before edge — CAFA derives none from locks) is what keeps
/// the detector quiet.
///
/// Plants `fixes` events.
fn gps_fix_pipeline(pats: &mut Patterns<'_>, fixes: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let distance = p.scalar_var(0);
    let m = p.monitor();

    let budget = p.counter(fixes - 1);
    let on_fix = {
        let me = p.next_handler_id();
        p.handler(
            "mytracks:onLocationChanged",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::ReadScalar(distance),
                Action::WriteScalar(distance, 1),
                Action::Unlock(m),
                Action::Compute(20),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 5,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "mytracks:gpsSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper,
                handler: on_fix,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "mytracks:statsThread",
        Body::from_actions(vec![
            Action::Sleep(t + 60),
            Action::Lock(m),
            Action::ReadScalar(distance),
            Action::Unlock(m),
        ]),
    );
    pats.add_events(fixes as usize);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 6_628,
    reported: 8,
    a: 1,
    b: 3,
    c: 0,
    fp1: 0,
    fp2: 4,
    fp3: 0,
};

/// Builds the MyTracks workload.
pub fn build() -> AppSpec {
    super::build_app("MyTracks", EXPECTED, None, 1350, |pats| {
        // The known bug: onResume binds TrackRecordingService over
        // Binder; the service posts onServiceConnected (which uses
        // providerUtils) racing with the user's onDestroy free.
        pats.fig1_binder("TrackRecordingService");
        // Recording-state teardown races between the service connection
        // thread and track updates.
        for _ in 0..3 {
            pats.inter(false);
        }
        // startRecordingNewTrack guards pointer uses with boolean
        // recording-state flags: safe, but reported (Type II).
        for _ in 0..4 {
            pats.fp_bool_guard();
        }
        // Commutative patterns the heuristics prune correctly.
        pats.filtered_alloc();
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("GoogleLocationService", 6);
        // The GPS fix stream with lock-protected distance accounting.
        gps_fix_pipeline(pats, 10);
        // GPS fix / map redraw counters.
        pats.scalar_burst(6, 20);
    })
}
