//! FBReader: an e-book reader (tested version 1.9.6.1). Trace scenario
//! of §6.1: read the tutorial first-to-last page, rotate the phone,
//! jump back to the first page.
//!
//! The rotation restart makes this the most varied row: one of each
//! true-race class plus both listener- and flag-style false positives.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_528,
    reported: 9,
    a: 1,
    b: 3,
    c: 1,
    fp1: 2,
    fp2: 2,
    fp3: 0,
};

/// The FBReader workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![
        // Rotation: the old activity's pending page-turn event races
        // with the teardown free.
        Stmt::Intra {
            known: false,
            caught: false,
        },
    ];
    stmts.extend(times(Stmt::Inter { known: false }, 3));
    stmts.push(Stmt::Conv);
    stmts.extend(times(
        Stmt::FpListener {
            package: "org.geometerplus.fbreader".to_owned(),
        },
        2,
    ));
    stmts.extend(times(Stmt::FpBoolGuard, 2));
    stmts.push(Stmt::FilteredAlloc);
    stmts.extend(shared_plumbing("BookStorageService", 5));
    // Page turns with fork/join layout prefetch ("read its tutorial
    // from the first page to the last page", §6.1).
    stmts.push(Stmt::PaginationPrefetch { turns: 6 });
    // Pagination counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 3,
        readers: 9,
    });
    AppModel {
        name: "FBReader".to_owned(),
        events: EXPECTED.events,
        compute_units: 650,
        lowlevel_pairs: None,
        stmts,
    }
}
