//! FBReader: an e-book reader (tested version 1.9.6.1). Trace scenario
//! of §6.1: read the tutorial first-to-last page, rotate the phone,
//! jump back to the first page.
//!
//! The rotation restart makes this the most varied row: one of each
//! true-race class plus both listener- and flag-style false positives.

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// Page-turn prefetch: every turn gesture displays the prefetched page
/// and forks a worker to lay out the next one, joined by the *next*
/// turn... modelled as turn events that fork-join their own prefetch
/// worker before displaying.
///
/// Plants `turns` events.
fn pagination_prefetch(pats: &mut Patterns<'_>, turns: usize) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let page = p.ptr_var_alloc();

    for k in 0..turns {
        let worker = p.thread_spec(
            proc,
            &format!("fbreader:layout{k}"),
            Body::from_actions(vec![Action::Compute(65), Action::AllocPtr(page)]),
        );
        let turn = p.handler(
            &format!("fbreader:onPageTurn{k}"),
            Body::from_actions(vec![
                Action::UsePtr {
                    var: page,
                    kind: DerefKind::Field,
                    catch_npe: false,
                },
                Action::Fork(worker),
                Action::JoinLast,
            ]),
        );
        // Sequential gestures: the external-input rule orders the turns,
        // and each turn's join orders its worker's allocation before the
        // next turn's use.
        p.gesture(t + 20 * k as u64, looper, turn);
    }
    pats.add_events(turns);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 3_528,
    reported: 9,
    a: 1,
    b: 3,
    c: 1,
    fp1: 2,
    fp2: 2,
    fp3: 0,
};

/// Builds the FBReader workload.
pub fn build() -> AppSpec {
    super::build_app("FBReader", EXPECTED, None, 650, |pats| {
        // Rotation: the old activity's pending page-turn event races
        // with the teardown free.
        pats.intra(false, false);
        for _ in 0..3 {
            pats.inter(false);
        }
        pats.conv();
        for _ in 0..2 {
            pats.fp_listener("org.geometerplus.fbreader");
        }
        for _ in 0..2 {
            pats.fp_bool_guard();
        }
        pats.filtered_alloc();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("BookStorageService", 5);
        // Page turns with fork/join layout prefetch ("read its tutorial
        // from the first page to the last page", §6.1).
        pagination_prefetch(pats, 6);
        // Pagination counters.
        pats.scalar_burst(3, 9);
    })
}
