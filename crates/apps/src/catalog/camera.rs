//! Camera: the AOSP built-in camera. Trace scenario of §6.1: take a
//! picture, switch to the home screen, return and shoot again.
//!
//! The highest event count of Table 1 (7,287) — preview frames arrive
//! relentlessly — with two Type III reports from aliased preview-buffer
//! handles.

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 7_287,
    reported: 9,
    a: 1,
    b: 1,
    c: 0,
    fp1: 0,
    fp2: 5,
    fp3: 2,
};

/// The Camera workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![
        // Pause-time release of the camera device vs. a queued
        // shutter-done event.
        Stmt::Intra {
            known: false,
            caught: false,
        },
        // The storage-updater thread vs. the review overlay.
        Stmt::Inter { known: false },
    ];
    // cameraOpened/previewing flags guard device handles (Type II).
    stmts.extend(times(Stmt::FpBoolGuard, 5));
    // Preview-callback buffers aliased across rotation (Type III).
    stmts.push(Stmt::FpAlias);
    stmts.push(Stmt::FpAlias);
    stmts.push(Stmt::FilteredAlloc);
    stmts.extend(shared_plumbing("MediaServer", 9));
    // Shutter: Binder trigger, front-posted feedback, storage join.
    stmts.push(Stmt::ShutterSequence);
    // Preview-frame counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 4,
        readers: 10,
    });
    AppModel {
        name: "Camera".to_owned(),
        events: EXPECTED.events,
        compute_units: 400,
        lowlevel_pairs: None,
        stmts,
    }
}
