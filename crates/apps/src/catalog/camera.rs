//! Camera: the AOSP built-in camera. Trace scenario of §6.1: take a
//! picture, switch to the home screen, return and shoot again.
//!
//! The highest event count of Table 1 (7,287) — preview frames arrive
//! relentlessly — with two Type III reports from aliased preview-buffer
//! handles.

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The shutter sequence: the capture gesture calls the media server
/// over Binder, front-posts a shutter-feedback event (latency
/// critical), forks a storage writer that persists the JPEG and is
/// joined before the review event shows the result.
///
/// Plants 3 events (capture, shutter feedback, review).
fn shutter_sequence(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let jpeg = p.ptr_var_alloc();
    let svcp = p.process();
    let media = p.service(svcp, "media.camera");
    let trigger = p.method(media, "takePicture", Body::new().compute(50));

    let shutter = p.handler("camera:onShutter", Body::new().compute(10));
    let review = p.handler(
        "camera:onReview",
        Body::from_actions(vec![Action::UsePtr {
            var: jpeg,
            kind: DerefKind::Field,
            catch_npe: false,
        }]),
    );
    let writer = p.thread_spec(
        proc,
        "camera:storageWriter",
        Body::from_actions(vec![Action::AllocPtr(jpeg), Action::Compute(80)]),
    );
    let capture = p.handler(
        "camera:onCapture",
        Body::from_actions(vec![
            Action::Call {
                service: media,
                method: trigger,
            },
            Action::PostFront {
                looper,
                handler: shutter,
            },
            Action::Fork(writer),
            Action::JoinLast,
            Action::Post {
                looper,
                handler: review,
                delay_ms: 0,
            },
        ]),
    );
    p.gesture(t, looper, capture);
    pats.add_events(3);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 7_287,
    reported: 9,
    a: 1,
    b: 1,
    c: 0,
    fp1: 0,
    fp2: 5,
    fp3: 2,
};

/// Builds the Camera workload.
pub fn build() -> AppSpec {
    super::build_app("Camera", EXPECTED, None, 400, |pats| {
        // Pause-time release of the camera device vs. a queued
        // shutter-done event.
        pats.intra(false, false);
        // The storage-updater thread vs. the review overlay.
        pats.inter(false);
        // cameraOpened/previewing flags guard device handles (Type II).
        for _ in 0..5 {
            pats.fp_bool_guard();
        }
        // Preview-callback buffers aliased across rotation (Type III).
        pats.fp_alias();
        pats.fp_alias();
        pats.filtered_alloc();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("MediaServer", 9);
        // Shutter: Binder trigger, front-posted feedback, storage join.
        shutter_sequence(pats);
        // Preview-frame counters.
        pats.scalar_burst(4, 10);
    })
}
