//! VLC for Android (tested version 0.2.0). Trace scenario of §6.1: play
//! a clip, pause to the home screen, return, resume playback.
//!
//! Mostly Type II noise: playback-state flags guard surface and codec
//! pointers; one real thread race in the native-bridge teardown and one
//! aliased decoder handle (Type III).

use cafa_model::{AppModel, ExpectedRow, Stmt};

use super::{shared_plumbing, times};

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 2_805,
    reported: 7,
    a: 0,
    b: 0,
    c: 1,
    fp1: 0,
    fp2: 5,
    fp3: 1,
};

/// The VLC workload as data.
pub fn model() -> AppModel {
    let mut stmts = vec![Stmt::Conv];
    stmts.extend(times(Stmt::FpBoolGuard, 5));
    stmts.push(Stmt::FpAlias);
    stmts.push(Stmt::FilteredGuard);
    stmts.extend(shared_plumbing("MediaCodecService", 4));
    // demux -> decode (video looper) -> render (main looper).
    stmts.push(Stmt::PlaybackChain { packets: 5 });
    // Position/buffer tick counters.
    stmts.push(Stmt::ScalarBurst {
        writers: 4,
        readers: 8,
    });
    AppModel {
        name: "VLC".to_owned(),
        events: EXPECTED.events,
        compute_units: 950,
        lowlevel_pairs: None,
        stmts,
    }
}
