//! VLC for Android (tested version 0.2.0). Trace scenario of §6.1: play
//! a clip, pause to the home screen, return, resume playback.
//!
//! Mostly Type II noise: playback-state flags guard surface and codec
//! pointers; one real thread race in the native-bridge teardown and one
//! aliased decoder handle (Type III).

use cafa_sim::{Action, Body};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;
use crate::truth::ExpectedRow;
use crate::AppSpec;

/// The playback chain: a demux thread produces packets under the
/// stream lock; the video looper decodes each packet and posts render
/// ticks to the main looper — two atomicity domains bridged by sends,
/// everything ordered.
///
/// Plants `2 × packets` events.
fn playback_chain(pats: &mut Patterns<'_>, packets: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let main = pats.looper();
    let p = &mut *pats.p;
    let video = p.looper(proc);
    let stream = p.ptr_var_alloc();
    let pts = p.scalar_var(0);

    let budget = p.counter(packets - 1);
    let render = p.handler("vlc:onRenderTick", Body::new().read(pts));
    let decode = {
        let me = p.next_handler_id();
        p.handler(
            "vlc:decodePacket",
            Body::from_actions(vec![
                Action::UsePtr {
                    var: stream,
                    kind: DerefKind::Field,
                    catch_npe: false,
                },
                Action::Compute(55),
                Action::WriteScalar(pts, 1),
                Action::Post {
                    looper: main,
                    handler: render,
                    delay_ms: 0,
                },
                Action::PostChain {
                    looper: video,
                    handler: me,
                    delay_ms: 10,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "vlc:demux",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Compute(35),
            Action::Post {
                looper: video,
                handler: decode,
                delay_ms: 0,
            },
        ]),
    );
    pats.add_events(2 * packets as usize);
}

/// Paper numbers for this app.
pub const EXPECTED: ExpectedRow = ExpectedRow {
    events: 2_805,
    reported: 7,
    a: 0,
    b: 0,
    c: 1,
    fp1: 0,
    fp2: 5,
    fp3: 1,
};

/// Builds the VLC workload.
pub fn build() -> AppSpec {
    super::build_app("VLC", EXPECTED, None, 950, |pats| {
        pats.conv();
        for _ in 0..5 {
            pats.fp_bool_guard();
        }
        pats.fp_alias();
        pats.filtered_guard();
        // Send-ordered teardown pairs: safe under CAFA's queue rules,
        // racy under an EventRacer-style model (ablation material).
        pats.queue_protected();
        pats.queue_protected();
        // Benign plumbing: Binder polls, a decode pipeline, front-posted
        // input, a framework listener, and a background HandlerThread.
        pats.flavor_bundle("MediaCodecService", 4);
        // demux -> decode (video looper) -> render (main looper).
        playback_chain(pats, 5);
        // Position/buffer tick counters.
        pats.scalar_burst(4, 8);
    })
}
