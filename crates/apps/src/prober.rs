//! Dynamic confirmation of detected races by schedule search.
//!
//! CAFA is *predictive* (§7.1.3): it reports races from executions in
//! which nothing went wrong, accepting false positives in exchange for
//! coverage. The paper's authors confirmed harmfulness by inspecting
//! and re-running the applications (§6.2); this module mechanizes that
//! step for the bundled workloads: given a reported race, search the
//! stress variant's schedules for one where the violation actually
//! fires on that variable. A witness seed both proves the race harmful
//! and gives a reproducible crashing schedule to debug.

use cafa_trace::VarId;

use crate::AppSpec;

/// The outcome of probing one reported race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Confirmation {
    /// A schedule was found where the violation fires on the variable;
    /// the seed reproduces it deterministically.
    Confirmed {
        /// Seed of the witnessing schedule (the *first* seed that
        /// fired, so directed-vs-random comparisons are meaningful).
        witness_seed: u64,
        /// Whether the violation crashed the app (false = the exception
        /// was swallowed, the ToDoList pattern).
        crashes: bool,
        /// Stress runs executed to find the witness (`witness_seed + 1`
        /// for the sequential search).
        attempts: u64,
    },
    /// No schedule in the budget fired the violation. For benign
    /// patterns this is the expected (and, for the commutative ones,
    /// guaranteed) outcome; for a harmful race it means the budget was
    /// too small or the hazard window is narrow.
    Unconfirmed {
        /// Schedules tried.
        tried: u64,
    },
}

impl Confirmation {
    /// True when a witness schedule was found.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Confirmation::Confirmed { .. })
    }

    /// Stress runs the probe executed: the attempts to the first
    /// witness when confirmed, the whole budget otherwise.
    pub fn runs_used(&self) -> u64 {
        match *self {
            Confirmation::Confirmed { attempts, .. } => attempts,
            Confirmation::Unconfirmed { tried } => tried,
        }
    }
}

/// Searches up to `budget` stress-variant schedules for one where a
/// use-after-free violation fires on `var`.
///
/// # Panics
///
/// Panics if a run fails (the bundled workloads run clean).
pub fn confirm(app: &AppSpec, var: VarId, budget: u64) -> Confirmation {
    for seed in 0..budget {
        let outcome = app.run_stress(seed).expect("stress run succeeds");
        if let Some(npe) = outcome.npes.iter().find(|n| n.var == var) {
            return Confirmation::Confirmed {
                witness_seed: seed,
                crashes: !npe.caught,
                attempts: seed + 1,
            };
        }
    }
    Confirmation::Unconfirmed { tried: budget }
}

/// Probes every race a detector report contains, returning
/// `(var, confirmation)` pairs in report order.
///
/// # Panics
///
/// Panics if a stress run fails.
pub fn confirm_report(
    app: &AppSpec,
    report: &cafa_core::RaceReport,
    budget: u64,
) -> Vec<(VarId, Confirmation)> {
    report
        .races
        .iter()
        .map(|race| (race.var, confirm(app, race.var, budget)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Label, TrueClass};

    #[test]
    fn harmful_races_confirm_and_benign_do_not() {
        // Music is small and has both kinds: 2 intra-thread harmful
        // races, 2 Type II + 1 Type III benign reports.
        let apps = crate::all_apps();
        let app = apps.iter().find(|a| a.name == "Music").unwrap();

        let mut confirmed_harmful = 0;
        let mut probed_benign = 0;
        for (var, label) in app.truth.iter() {
            match label {
                Label::Harmful {
                    class: TrueClass::IntraThread,
                    ..
                } => {
                    let c = confirm(app, var, 24);
                    assert!(c.is_confirmed(), "harmful {var} should confirm");
                    confirmed_harmful += 1;
                    // Witness seeds are reproducible, and the attempt
                    // count reflects the sequential seed search.
                    if let Confirmation::Confirmed {
                        witness_seed,
                        attempts,
                        ..
                    } = c
                    {
                        let again = app.run_stress(witness_seed).unwrap();
                        assert!(again.npes.iter().any(|n| n.var == var));
                        assert_eq!(attempts, witness_seed + 1);
                        assert_eq!(c.runs_used(), attempts);
                    }
                }
                Label::Benign { .. } => {
                    let c = confirm(app, var, 8);
                    assert!(!c.is_confirmed(), "benign {var} must never fire");
                    probed_benign += 1;
                }
                _ => {}
            }
        }
        assert_eq!(confirmed_harmful, 2);
        assert_eq!(probed_benign, 3);
    }

    #[test]
    fn todolist_confirms_without_crashing() {
        let apps = crate::all_apps();
        let app = apps.iter().find(|a| a.name == "ToDoList").unwrap();
        let (var, _) = app
            .truth
            .iter()
            .find(|(_, l)| matches!(l, Label::Harmful { .. }))
            .expect("has harmful races");
        match confirm(app, var, 24) {
            Confirmation::Confirmed { crashes, .. } => {
                assert!(!crashes, "ToDoList swallows the NPE (§6.2)")
            }
            Confirmation::Unconfirmed { .. } => panic!("should confirm"),
        }
    }
}
