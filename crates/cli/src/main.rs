//! `cafa` — record and analyze event-driven execution traces.
//!
//! ```text
//! cafa apps                          list the bundled app workloads
//! cafa gen [opts]                    generate a labeled app corpus
//! cafa record <app> [opts]           simulate an app and write its trace
//! cafa analyze <trace> [opts]        detect use-free races in a trace
//! cafa analyze --follow <trace>      tail a growing trace, analyze online
//! cafa validate [app] [opts]         confirm reported races by replay
//! cafa serve [opts]                  stream a trace from stdin or serve a fleet
//! cafa push <trace> [opts]           send a trace to a running serve instance
//! cafa stats <trace>                 print trace statistics
//! ```
//!
//! Run `cafa help` for the full option list.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use cafa_core::{Analyzer, DetectorConfig};
use cafa_engine::AnalysisSession;
use cafa_hb::CausalityConfig;
use cafa_sim::{run, InstrumentConfig, SimConfig};
use cafa_stream::{IncrementalSession, ProvisionalRace, StreamOptions};
use cafa_trace::Trace;

const USAGE: &str = "\
cafa — use-free race detection for event-driven traces (after Yu et al., PLDI 2014)

USAGE:
    cafa apps
        List the bundled application workloads and their Table 1 rows.

    cafa gen [--seed N] [--count N] [--size small|medium|large|mixed]
             [--format summary|text|counts] [--detector hb|predictive|both]
             [--out FILE] [--threads N]
        Generate a deterministic corpus of labeled app models from the
        pattern space (race kinds a/b/c, FP types I/II/III, filtered,
        HB-ordered, and predictive-only patterns, Binder/pipeline
        plumbing). --format summary (default) prints one line per app
        plus totals; text emits the corpus in the model DSL (parseable
        back with identical lowering); counts records and analyzes
        every app and prints its report joined against the embedded
        ground truth — the format the CI golden file pins. --detector
        predictive|both (counts only) also runs the predictive backend
        on every app, adjudicates each predictive-only report by
        replay, and appends pred_extra/pred_confirmed/pred_fp columns.
        Same --seed/--count/--size produce byte-identical output on
        any machine at any --threads.

    cafa record <app> [--seed N] [--out FILE] [--format text|binary]
                      [--coverage paper|full]
        Simulate the named app workload with instrumentation on and
        write the recorded trace (default: <app>.trace, text format).
        <app> is a catalog name from `cafa apps`, a generated app
        `gen:<seed>:<index>`, or a synthetic fleet corpus
        `scale:<seed>:<events>` (which carries its own seed; --seed
        and --coverage do not apply). --coverage paper limits listener
        instrumentation to the four framework packages of the paper
        (the Table 1 configuration).

    cafa analyze <trace> [--detector hb|predictive|both]
                         [--model cafa|conventional|no-queue-rules]
                         [--no-if-guard] [--no-intra-alloc] [--no-lockset]
                         [--json | --format text|json] [--verbose] [--timings]
                         [--threads N] [--partition auto|off|force]
                         [--follow [--poll-ms N]]
        Run the race detector over a trace file (text or binary,
        auto-detected) and print the report. --detector hb (default)
        runs the paper's happens-before pipeline alone; predictive
        additionally builds the weaker predictive relation
        (cafa-predict) over the same session; both does the same and
        classifies every predictive report as both/predictive-only
        against the HB report set. In text mode each predictive-only
        report is then adjudicated: replayed through the directed →
        guided → random ladder against the traced app's stress
        variant (catalog and gen:<seed>:<index> traces) and printed
        as a replay-confirmed witness or a counted false positive.
        The default backend's output is byte-identical to earlier
        releases. --json (or --format
        json) emits a stable machine-readable format; --verbose adds
        happens-before derivation statistics; --timings adds a
        per-pass wall-time breakdown (extract, hb-build,
        reachability, candidates, filters, baseline-hb, classify,
        predict-build/predict-candidates and adjudicate under a
        predictive detector, and — when partitioned —
        partition/merge) and model-cache counters. --threads sets the worker count for every analysis
        pool: the parallel reachability index, the candidate pass,
        and the island-partition fan-out (precedence: --threads,
        then the CAFA_THREADS env var, then all cores); the report
        is byte-identical at any setting. --partition controls
        island partitioning: auto (default) splits multi-island
        traces above a size threshold into causally independent
        sub-traces analyzed concurrently, off forces the monolithic
        path, force partitions any multi-island trace — all three
        produce byte-identical reports. --follow tails a growing
        trace file, analyzing incrementally as records arrive
        (polling every --poll-ms, default 50) until the trace's end
        marker; the report is identical to a batch analyze of the
        completed file.

    cafa validate [app] [--budget N] [--directed N] [--guided N]
                  [--minimize] [--threads N] [--format text|json|counts]
        Re-run the detector's reported races against the app's stress
        variant under the controlled scheduler and try to make each
        one fire: directed schedule synthesis first, then HB-bounded
        guided search, then random probing, within --budget simulator
        runs per race (default 32; --directed/--guided cap the first
        two rungs). Every hit is re-recorded as a schedule script and
        replay-verified; --minimize delta-debugs each witness to a
        minimal crashing prefix. [app] is a catalog name or a
        generated app `gen:<seed>:<index>`; with no app argument the
        whole catalog is validated (--threads workers). --format json emits
        one machine-readable object per app, witness scripts included;
        --format counts prints the one-line-per-app summary the CI
        golden file pins.

    cafa serve [--model M] [--chunk N] [--hwm BYTES] [--live]
               [--threads N] [--listen ADDR] [--admin ADDR]
               [--state-dir DIR] [--memory-budget SIZE]
        Without --listen: stream one trace from stdin and analyze it
        incrementally, printing the JSON report at end of stream —
        byte-identical to `cafa analyze --json` of the same trace,
        for any chunking. --chunk caps bytes ingested per read; --hwm
        bounds the staged (un-derived) analysis backlog in bytes,
        pausing the reader while it flushes (records are never
        dropped); --live (stdin only) also emits one provisional JSON
        line per use-free candidate as soon as both endpoint tasks
        close (concurrency evidence only — a later suffix can still
        order or filter the pair; the final report is the authority).

        With --listen host:port: run the multi-tenant fleet ingest
        server. Connections keep being accepted until the process is
        killed; each carries one session (or, in framed mode, many —
        see docs/SERVE.md) and receives its own report,
        byte-identical to batch analysis regardless of --threads
        (worker count) or how sessions interleave. --state-dir DIR
        journals every session's bytes so a killed server resumes
        mid-trace sessions after restart (`cafa push` re-sends from
        the offset the server reports); --memory-budget SIZE (N, NK,
        NM, NG) bounds resident analysis state by evicting cold
        sessions to their journals (requires --state-dir); --admin
        host:port serves per-session and aggregate metrics as JSON,
        shaped like `cafa stats --format json`.

    cafa push <trace> --connect ADDR --session ID [--chunk N]
        Send a recorded trace file to a running `cafa serve --listen`
        instance under the given session id and print the report the
        server returns. If the server already holds a prefix of the
        session (after a disconnect or server restart), only the
        remainder is sent. A push that ends before the trace's end
        marker leaves the session resumable and prints the durable
        offset to stderr.

    cafa stats <trace> [--format text|json]
        Print trace statistics (tasks, events, records, frees, ...).

    cafa help
        Show this message.
";

fn main() -> ExitCode {
    // Writing to a closed pipe (`cafa dump | head`) makes println!
    // panic with a BrokenPipe error; treat that as an ordinary
    // truncated-output exit instead of a crash (and keep the default
    // hook's backtrace off stderr for that case).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !payload_is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));
    match std::panic::catch_unwind(run_cli) {
        Ok(code) => code,
        Err(payload) => {
            if payload_is_broken_pipe(payload.as_ref()) {
                ExitCode::SUCCESS
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Panic payloads are `String` (formatted panics) or `&'static str`
/// (literal panics); check both for the stdio BrokenPipe message.
fn payload_is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .is_some_and(|s| s.contains("Broken pipe"))
}

fn run_cli() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("apps") => cmd_apps(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("push") => cmd_push(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("order") => cmd_order(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("graph") => cmd_graph(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `cafa help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_apps() -> Result<(), String> {
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>10}",
        "App", "events", "reported", "true", "false-pos"
    );
    for app in cafa_apps::all_apps() {
        let e = app.expected;
        println!(
            "{:<12} {:>7} {:>9} {:>9} {:>10}",
            app.name,
            e.events,
            e.reported,
            e.true_races(),
            e.false_positives()
        );
    }
    Ok(())
}

fn cmd_gen(rest: &[String]) -> Result<(), String> {
    use cafa_model::{eval::Score, GenConfig, GeneratedCatalog, SizeClass};

    let mut args = rest.to_vec();
    let seed = opt_value(&mut args, "--seed")?
        .map(|s| s.parse::<u64>().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let count = opt_value(&mut args, "--count")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad count `{s}`")))
        .transpose()?
        .unwrap_or(200);
    let size = opt_value(&mut args, "--size")?
        .map(|s| SizeClass::parse(&s))
        .transpose()?
        .unwrap_or(SizeClass::Mixed);
    let format = opt_value(&mut args, "--format")?.unwrap_or_else(|| "summary".to_owned());
    let out = opt_value(&mut args, "--out")?;
    let detector = opt_value(&mut args, "--detector")?
        .map(|s| {
            cafa_core::DetectorKind::parse(&s).ok_or_else(|| {
                format!(
                    "bad detector `{s}` (valid backends: {})",
                    cafa_core::DetectorKind::VALID.join("|")
                )
            })
        })
        .transpose()?
        .unwrap_or_default();
    let threads = parse_threads(&mut args)?;
    if !args.is_empty() {
        return Err(format!(
            "unexpected argument `{}`; see `cafa help`",
            args[0]
        ));
    }
    if detector.runs_predictive() && format != "counts" {
        return Err("--detector predictive|both requires --format counts".to_owned());
    }

    let catalog = GeneratedCatalog::new(GenConfig { seed, count, size });
    let mut output = String::new();
    match format.as_str() {
        "text" => {
            output = cafa_model::text::corpus_to_text(&catalog.models);
        }
        "summary" => {
            output.push_str(&format!(
                "{:<12} {:>7} {:>6} {:>5} {:>7} {:>8} {:>8}\n",
                "App", "events", "stmts", "true", "benign", "filtered", "ordered"
            ));
            let mut totals = Score::new();
            for model in &catalog.models {
                let mut s = Score::new();
                let spec = cafa_model::lower(model).map_err(|e| e.to_string())?;
                s.tally_app(&spec.truth, []);
                output.push_str(&format!(
                    "{:<12} {:>7} {:>6} {:>5} {:>7} {:>8} {:>8}\n",
                    model.name,
                    model.events,
                    model.stmts.len(),
                    s.true_planted(),
                    s.benign_planted(),
                    s.filtered.planted,
                    s.ordered.planted,
                ));
                totals.merge(&s);
            }
            output.push_str(&format!(
                "{} apps, {} labeled vars: {} true, {} benign, {} filtered, {} ordered\n",
                totals.apps,
                totals.true_planted()
                    + totals.benign_planted()
                    + totals.filtered.planted
                    + totals.ordered.planted,
                totals.true_planted(),
                totals.benign_planted(),
                totals.filtered.planted,
                totals.ordered.planted,
            ));
        }
        "counts" => {
            let specs = catalog.specs().map_err(|e| e.to_string())?;
            let threads = cafa_hb::resolve_threads(threads);
            let mut config = DetectorConfig::cafa();
            config.detector = detector;
            // Compute in parallel, print in corpus order: the output
            // is byte-identical at any worker count. With a predictive
            // detector every predictive-only report is adjudicated by
            // the replay ladder, and three extra columns land on each
            // line: pred_extra (reports beyond HB), pred_confirmed
            // (replay-verified witnesses), pred_fp (counted false
            // positives).
            let scores = cafa_engine::fleet::map(&specs, threads, |app| {
                let outcome = app.record(seed).expect("generated workloads run clean");
                let trace = outcome.trace.expect("instrumentation is on");
                let report = Analyzer::with_config(config)
                    .analyze_with(&AnalysisSession::new(&trace))
                    .expect("analysis succeeds");
                let mut s = Score::new();
                s.tally_app(&app.truth, report.races.iter().map(|r| r.var));
                let pred = report.predictive.as_ref().map(|p| {
                    let only: Vec<_> = p
                        .races
                        .iter()
                        .filter(|r| r.class == cafa_core::PredictClass::PredictiveOnly)
                        .map(|r| r.var)
                        .collect();
                    let adj = cafa_replay::adjudicate_races(
                        app,
                        &only,
                        &cafa_replay::ReplayConfig::default(),
                    )
                    .expect("generated workloads replay clean");
                    (only.len(), adj.confirmed(), adj.false_positives())
                });
                (s, pred)
            });
            let mut totals = Score::new();
            let mut pred_totals = (0usize, 0usize, 0usize);
            for (app, (score, pred)) in specs.iter().zip(&scores) {
                output.push_str(&score.counts_line(&app.name));
                if let Some((extra, confirmed, fp)) = pred {
                    output.push_str(&format!(
                        " pred_extra={extra} pred_confirmed={confirmed} pred_fp={fp}"
                    ));
                    pred_totals.0 += extra;
                    pred_totals.1 += confirmed;
                    pred_totals.2 += fp;
                }
                output.push('\n');
                totals.merge(score);
            }
            output.push_str(&totals.counts_line("TOTAL"));
            if detector.runs_predictive() {
                output.push_str(&format!(
                    " pred_extra={} pred_confirmed={} pred_fp={}",
                    pred_totals.0, pred_totals.1, pred_totals.2
                ));
            }
            output.push('\n');
            output.push_str(&format!(
                "precision={:.3} harmful-recall={:.3} benign-recall={:.3}\n",
                totals.precision(),
                totals.harmful_recall(),
                totals.benign_recall(),
            ));
        }
        other => return Err(format!("bad format `{other}` (summary|text|counts)")),
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &output).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path} ({format}, {} apps)", catalog.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

/// Pulls `--flag value` out of `args`; returns the value.
fn opt_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn opt_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_record(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let seed = opt_value(&mut args, "--seed")?
        .map(|s| s.parse::<u64>().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let format = opt_value(&mut args, "--format")?.unwrap_or_else(|| "text".to_owned());
    let coverage = opt_value(&mut args, "--coverage")?.unwrap_or_else(|| "paper".to_owned());
    let out = opt_value(&mut args, "--out")?;
    let [name] = args.as_slice() else {
        return Err("usage: cafa record <app> [--seed N] [--out FILE] ...".to_owned());
    };

    // `scale:<seed>:<events>` — the synthetic fleet-island corpus of
    // `cafa_model::scale` (the benchmark and CI scale-gate input). The
    // spec carries its own seed; --seed and --coverage do not apply.
    if let Some(spec) = name.strip_prefix("scale:") {
        use cafa_model::scale::{generate_scale, ScaleConfig};
        let (seed_s, events_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad scale spec `{name}` (scale:<seed>:<events>)"))?;
        let scale_seed: u64 = seed_s
            .parse()
            .map_err(|_| format!("bad scale seed `{seed_s}`"))?;
        let events: usize = events_s
            .parse()
            .map_err(|_| format!("bad scale events `{events_s}`"))?;
        let app = generate_scale(ScaleConfig::new(scale_seed, events));
        let path = out.unwrap_or_else(|| format!("scale-{scale_seed}-{events}.trace"));
        let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut w = BufWriter::new(file);
        match format.as_str() {
            "text" => cafa_trace::write_text(&app.trace, &mut w).map_err(|e| e.to_string())?,
            "binary" => cafa_trace::write_binary(&app.trace, &mut w).map_err(|e| e.to_string())?,
            other => return Err(format!("bad format `{other}` (text|binary)")),
        }
        w.flush().map_err(|e| e.to_string())?;
        let s = app.trace.stats();
        println!(
            "recorded scale corpus (seed {scale_seed}): {} events, {} records, {} island(s) -> {path} ({format})",
            s.events, s.records, app.islands
        );
        return Ok(());
    }

    let app = cafa_apps::resolve(name).map_err(|e| e.to_string())?;

    let mut config = SimConfig::with_seed(seed);
    config.instrument = match coverage.as_str() {
        "paper" => InstrumentConfig::paper_packages(),
        "full" => InstrumentConfig::full(),
        other => return Err(format!("bad coverage `{other}` (paper|full)")),
    };
    let mut outcome = run(&app.program, &config).map_err(|e| format!("simulation failed: {e}"))?;
    let trace = outcome.trace.take().expect("instrumentation is on");

    let path = out.unwrap_or_else(|| format!("{}.trace", app.name.to_lowercase()));
    let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    match format.as_str() {
        "text" => cafa_trace::write_text(&trace, &mut w).map_err(|e| e.to_string())?,
        "binary" => cafa_trace::write_binary(&trace, &mut w).map_err(|e| e.to_string())?,
        other => return Err(format!("bad format `{other}` (text|binary)")),
    }
    w.flush().map_err(|e| e.to_string())?;

    let s = trace.stats();
    println!(
        "recorded {}: {} events, {} records, {} virtual ms -> {path} ({format})",
        app.name,
        s.events,
        s.records,
        trace.meta().virtual_ms
    );
    if outcome.crashed() {
        println!("note: the run observed an uncaught NPE (races manifested)");
    }
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    // Sniff the magic: binary traces start with "CAFT".
    use std::io::{Read, Seek, SeekFrom};
    let mut magic = [0u8; 4];
    let is_binary = reader.read_exact(&mut magic).is_ok() && &magic == b"CAFT";
    reader.seek(SeekFrom::Start(0)).map_err(|e| e.to_string())?;
    if is_binary {
        cafa_trace::read_binary(reader).map_err(|e| format!("reading {path}: {e}"))
    } else {
        cafa_trace::read_text(reader).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// Pulls `--threads N` out of `args`. 0 (the default) defers to the
/// `CAFA_THREADS` environment variable, then to the machine's core
/// count; reports are byte-identical at any setting.
fn parse_threads(args: &mut Vec<String>) -> Result<usize, String> {
    Ok(opt_value(args, "--threads")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad threads `{s}`")))
        .transpose()?
        .unwrap_or(0))
}

/// Parses a `--model` value into a causality configuration.
fn parse_model(model: &str) -> Result<CausalityConfig, String> {
    match model {
        "cafa" => Ok(CausalityConfig::cafa()),
        "conventional" => Ok(CausalityConfig::conventional()),
        "no-queue-rules" => Ok(CausalityConfig::no_queue_rules()),
        other => Err(format!(
            "bad model `{other}` (cafa|conventional|no-queue-rules)"
        )),
    }
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let model = opt_value(&mut args, "--model")?.unwrap_or_else(|| "cafa".to_owned());
    let no_if_guard = opt_flag(&mut args, "--no-if-guard");
    let no_intra_alloc = opt_flag(&mut args, "--no-intra-alloc");
    let no_lockset = opt_flag(&mut args, "--no-lockset");
    let mut json = opt_flag(&mut args, "--json");
    match opt_value(&mut args, "--format")?.as_deref() {
        None | Some("text") => {}
        Some("json") => json = true,
        Some(other) => return Err(format!("bad format `{other}` (text|json)")),
    }
    let verbose = opt_flag(&mut args, "--verbose");
    let timings = opt_flag(&mut args, "--timings");
    let threads = parse_threads(&mut args)?;
    let partition = opt_value(&mut args, "--partition")?
        .map(|s| {
            cafa_core::PartitionMode::parse(&s)
                .ok_or_else(|| format!("bad partition `{s}` (auto|off|force)"))
        })
        .transpose()?
        .unwrap_or_default();
    let detector = opt_value(&mut args, "--detector")?
        .map(|s| {
            cafa_core::DetectorKind::parse(&s).ok_or_else(|| {
                format!(
                    "bad detector `{s}` (valid backends: {})",
                    cafa_core::DetectorKind::VALID.join("|")
                )
            })
        })
        .transpose()?
        .unwrap_or_default();
    let follow = opt_flag(&mut args, "--follow");
    let poll_ms = opt_value(&mut args, "--poll-ms")?
        .map(|s| s.parse::<u64>().map_err(|_| format!("bad poll-ms `{s}`")))
        .transpose()?
        .unwrap_or(50);
    let [path] = args.as_slice() else {
        return Err("usage: cafa analyze <trace> [options]".to_owned());
    };

    let mut config = DetectorConfig::cafa();
    config.causality = parse_model(&model)?;
    config.if_guard = !no_if_guard;
    config.intra_event_alloc = !no_intra_alloc;
    config.lockset_filter = !no_lockset;
    config.threads = threads;
    config.partition = partition;
    config.detector = detector;

    if follow {
        if detector.runs_predictive() {
            return Err(format!(
                "--follow only supports the hb backend (got --detector {detector}): \
                 the incremental engine derives the observed-trace relation only"
            ));
        }
        return analyze_follow(path, config, json, verbose, timings, poll_ms);
    }

    let trace = load_trace(path)?;
    let session = AnalysisSession::new(&trace);
    let mut report = Analyzer::with_config(config)
        .analyze_with(&session)
        .map_err(|e| format!("analysis failed: {e}"))?;
    if json {
        print!("{}", cafa_core::json::render_json(&report, &trace));
        return Ok(());
    }
    print_text_report(&report, &trace, verbose);
    adjudicate_predictive(&mut report, &trace)?;
    if timings {
        println!("pass timings:");
        print!("{}", report.stats.passes.render());
        if let Some(p) = report.stats.partition {
            println!(
                "  partition: {} island(s) in {} batch(es), largest island {} record(s)",
                p.islands, p.batches, p.largest_island_records
            );
        }
        print_fixpoint_stats(&report.stats.derivation);
        // Only read cached models: after a partitioned run the session
        // holds no monolithic model, and building one here just to
        // print its counters would redo the whole derivation.
        let demand = session
            .has_model(config.causality)
            .then(|| session.model(config.causality).ok())
            .flatten()
            .and_then(|m| m.demand_stats());
        if let Some(d) = demand {
            print_demand_stats(&d);
        }
        let s = session.stats();
        println!(
            "session: {} ops extraction(s), {} model build(s), {} cache hit(s)",
            s.ops_extractions, s.model_builds, s.model_cache_hits
        );
    }
    Ok(())
}

/// Fixpoint-engine counters printed under `--timings`: how many rounds
/// the derivation took and how much rule work it actually evaluated.
fn print_fixpoint_stats(d: &cafa_hb::DerivationStats) {
    println!("  fixpoint rounds          {:>10}", d.rounds);
    println!("  rule instances evaluated {:>10}", d.instances);
    println!("  edges derived            {:>10}", d.derived_edges());
}

/// Demand query-engine counters printed under `--timings` when the
/// lazy backend answered the analysis: how many `hb` queries it saw,
/// how many rule premises those queries forced, and how few edges it
/// actually materialized along the way.
fn print_demand_stats(d: &cafa_hb::DemandStats) {
    println!("  demand queries answered  {:>10}", d.queries);
    println!("  rule premises evaluated  {:>10}", d.premises);
    println!("  edges materialized       {:>10}", d.edges_materialized);
}

/// The shared text rendering of `analyze` (batch and `--follow`).
fn print_text_report(report: &cafa_core::RaceReport, trace: &Trace, verbose: bool) {
    print!("{}", report.render(trace));
    if verbose {
        let d = report.stats.derivation;
        println!(
            "derivation: {} round(s), {} atomicity edge(s), queue rules 1-4: {:?}",
            d.rounds, d.atomicity_edges, d.queue_edges
        );
    }
    println!(
        "filtered candidates: {} ({} if-guard, {} intra-event-alloc, {} lockset)",
        report.filtered.len(),
        report
            .filtered
            .iter()
            .filter(|f| f.reason == cafa_core::FilterReason::IfGuard)
            .count(),
        report
            .filtered
            .iter()
            .filter(|f| matches!(
                f.reason,
                cafa_core::FilterReason::AllocBeforeUse | cafa_core::FilterReason::AllocAfterFree
            ))
            .count(),
        report
            .filtered
            .iter()
            .filter(|f| f.reason == cafa_core::FilterReason::CommonLock)
            .count(),
    );
    println!("analysis time: {:.3}s", report.elapsed.as_secs_f64());
}

/// Resolves the app name a trace was recorded under back to its spec.
///
/// Catalog traces carry the Table 1 name; generated traces stamp
/// `gen<seed>-<index>` into the metadata, which maps onto the
/// resolver's `gen:<seed>:<index>` coordinate scheme. Foreign traces
/// (converted, synthetic) resolve to `None`.
fn resolve_traced_app(name: &str) -> Option<cafa_apps::AppSpec> {
    if let Ok(app) = cafa_apps::resolve(name) {
        return Some(app);
    }
    let coords = name.strip_prefix("gen")?;
    let (seed, index) = coords.split_once('-')?;
    let spec = format!(
        "gen:{}:{}",
        seed.parse::<u64>().ok()?,
        index.parse::<usize>().ok()?
    );
    cafa_apps::resolve(&spec).ok()
}

/// Pushes every `predictive-only` report through the replay ladder
/// (directed → guided → random) against the traced app's stress
/// variant, printing one verdict line per report: a replay-confirmed
/// witness or a counted false positive. The predictive relation is
/// deliberately weaker than the observed-trace order, so this is the
/// step that restores soundness to its extra reports.
///
/// Appends an `adjudicate` row to the report's pass table so
/// `--timings` accounts for the replay time.
fn adjudicate_predictive(report: &mut cafa_core::RaceReport, trace: &Trace) -> Result<(), String> {
    let only: Vec<cafa_trace::VarId> = report
        .predictive
        .as_ref()
        .map(|p| {
            p.races
                .iter()
                .filter(|r| r.class == cafa_core::PredictClass::PredictiveOnly)
                .map(|r| r.var)
                .collect()
        })
        .unwrap_or_default();
    if only.is_empty() {
        return Ok(());
    }
    let Some(app) = resolve_traced_app(&trace.meta().app) else {
        println!(
            "adjudication skipped: `{}` is not a catalog or generated workload, \
             so the predictive-only report(s) above are unjudged claims",
            trace.meta().app
        );
        return Ok(());
    };
    let cfg = cafa_replay::ReplayConfig::default();
    let count = only.len();
    let adj = report
        .stats
        .passes
        .run("adjudicate", || {
            (cafa_replay::adjudicate_races(&app, &only, &cfg), count)
        })
        .map_err(|e| format!("adjudication failed: {e}"))?;
    println!(
        "adjudication: {count} predictive-only report(s) replayed against {}",
        adj.app
    );
    for r in &adj.reports {
        let v = &r.validation;
        if r.confirmed() {
            let method = v
                .method
                .as_ref()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "unknown".to_owned());
            println!(
                "  {:<6} CONFIRMED       witness via {method} in {} run(s), replay-verified",
                v.var.to_string(),
                v.runs_to_witness,
            );
        } else {
            let why = match &r.infeasible {
                Some(reason) => format!("directed synthesis: {reason}"),
                None => format!("budget exhausted after {} run(s)", v.total_runs),
            };
            println!("  {:<6} false positive  {why}", v.var.to_string(),);
        }
    }
    println!(
        "  {} confirmed, {} false positive(s), {} stress run(s)",
        adj.confirmed(),
        adj.false_positives(),
        adj.total_runs()
    );
    Ok(())
}

/// `cafa analyze --follow`: tail a growing trace file, ingesting and
/// analyzing incrementally until its end marker arrives.
fn analyze_follow(
    path: &str,
    config: DetectorConfig,
    json: bool,
    verbose: bool,
    timings: bool,
    poll_ms: u64,
) -> Result<(), String> {
    use std::io::Read;
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let opts = StreamOptions {
        detector: config,
        ..StreamOptions::default()
    };
    let mut session = IncrementalSession::new(opts);
    let mut buf = vec![0u8; 64 << 10];
    while !session.is_complete() {
        let n = file
            .read(&mut buf)
            .map_err(|e| format!("reading {path}: {e}"))?;
        if n == 0 {
            // At the current end of the file but the trace's own end
            // marker has not arrived: the writer is still going.
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            continue;
        }
        session
            .push(&buf[..n])
            .map_err(|e| format!("analyzing {path}: {e}"))?;
    }
    let demand = session.demand_stats();
    let outcome = session
        .finish()
        .map_err(|e| format!("analyzing {path}: {e}"))?;
    if json {
        print!(
            "{}",
            cafa_core::json::render_json(&outcome.report, &outcome.trace)
        );
        return Ok(());
    }
    print_text_report(&outcome.report, &outcome.trace, verbose);
    if timings {
        println!("pass timings:");
        print!("{}", outcome.report.stats.passes.render());
        print_fixpoint_stats(&outcome.report.stats.derivation);
        if let Some(d) = demand {
            print_demand_stats(&d);
        }
        println!("streaming passes:");
        print!("{}", outcome.passes.render());
        let p = outcome.progress;
        println!(
            "stream: {} byte(s) in {} chunk(s), {} record(s), {} task(s) sealed, {} derive(s), {} backpressure flush(es)",
            p.bytes, p.chunks, p.records, p.tasks_sealed, p.derives, p.backpressure_flushes
        );
    }
    Ok(())
}

fn cmd_validate(rest: &[String]) -> Result<(), String> {
    use cafa_replay::{validate_app, validate_apps, AppValidation, ReplayConfig};

    let mut args = rest.to_vec();
    let parse_u64 =
        |s: String, what: &str| s.parse::<u64>().map_err(|_| format!("bad {what} `{s}`"));
    let budget = opt_value(&mut args, "--budget")?
        .map(|s| parse_u64(s, "budget"))
        .transpose()?
        .unwrap_or(32);
    let directed_attempts = opt_value(&mut args, "--directed")?
        .map(|s| parse_u64(s, "directed"))
        .transpose()?
        .unwrap_or(4);
    let guided_attempts = opt_value(&mut args, "--guided")?
        .map(|s| parse_u64(s, "guided"))
        .transpose()?
        .unwrap_or(8);
    let minimize = opt_flag(&mut args, "--minimize");
    let threads = parse_threads(&mut args)?;
    let format = opt_value(&mut args, "--format")?.unwrap_or_else(|| "text".to_owned());
    if !matches!(format.as_str(), "text" | "json" | "counts") {
        return Err(format!("bad format `{format}` (text|json|counts)"));
    }

    let cfg = ReplayConfig {
        budget,
        directed_attempts,
        guided_attempts,
        minimize,
    };
    let validations: Vec<AppValidation> = match args.as_slice() {
        [] => {
            let threads = cafa_hb::resolve_threads(threads);
            validate_apps(&cfg, threads).map_err(|e| format!("validation failed: {e}"))?
        }
        [name] => {
            let app = cafa_apps::resolve(name).map_err(|e| e.to_string())?;
            vec![validate_app(&app, &cfg).map_err(|e| format!("validation failed: {e}"))?]
        }
        _ => return Err("usage: cafa validate [app] [options]".to_owned()),
    };

    match format.as_str() {
        "counts" => {
            for v in &validations {
                println!("{}", v.counts_line());
            }
        }
        "json" => {
            let objects: Vec<String> = validations.iter().map(AppValidation::to_json).collect();
            println!("[{}]", objects.join(","));
        }
        _ => {
            for v in &validations {
                println!(
                    "{}: {} reported, {} oracle-true, {} confirmed-true, {} benign fired, {} runs",
                    v.app,
                    v.races.len(),
                    v.oracle_true(),
                    v.confirmed_true(),
                    v.benign_fired(),
                    v.total_runs(),
                );
                for race in &v.races {
                    let r = &race.validation;
                    let label = if race.harmful { "harmful" } else { "benign" };
                    match (&r.method, &r.witness) {
                        (Some(m), Some(w)) => println!(
                            "  {:<6} {:<8} confirmed   {:<8} runs={:<4} witness={} choice(s){}{}",
                            r.var.to_string(),
                            label,
                            m.to_string(),
                            r.runs_to_witness,
                            w.len(),
                            if minimize {
                                format!(" (from {})", r.full_len)
                            } else {
                                String::new()
                            },
                            if r.replay_verified {
                                ""
                            } else {
                                "  REPLAY FAILED"
                            },
                        ),
                        _ => println!(
                            "  {:<6} {:<8} unconfirmed          runs={}",
                            r.var.to_string(),
                            label,
                            r.total_runs,
                        ),
                    }
                }
            }
        }
    }
    Ok(())
}

/// One provisional candidate as a JSON line (ids only — task names
/// would need the finished trace, and provisional output must not
/// perturb the final byte-stable report).
fn provisional_line(p: &ProvisionalRace) -> String {
    format!(
        "{{\"provisional\": true, \"var\": \"{}\", \
         \"use\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\"}}, \
         \"free\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\"}}}}",
        p.var, p.use_at.task, p.use_at.index, p.use_pc, p.free_at.task, p.free_at.index, p.free_pc
    )
}

/// Parses a byte size with an optional K/M/G suffix (binary units).
fn parse_size(s: &str) -> Result<usize, String> {
    let (digits, scale) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: usize = digits
        .parse()
        .map_err(|_| format!("bad size `{s}` (use N, NK, NM, or NG)"))?;
    n.checked_mul(scale)
        .ok_or_else(|| format!("size `{s}` overflows"))
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    use std::io::Read;
    let mut args = rest.to_vec();
    let model = opt_value(&mut args, "--model")?.unwrap_or_else(|| "cafa".to_owned());
    let chunk = opt_value(&mut args, "--chunk")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad chunk `{s}`")))
        .transpose()?
        .unwrap_or(64 << 10)
        .max(1);
    let hwm = opt_value(&mut args, "--hwm")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad hwm `{s}`")))
        .transpose()?;
    let live = opt_flag(&mut args, "--live");
    let threads = parse_threads(&mut args)?;
    let listen = opt_value(&mut args, "--listen")?;
    let admin = opt_value(&mut args, "--admin")?;
    let state_dir = opt_value(&mut args, "--state-dir")?;
    let budget = opt_value(&mut args, "--memory-budget")?
        .map(|s| parse_size(&s))
        .transpose()?;
    if !args.is_empty() {
        return Err(format!(
            "unexpected argument `{}`; see `cafa help`",
            args[0]
        ));
    }

    let mut opts = StreamOptions {
        live,
        ..StreamOptions::default()
    };
    opts.detector.causality = parse_model(&model)?;
    opts.detector.threads = threads;
    if let Some(hwm) = hwm {
        opts.high_water = hwm;
    }

    if let Some(addr) = listen {
        // TCP mode: the multi-tenant ingest server. Each connection
        // carries its own session; reports are per-session and
        // byte-identical to `cafa analyze --format json`.
        if live {
            return Err(
                "--live is stdin-only: per-session provisional lines would interleave \
                 on a multi-tenant server's stdout"
                    .to_owned(),
            );
        }
        let mut config = cafa_fleetserve::ServerConfig {
            opts,
            threads,
            state_dir: state_dir.map(std::path::PathBuf::from),
            memory_budget: budget,
            read_chunk: chunk,
        };
        // Sessions are parallel across workers; each analysis runs
        // single-threaded so reports stay worker-count-invariant.
        config.opts.detector.threads = 1;
        let server = cafa_fleetserve::Server::bind(&addr, admin.as_deref(), config)
            .map_err(|e| e.to_string())?;
        let local = server.local_addr().map_err(|e| e.to_string())?;
        eprintln!("listening on {local}");
        if let Ok(Some(a)) = server.admin_addr() {
            eprintln!("admin on {a}");
        }
        // Runs until the process is killed; crash safety comes from
        // the journals in --state-dir, not from a shutdown handler.
        let stop = std::sync::atomic::AtomicBool::new(false);
        server.run(&stop);
        return Ok(());
    }
    if admin.is_some() || state_dir.is_some() || budget.is_some() {
        return Err("--admin/--state-dir/--memory-budget require --listen".to_owned());
    }

    let mut reader = std::io::stdin().lock();
    let mut session = IncrementalSession::new(opts);
    let mut buf = vec![0u8; chunk];
    let mut out = std::io::stdout().lock();
    while !session.is_complete() {
        let n = reader.read(&mut buf).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            break; // EOF; truncation surfaces in finish()
        }
        for p in session
            .push(&buf[..n])
            .map_err(|e| format!("analyzing stream: {e}"))?
        {
            writeln!(out, "{}", provisional_line(&p)).map_err(|e| e.to_string())?;
        }
    }
    let outcome = session
        .finish()
        .map_err(|e| format!("analyzing stream: {e}"))?;
    write!(
        out,
        "{}",
        cafa_core::json::render_json(&outcome.report, &outcome.trace)
    )
    .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_push(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let addr = opt_value(&mut args, "--connect")?
        .ok_or_else(|| "cafa push requires --connect HOST:PORT".to_owned())?;
    let session = opt_value(&mut args, "--session")?
        .ok_or_else(|| "cafa push requires --session ID".to_owned())?;
    let chunk = opt_value(&mut args, "--chunk")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad chunk `{s}`")))
        .transpose()?
        .unwrap_or(64 << 10);
    let [path] = args.as_slice() else {
        return Err("usage: cafa push <trace> --connect ADDR --session ID [--chunk N]".to_owned());
    };
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let outcome =
        cafa_fleetserve::push_trace(&addr, &session, &bytes, chunk).map_err(|e| e.to_string())?;
    if outcome.resumed_at > 0 {
        eprintln!("session {session}: resumed at byte {}", outcome.resumed_at);
    }
    match outcome.report {
        Some(report) => {
            let mut out = std::io::stdout().lock();
            write!(out, "{report}").map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
        }
        None => eprintln!(
            "session {session}: detached at byte {} (trace incomplete; push again to resume)",
            outcome.durable
        ),
    }
    Ok(())
}

fn cmd_graph(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let out_path = opt_value(&mut args, "--out")?;
    let [path] = args.as_slice() else {
        return Err("usage: cafa graph <trace> [--out FILE]".to_owned());
    };
    let trace = load_trace(path)?;
    if trace.task_count() > 400 {
        return Err(format!(
            "trace has {} tasks; DOT export is only readable for small scenarios",
            trace.task_count()
        ));
    }
    let session = AnalysisSession::new(&trace);
    let model = session
        .model(CausalityConfig::cafa())
        .map_err(|e| format!("model build failed: {e}"))?;
    let dot = cafa_hb::dot::render_model(&model);
    match out_path {
        Some(p) => {
            std::fs::write(&p, dot).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote {p}");
        }
        None => print!("{dot}"),
    }
    Ok(())
}

fn cmd_convert(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let format = opt_value(&mut args, "--format")?;
    let [input, output] = args.as_slice() else {
        return Err("usage: cafa convert <in> <out> [--format text|binary]".to_owned());
    };
    let trace = load_trace(input)?;
    // Default: flip to the opposite of the input format.
    let input_is_binary = std::fs::File::open(input)
        .ok()
        .and_then(|mut f| {
            use std::io::Read;
            let mut magic = [0u8; 4];
            f.read_exact(&mut magic).ok().map(|_| &magic == b"CAFT")
        })
        .unwrap_or(false);
    let format = format.unwrap_or_else(|| {
        if input_is_binary {
            "text".to_owned()
        } else {
            "binary".to_owned()
        }
    });
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut w = BufWriter::new(file);
    match format.as_str() {
        "text" => cafa_trace::write_text(&trace, &mut w).map_err(|e| e.to_string())?,
        "binary" => cafa_trace::write_binary(&trace, &mut w).map_err(|e| e.to_string())?,
        other => return Err(format!("bad format `{other}` (text|binary)")),
    }
    w.flush().map_err(|e| e.to_string())?;
    println!("wrote {output} ({format})");
    Ok(())
}

fn cmd_dump(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let all = opt_flag(&mut args, "--all");
    let limit = opt_value(&mut args, "--limit")?
        .map(|s| s.parse::<usize>().map_err(|_| format!("bad limit `{s}`")))
        .transpose()?;
    let [path] = args.as_slice() else {
        return Err("usage: cafa dump <trace> [--limit N] [--all]".to_owned());
    };
    let trace = load_trace(path)?;
    let options = cafa_trace::pretty::PrettyOptions {
        max_records_per_task: if all { usize::MAX } else { limit.unwrap_or(16) },
        skip_empty_tasks: !all,
    };
    print!("{}", cafa_trace::pretty::render(&trace, &options));
    Ok(())
}

fn cmd_order(rest: &[String]) -> Result<(), String> {
    let [path, task_a, idx_a, task_b, idx_b] = rest else {
        return Err("usage: cafa order <trace> <taskA> <indexA> <taskB> <indexB>".to_owned());
    };
    let trace = load_trace(path)?;
    let parse_task = |s: &str| -> Result<cafa_trace::TaskId, String> {
        let n: u32 = s
            .trim_start_matches('t')
            .parse()
            .map_err(|_| format!("bad task id `{s}` (expected e.g. t12)"))?;
        if (n as usize) < trace.task_count() {
            Ok(cafa_trace::TaskId::new(n))
        } else {
            Err(format!(
                "task {s} out of range (trace has {} tasks)",
                trace.task_count()
            ))
        }
    };
    let parse_idx = |s: &str| -> Result<u32, String> {
        s.parse().map_err(|_| format!("bad record index `{s}`"))
    };
    let a = cafa_trace::OpRef::new(parse_task(task_a)?, parse_idx(idx_a)?);
    let b = cafa_trace::OpRef::new(parse_task(task_b)?, parse_idx(idx_b)?);
    for at in [a, b] {
        if trace.get_record(at).is_none() {
            return Err(format!("{at} is out of range"));
        }
    }

    let session = AnalysisSession::new(&trace);
    let model = session
        .model(CausalityConfig::cafa())
        .map_err(|e| format!("model build failed: {e}"))?;
    println!(
        "{} ({} in {})  vs  {} ({} in {})",
        a,
        trace.record(a).kind_tag(),
        trace.task_name(a.task),
        b,
        trace.record(b).kind_tag(),
        trace.task_name(b.task),
    );
    let (ordered, x, y) = match model.order(a, b) {
        cafa_hb::OpOrder::Same => {
            println!("=> the same operation");
            return Ok(());
        }
        cafa_hb::OpOrder::Before => (true, a, b),
        cafa_hb::OpOrder::After => (true, b, a),
        cafa_hb::OpOrder::Concurrent => (false, a, b),
    };
    if !ordered {
        println!("=> logically CONCURRENT under the CAFA model");
        return Ok(());
    }
    println!("=> {x} happens-before {y}; causal chain:");
    if let Some(chain) = model.explain(x, y) {
        for step in chain {
            println!(
                "     {:?} in {} --[{:?}]--> {:?} in {}",
                step.from.point,
                trace.task_name(step.from.task),
                step.kind,
                step.to.point,
                trace.task_name(step.to.task),
            );
        }
    }
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let format = opt_value(&mut args, "--format")?.unwrap_or_else(|| "text".to_owned());
    let [path] = args.as_slice() else {
        return Err("usage: cafa stats <trace> [--format text|json]".to_owned());
    };
    let trace = load_trace(path)?;
    let s = trace.stats();
    match format.as_str() {
        "text" => {}
        "json" => {
            // Stable machine-readable schema, mirroring the text lines.
            println!("{{");
            let app = trace.meta().app.replace('\\', "\\\\").replace('"', "\\\"");
            println!("  \"app\": \"{app}\",");
            println!("  \"seed\": {},", trace.meta().seed);
            println!("  \"virtual_ms\": {},", trace.meta().virtual_ms);
            println!("  \"processes\": {},", trace.process_count());
            println!("  \"queues\": {},", trace.queue_count());
            println!("  \"tasks\": {},", s.tasks);
            println!("  \"threads\": {},", s.threads);
            println!("  \"events\": {},", s.events);
            println!("  \"external_events\": {},", s.external_events);
            println!("  \"records\": {},", s.records);
            println!("  \"sync_records\": {},", s.sync_records);
            println!("  \"accesses\": {},", s.accesses);
            println!("  \"frees\": {},", s.frees);
            println!("  \"allocations\": {},", s.allocations);
            println!("  \"dereferences\": {},", s.derefs);
            println!("  \"guard_branches\": {},", s.guards);
            println!("  \"sends\": {}", s.sends);
            println!("}}");
            return Ok(());
        }
        other => return Err(format!("bad format `{other}` (text|json)")),
    }
    println!("app:             {}", trace.meta().app);
    println!("seed:            {}", trace.meta().seed);
    println!("virtual ms:      {}", trace.meta().virtual_ms);
    println!("processes:       {}", trace.process_count());
    println!("queues:          {}", trace.queue_count());
    println!(
        "tasks:           {} ({} threads, {} events)",
        s.tasks, s.threads, s.events
    );
    println!("external events: {}", s.external_events);
    println!("records:         {} ({} sync)", s.records, s.sync_records);
    println!("accesses:        {}", s.accesses);
    println!("frees:           {}", s.frees);
    println!("allocations:     {}", s.allocations);
    println!("dereferences:    {}", s.derefs);
    println!("guard branches:  {}", s.guards);
    println!("sends:           {}", s.sends);
    Ok(())
}
