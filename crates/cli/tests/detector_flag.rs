//! End-to-end tests of `--detector`: backend selection, the typed
//! error for unknown backends, and the replay adjudication of
//! predictive-only reports.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cafa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cafa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cafa-detector-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_detector_is_a_typed_error() {
    // The value is validated before the trace path is touched, so a
    // nonexistent path after it never masks the message.
    let out = cafa(&["analyze", "--detector", "bogus", "no-such.trace"]);
    assert!(!out.status.success(), "unknown backend must fail");
    let err = stderr(&out);
    assert!(err.contains("bad detector `bogus`"), "{err}");
    assert!(err.contains("hb|predictive|both"), "{err}");

    let out = cafa(&["gen", "--detector", "bogus", "--format", "counts"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad detector `bogus`"));
}

#[test]
fn follow_rejects_predictive_backends() {
    let out = cafa(&["analyze", "--follow", "--detector", "both", "x.trace"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--follow only supports the hb backend"),
        "{err}"
    );
}

#[test]
fn gen_detector_requires_counts_format() {
    let out = cafa(&["gen", "--detector", "both", "--count", "1"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("requires --format counts"));
}

#[test]
fn both_mode_reports_and_adjudicates_a_predictive_only_race() {
    // gen7-0000 plants a lock-handoff: HB-concurrent but suppressed by
    // the strict lockset filter, re-reported by the predictive
    // relation, and feasible — directed replay confirms it.
    let path = tmp("g70.trace");
    let out = cafa(&["record", "gen:7:0", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Default backend: no predictive section, no adjudication.
    let out = cafa(&["analyze", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(!text.contains("predictive"), "{text}");
    assert!(!text.contains("adjudication"), "{text}");

    let out = cafa(&["analyze", path.to_str().unwrap(), "--detector", "both"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("predictive-only"), "{text}");
    assert!(text.contains("adjudication: 1 predictive-only"), "{text}");
    assert!(text.contains("CONFIRMED"), "{text}");
    assert!(text.contains("replay-verified"), "{text}");

    // The adjudication replay rounds land in the pass table.
    let out = cafa(&[
        "analyze",
        path.to_str().unwrap(),
        "--detector",
        "both",
        "--timings",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    for pass in ["predict-build", "predict-candidates", "adjudicate"] {
        assert!(text.contains(pass), "missing {pass} row: {text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn infeasible_predictive_report_is_a_counted_false_positive() {
    // gen7-0001 plants a fifo-handoff: the flip would invert a FIFO
    // queue order no schedule can produce, so directed synthesis
    // proves it infeasible and the ladder counts a false positive.
    let path = tmp("g71.trace");
    let out = cafa(&["record", "gen:7:1", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = cafa(&["analyze", path.to_str().unwrap(), "--detector", "both"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("false positive"), "{text}");
    assert!(text.contains("directed synthesis:"), "{text}");
    assert!(text.contains("0 confirmed, 1 false positive(s)"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn hb_report_bytes_are_unchanged_by_the_flag_spelled_explicitly() {
    let path = tmp("music.trace");
    let out = cafa(&["record", "music", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));

    let default = cafa(&["analyze", path.to_str().unwrap(), "--json"]);
    let explicit = cafa(&[
        "analyze",
        path.to_str().unwrap(),
        "--detector",
        "hb",
        "--json",
    ]);
    assert!(default.status.success() && explicit.status.success());
    assert_eq!(stdout(&default), stdout(&explicit));
    std::fs::remove_file(&path).ok();
}
