//! End-to-end tests of the `cafa` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cafa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cafa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cafa-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_and_apps() {
    let out = cafa(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("record"));

    let out = cafa(&["apps"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for app in ["ConnectBot", "MyTracks", "Music"] {
        assert!(text.contains(app), "missing {app}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = cafa(&["bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn record_analyze_stats_roundtrip_text() {
    let path = tmp("vlc.trace");
    let out = cafa(&["record", "vlc", "--out", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("2805 events"));

    let out = cafa(&["analyze", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("7 race(s) reported"), "{text}");
    assert!(text.contains("context:"));

    let out = cafa(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("events)"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_analyze_binary_and_models() {
    let path = tmp("vlc.bin");
    let out = cafa(&[
        "record",
        "vlc",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // The conventional model hides the same-looper reports.
    let conv = cafa(&["analyze", path.to_str().unwrap(), "--model", "conventional"]);
    assert!(conv.status.success());
    let cafa_out = cafa(&["analyze", path.to_str().unwrap()]);
    // First line: "<app>: N race(s) reported, ...".
    let count = |o: &Output| {
        let t = stdout(o);
        let line = t.lines().next().unwrap_or("").to_owned();
        line.split(':')
            .nth(1)
            .unwrap_or("")
            .trim()
            .split(' ')
            .next()
            .unwrap_or("0")
            .parse::<usize>()
            .unwrap_or(999)
    };
    assert!(count(&conv) < count(&cafa_out), "conventional sees fewer");
    std::fs::remove_file(&path).ok();
}

#[test]
fn dump_respects_limit_and_pipes_cleanly() {
    let path = tmp("dump.trace");
    assert!(cafa(&["record", "vlc", "--out", path.to_str().unwrap()])
        .status
        .success());
    let limited = cafa(&["dump", path.to_str().unwrap(), "--limit", "1"]);
    assert!(limited.status.success());
    let text = stdout(&limited);
    assert!(text.starts_with("trace \"VLC\""));
    assert!(
        text.contains("more record(s)"),
        "limit announces truncation"
    );
    // No panic/backtrace output even for large dumps.
    assert!(String::from_utf8_lossy(&limited.stderr).is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn graph_exports_dot_for_small_traces_only() {
    // The golden fixture is a small scenario.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden.trace"
    );
    let out = cafa(&["graph", fixture]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = stdout(&out);
    assert!(dot.starts_with("digraph hb {"));
    assert!(dot.contains("cluster_0"));

    // Big traces are refused with a clear message.
    let path = tmp("big.trace");
    assert!(cafa(&["record", "vlc", "--out", path.to_str().unwrap()])
        .status
        .success());
    let refused = cafa(&["graph", path.to_str().unwrap()]);
    assert!(!refused.status.success());
    assert!(String::from_utf8_lossy(&refused.stderr).contains("only readable"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_json_is_machine_readable() {
    let path = tmp("json.trace");
    assert!(cafa(&["record", "music", "--out", path.to_str().unwrap()])
        .status
        .success());
    let out = cafa(&["analyze", path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('{'));
    assert!(text.contains("\"races\": ["));
    assert!(text.contains("\"class\": \"intra-thread\""));
    // Balanced structure (cheap well-formedness check without a JSON dep).
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    std::fs::remove_file(&path).ok();
}

/// Runs `cafa serve` with `input` piped to stdin, returning stdout.
fn serve_stdin(args: &[&str], input: &[u8]) -> String {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cafa"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input)
        .expect("stdin accepts the trace");
    let out = child.wait_with_output().expect("serve finishes");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout(&out)
}

#[test]
fn serve_stdin_matches_batch_analysis() {
    let path = tmp("serve.bin");
    assert!(cafa(&[
        "record",
        "vlc",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap()
    ])
    .status
    .success());
    let batch = cafa(&["analyze", path.to_str().unwrap(), "--json"]);
    assert!(batch.status.success());
    let expected = stdout(&batch);
    let bytes = std::fs::read(&path).unwrap();

    // Byte-identical at an awkward chunk size.
    assert_eq!(serve_stdin(&["--chunk", "13"], &bytes), expected);

    // Live mode prefixes provisional lines but the authoritative
    // report at the end is unchanged.
    let live = serve_stdin(&["--chunk", "4096", "--live", "--hwm", "1024"], &bytes);
    assert!(live.contains("\"provisional\": true"), "{live}");
    assert!(
        live.ends_with(&expected),
        "live output ends with the report"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_follow_and_format_json_match_batch() {
    let path = tmp("follow.bin");
    assert!(cafa(&[
        "record",
        "music",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap()
    ])
    .status
    .success());
    let batch = cafa(&["analyze", path.to_str().unwrap(), "--json"]);
    assert!(batch.status.success());
    let expected = stdout(&batch);

    // --format json is the spelled-out alias for --json.
    let alias = cafa(&["analyze", path.to_str().unwrap(), "--format", "json"]);
    assert!(alias.status.success());
    assert_eq!(stdout(&alias), expected);

    // Tailing an already-complete file drains it and reports once.
    let follow = cafa(&[
        "analyze",
        path.to_str().unwrap(),
        "--follow",
        "--format",
        "json",
    ]);
    assert!(
        follow.status.success(),
        "{}",
        String::from_utf8_lossy(&follow.stderr)
    );
    assert_eq!(stdout(&follow), expected);
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_rejects_cyclic_trace_with_named_nodes() {
    use cafa_trace::{MonitorId, TraceBuilder};
    // Crossed notify/wait generations: a waits for what it will later
    // notify b to produce, and vice versa. Structurally valid (each
    // record is well-formed) but no real execution can order it.
    let mut b = TraceBuilder::new("cyclic");
    let p = b.add_process();
    let ta = b.add_thread(p, "a");
    let tb = b.add_thread(p, "b");
    let m = MonitorId::new(0);
    b.wait(ta, m, 2);
    b.notify(ta, m, 1);
    b.wait(tb, m, 1);
    b.notify(tb, m, 2);
    let trace = b.finish().expect("structurally valid");
    let path = tmp("cyclic.trace");
    std::fs::write(&path, cafa_trace::to_text_string(&trace)).unwrap();

    let out = cafa(&["analyze", path.to_str().unwrap()]);
    assert!(!out.status.success(), "cyclic trace must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cyclic"), "{err}");
    assert!(err.contains("@record"), "error names cycle nodes: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_threads_flag_is_byte_stable() {
    let path = tmp("threads.trace");
    assert!(cafa(&["record", "music", "--out", path.to_str().unwrap()])
        .status
        .success());
    let one = cafa(&[
        "analyze",
        path.to_str().unwrap(),
        "--json",
        "--threads",
        "1",
    ]);
    assert!(one.status.success());
    let eight = cafa(&[
        "analyze",
        path.to_str().unwrap(),
        "--json",
        "--threads",
        "8",
    ]);
    assert!(eight.status.success());
    assert_eq!(
        stdout(&one),
        stdout(&eight),
        "thread count leaks into report"
    );

    let bad = cafa(&["analyze", path.to_str().unwrap(), "--threads", "zero"]);
    assert!(!bad.status.success());
    std::fs::remove_file(&path).ok();
}

#[test]
fn stats_format_json_is_machine_readable() {
    let path = tmp("stats.trace");
    assert!(cafa(&["record", "vlc", "--out", path.to_str().unwrap()])
        .status
        .success());
    let out = cafa(&["stats", path.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('{'));
    for key in [
        "\"app\"",
        "\"tasks\"",
        "\"events\"",
        "\"frees\"",
        "\"sends\"",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn convert_roundtrips_formats() {
    let text_path = tmp("conv.trace");
    let bin_path = tmp("conv.bin");
    let back_path = tmp("conv2.trace");
    assert!(
        cafa(&["record", "vlc", "--out", text_path.to_str().unwrap()])
            .status
            .success()
    );
    assert!(cafa(&[
        "convert",
        text_path.to_str().unwrap(),
        bin_path.to_str().unwrap()
    ])
    .status
    .success());
    assert!(cafa(&[
        "convert",
        bin_path.to_str().unwrap(),
        back_path.to_str().unwrap()
    ])
    .status
    .success());
    let original = std::fs::read_to_string(&text_path).unwrap();
    let roundtripped = std::fs::read_to_string(&back_path).unwrap();
    assert_eq!(original, roundtripped, "text -> binary -> text is stable");
    for p in [&text_path, &bin_path, &back_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn order_command_explains() {
    let path = tmp("order.trace");
    let out = cafa(&["record", "music", "--out", path.to_str().unwrap()]);
    assert!(out.status.success());
    // t0 is the first pattern thread; its record 1 (the post) is
    // ordered before the posted event's records... simplest: ask about
    // two records in the same task.
    let out = cafa(&["order", path.to_str().unwrap(), "t0", "0", "t0", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("happens-before"));

    let out = cafa(&["order", path.to_str().unwrap(), "t9999", "0", "t0", "0"]);
    assert!(!out.status.success());
    std::fs::remove_file(&path).ok();
}

/// Spawns `cafa serve --listen 127.0.0.1:0 [args]` and returns the
/// child plus the bound address parsed from its stderr.
fn spawn_serve(args: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cafa"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let line = lines
        .next()
        .expect("serve announces its address")
        .expect("stderr is utf-8");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_owned();
    (child, addr)
}

/// The PR 2 serve bug, pinned at the CLI: one server process keeps
/// accepting connections, and every `cafa push` session's report is
/// byte-identical to batch `analyze --format json`.
#[test]
fn serve_listen_handles_sequential_pushes_from_one_process() {
    let path = tmp("serve-tcp.bin");
    assert!(cafa(&[
        "record",
        "vlc",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap()
    ])
    .status
    .success());
    let batch = cafa(&["analyze", path.to_str().unwrap(), "--json"]);
    assert!(batch.status.success());
    let expected = stdout(&batch);

    let (mut server, addr) = spawn_serve(&["--threads", "2"]);
    for session in ["device-a", "device-b"] {
        let out = cafa(&[
            "push",
            path.to_str().unwrap(),
            "--connect",
            &addr,
            "--session",
            session,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(stdout(&out), expected, "session {session}");
    }
    server.kill().ok();
    server.wait().ok();
    std::fs::remove_file(&path).ok();
}

/// Serve failures are typed errors carrying their context: binding an
/// occupied port names the address and exits nonzero, and a memory
/// budget without a state directory is rejected up front.
#[test]
fn serve_errors_carry_context_and_exit_nonzero() {
    // Occupy a port, then ask serve to bind it.
    let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = holder.local_addr().expect("addr").to_string();
    let out = cafa(&["serve", "--listen", &addr]);
    assert!(!out.status.success(), "bind conflict must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(&format!("cannot listen on {addr}")),
        "error names the address: {err}"
    );

    let out = cafa(&["serve", "--listen", "127.0.0.1:0", "--memory-budget", "1M"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--state-dir"), "{err}");

    // TCP-only flags are refused in stdin mode rather than ignored.
    let out = cafa(&["serve", "--memory-budget", "1M"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("require --listen"), "{err}");
}

/// `cafa push` against a dead address is a typed connect error naming
/// the address, with a nonzero exit.
#[test]
fn push_to_unreachable_server_fails_with_address() {
    let path = tmp("push-dead.bin");
    assert!(cafa(&[
        "record",
        "vlc",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap()
    ])
    .status
    .success());
    // A port nothing listens on: bind-then-drop reserves and frees it.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = cafa(&[
        "push",
        path.to_str().unwrap(),
        "--connect",
        &addr,
        "--session",
        "dev",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains(&addr), "error names the address: {err}");
    std::fs::remove_file(&path).ok();
}
