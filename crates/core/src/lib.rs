//! Use-free race detection for event-driven traces.
//!
//! Implements §4 and §5.3 of *"Race Detection for Event-Driven Mobile
//! Applications"* (Yu et al., PLDI 2014): finding **use-free races** —
//! a pointer read that is later dereferenced (*use*), concurrent with a
//! null store to the same pointer (*free*) — under the CAFA causality
//! model of `cafa-hb`, with the paper's two false-positive-pruning
//! heuristics (**if-guard** and **intra-event-allocation**) and the
//! lockset mutual-exclusion filter.
//!
//! Alongside the main [`Analyzer`], the crate ships the comparison
//! machinery the paper's evaluation needs:
//!
//! * [`lowlevel::count_races`] — conventional-definition data-race
//!   counting (the "1,664 races in a 30-second ConnectBot trace"
//!   measurement of §4.1);
//! * [`fasttrack::fasttrack`] — a genuine FastTrack baseline with
//!   epochs and adaptive read states, treating each looper as one
//!   thread;
//! * classification of each reported race as intra-thread /
//!   inter-thread / conventional — the three "true races" columns of
//!   Table 1.
//!
//! # Examples
//!
//! ```
//! use cafa_trace::{TraceBuilder, VarId, ObjId, Pc, DerefKind};
//! use cafa_core::Analyzer;
//!
//! // Two concurrent events on one looper: one uses a pointer, the
//! // other frees it — the paper's Figure 1 in miniature.
//! let mut b = TraceBuilder::new("quickstart");
//! let p = b.add_process();
//! let q = b.add_queue(p);
//! let svc = b.add_process();
//! let ipc = b.add_thread(svc, "binder");
//! let user = b.post(ipc, q, "onServiceConnected", 0);
//! let killer = b.external(q, "onDestroy");
//! b.process_event(user);
//! b.obj_read(user, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x1010));
//! b.deref(user, ObjId::new(1), Pc::new(0x1014), DerefKind::Invoke);
//! b.process_event(killer);
//! b.obj_write(killer, VarId::new(0), None, Pc::new(0x2010));
//! let trace = b.finish().unwrap();
//!
//! let report = Analyzer::new().analyze(&trace).unwrap();
//! assert_eq!(report.races.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod detector;
mod filters;
mod partition;
mod report;

pub mod context;
pub mod fasttrack;
pub mod json;
pub mod lowlevel;

// Use/free extraction lives in `cafa-engine` (shared with sessions);
// re-export it, and the session machinery, under the historical paths.
pub use cafa_engine::usefree;
pub use cafa_engine::{AnalysisSession, PassRecord, PassStats, SessionStats};

pub use detector::{Analyzer, DetectorConfig, DetectorKind};
pub use filters::FilterReason;
pub use partition::{PartitionMode, PartitionStats, AUTO_MIN_RECORDS, MAX_BATCHES};
pub use report::{
    DetectStats, FilteredCandidate, PredictClass, PredictiveRace, PredictiveSection,
    PredictiveStats, RaceClass, RaceReport, UseFreeRace,
};
pub use usefree::{extract, AllocSite, FreeSite, GuardSite, MemoryOps, UseSite, VarOps};
