//! The use-free race detector (§4).
//!
//! The detection path is a sequence of named passes over an
//! [`AnalysisSession`]: `extract` (uses/frees/allocations/guards) →
//! `hb-build` (the CAFA happens-before fixpoint) → `candidates`
//! (concurrent (use, free) pairs per pointer variable) → `filters`
//! (lockset, if-guard, and intra-event-allocation suppression) →
//! `baseline-hb` (the conventional model, built lazily and only when a
//! cross-looper race needs classification) → `classify`. Per-pass wall
//! time and item counts land in
//! [`DetectStats::passes`](crate::report::DetectStats); shared state
//! (memory ops, models) lives in the session so repeated analyses of
//! one trace reuse it.

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use cafa_engine::{AnalysisSession, PassStats};
use cafa_hb::{CausalityConfig, HbError, HbModel, LockSets};
use cafa_predict::PredictModel;
use cafa_trace::{Pc, Trace, VarId};

use crate::filters::{alloc_after_free, alloc_before_use, if_guarded, FilterReason};
use crate::partition::PartitionMode;
use crate::report::{
    DetectStats, FilteredCandidate, PredictClass, PredictiveRace, PredictiveSection,
    PredictiveStats, RaceClass, RaceReport, UseFreeRace,
};
use crate::usefree::{FreeSite, MemoryOps, UseSite};

/// Which detection backend(s) a run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorKind {
    /// The paper's single-trace happens-before pipeline (default).
    /// Output is byte-identical to every release before the predictive
    /// backend existed.
    #[default]
    Hb,
    /// Additionally build the predictive (weaker-than-HB) relation of
    /// `cafa-predict` over the same session and attach its findings as
    /// the report's predictive section.
    Predictive,
    /// Run both relations in one pass and classify every predictive
    /// report as `both` or `predictive-only` against the HB report set
    /// — the per-backend comparison mode. Computationally identical to
    /// [`DetectorKind::Predictive`]; renderers may present the two
    /// differently.
    Both,
}

impl DetectorKind {
    /// The CLI spellings, in the order `--detector` documents them.
    pub const VALID: [&'static str; 3] = ["hb", "predictive", "both"];

    /// Parses a CLI value (`hb` / `predictive` / `both`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hb" => Some(Self::Hb),
            "predictive" => Some(Self::Predictive),
            "both" => Some(Self::Both),
            _ => None,
        }
    }

    /// True when the predictive backend runs (`Predictive` or `Both`).
    pub fn runs_predictive(self) -> bool {
        !matches!(self, Self::Hb)
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectorKind::Hb => "hb",
            DetectorKind::Predictive => "predictive",
            DetectorKind::Both => "both",
        };
        f.write_str(s)
    }
}

/// Detector configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// The causality model races are judged against.
    pub causality: CausalityConfig,
    /// Apply the if-guard heuristic (§4.3).
    pub if_guard: bool,
    /// Apply the intra-event-allocation heuristic (§4.3).
    pub intra_event_alloc: bool,
    /// Suppress pairs protected by a common monitor (§3.2).
    pub lockset_filter: bool,
    /// Cap on dynamic (use, free) instance pairs examined per variable.
    /// Hitting the cap is recorded in
    /// [`DetectStats::truncated_vars`](crate::report::DetectStats) —
    /// never silent.
    pub max_pairs_per_var: usize,
    /// Drop uses whose dereference-to-read match is ambiguous (two
    /// recent reads of different variables observed the same object).
    /// Off by default — the paper's tool uses plain nearest-previous
    /// matching and pays Type III false positives for it; this switch
    /// implements the §6.3 suggestion of resolving the match precisely
    /// (trading those false positives for potential false negatives).
    pub drop_ambiguous_uses: bool,
    /// Worker threads for the reachability index build, the candidate
    /// pass, and the island-partitioned pipeline (`0` = auto:
    /// `CAFA_THREADS`, else the machine's parallelism). Reports are
    /// byte-identical at any setting; this only trades wall time.
    pub threads: usize,
    /// Island partitioning policy (see [`crate::PartitionMode`]):
    /// split the trace into causally independent sub-traces and
    /// analyze them concurrently, merging findings back into the
    /// monolithic order.
    pub partition: PartitionMode,
    /// Which backend(s) run: the HB pipeline alone (default), or the
    /// HB pipeline plus the predictive relation of `cafa-predict`.
    /// Non-default kinds force the monolithic path — the island fast
    /// path only implements the HB pipeline.
    pub detector: DetectorKind,
}

impl DetectorConfig {
    /// Full CAFA configuration: CAFA causality plus both heuristics and
    /// the lockset filter.
    pub fn cafa() -> Self {
        Self {
            causality: CausalityConfig::cafa(),
            if_guard: true,
            intra_event_alloc: true,
            lockset_filter: true,
            max_pairs_per_var: 10_000,
            drop_ambiguous_uses: false,
            threads: 0,
            partition: PartitionMode::Auto,
            detector: DetectorKind::Hb,
        }
    }

    /// CAFA with the §6.3 precise-matching fix: ambiguous
    /// dereference-to-read matches are dropped instead of reported.
    pub fn precise_matching() -> Self {
        Self {
            drop_ambiguous_uses: true,
            ..Self::cafa()
        }
    }

    /// CAFA causality with *no* pruning heuristics — the ablation the
    /// paper motivates §4.3 with.
    pub fn unfiltered() -> Self {
        Self {
            if_guard: false,
            intra_event_alloc: false,
            lockset_filter: false,
            ..Self::cafa()
        }
    }

    /// EventRacer-style ablation: no event-queue rules.
    pub fn no_queue_rules() -> Self {
        Self {
            causality: CausalityConfig::no_queue_rules(),
            ..Self::cafa()
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::cafa()
    }
}

/// The use-free race detector.
///
/// # Examples
///
/// Detecting the Figure 1 MyTracks race:
///
/// ```
/// use cafa_trace::{TraceBuilder, VarId, ObjId, Pc, DerefKind};
/// use cafa_core::{Analyzer, RaceClass};
///
/// // onServiceConnected is posted by a service thread while onDestroy
/// // comes from the user, so no rule orders them: a use-free race.
/// let mut b = TraceBuilder::new("MyTracks");
/// let app = b.add_process();
/// let q = b.add_queue(app);
/// let svc = b.add_process();
/// let ipc = b.add_thread(svc, "binder");
/// let connected = b.post(ipc, q, "onServiceConnected", 0);
/// let destroy = b.external(q, "onDestroy");
/// b.process_event(connected);
/// b.obj_read(connected, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x1010));
/// b.deref(connected, ObjId::new(1), Pc::new(0x1014), DerefKind::Invoke);
/// b.process_event(destroy);
/// b.obj_write(destroy, VarId::new(0), None, Pc::new(0x2010));
/// let trace = b.finish().unwrap();
///
/// let report = Analyzer::new().analyze(&trace).unwrap();
/// assert_eq!(report.races.len(), 1);
/// assert_eq!(report.races[0].class, RaceClass::IntraThread);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    config: DetectorConfig,
}

impl Analyzer {
    /// An analyzer with the full CAFA configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer with a custom configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Analyzes one trace.
    ///
    /// A thin facade: creates a single-trace [`AnalysisSession`] and
    /// delegates to [`analyze_with`](Self::analyze_with). Callers
    /// analyzing one trace repeatedly (several configs, or detector
    /// plus baselines) should create the session themselves and share
    /// it, so the extracted ops and happens-before models are reused.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] if the happens-before model cannot be built
    /// (cyclic relation or diverging fixpoint).
    pub fn analyze(&self, trace: &Trace) -> Result<RaceReport, HbError> {
        let session = AnalysisSession::new(trace);
        self.analyze_with(&session)
    }

    /// Analyzes the session's trace, reusing whatever the session has
    /// already computed (memory ops, cached models).
    ///
    /// The conventional classification baseline is built lazily: a
    /// race-free trace — the common case in CLI use and property tests
    /// — pays for one fixpoint, not two. Consequently a trace whose
    /// conventional model cannot be built only fails here when a
    /// cross-looper race actually needs it for classification.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] if a required happens-before model cannot
    /// be built.
    pub fn analyze_with(&self, session: &AnalysisSession<'_>) -> Result<RaceReport, HbError> {
        // Multi-island traces can take the partitioned path: analyze
        // each causally independent sub-trace on its own worker, then
        // merge back into the monolithic order (byte-identical JSON;
        // see `crate::partition`). The island fast path implements the
        // HB pipeline only; predictive runs stay monolithic.
        if self.config.detector == DetectorKind::Hb {
            if let Some(report) = crate::partition::try_partitioned(self, session)? {
                return Ok(report);
            }
        }

        let trace = session.trace();
        let start = Instant::now();
        let mut passes = PassStats::default();

        let ops = passes.run("extract", || {
            let ops = session.ops();
            (ops, ops.uses.len() + ops.frees.len())
        });

        let model = passes.run("hb-build", || match session.model(self.config.causality) {
            Ok(m) => {
                let events = m.events().len();
                (Ok(m), events)
            }
            Err(e) => (Err(e), 0),
        })?;

        let mut stats = DetectStats {
            events: trace.stats().events,
            derivation: model.stats(),
            ..DetectStats::default()
        };

        // Reachability preparation: the eager backend builds its
        // constant-time oracle here so every happens_before query below
        // — candidates and classification — becomes array lookups
        // instead of a DFS; the demand backend settles cones per query
        // instead. Item count (graph nodes) and all downstream answers
        // are thread-count-independent either way.
        let threads = cafa_hb::resolve_threads(self.config.threads);
        passes.run("reachability", || {
            let nodes = model.ensure_reachability(threads);
            ((), nodes)
        });

        let candidates = passes.run("candidates", || {
            let found = enumerate_candidates(&self.config, ops, &model, &mut stats);
            let count = found.len();
            (found, count)
        });

        let (filtered, survivors) = passes.run("filters", || {
            let locks = LockSets::new(trace);
            let mut filtered: Vec<FilteredCandidate> = Vec::new();
            let mut survivors: Vec<Candidate> = Vec::new();
            for c in candidates {
                match self.filter_reason(trace, &model, &locks, ops, &c.use_site, &c.free_site) {
                    Some(reason) => filtered.push(FilteredCandidate {
                        var: c.var,
                        use_site: c.use_site,
                        free_site: c.free_site,
                        reason,
                    }),
                    None => survivors.push(c),
                }
            }
            let count = filtered.len();
            ((filtered, survivors), count)
        });

        // The conventional baseline, for classification — lazy, and
        // served from the session cache when the main model *is* the
        // conventional one or another analysis already built it.
        let conventional = passes.run("baseline-hb", || {
            let needed = survivors
                .iter()
                .any(|c| !model.same_looper(c.use_site.at.task, c.free_site.at.task));
            if !needed {
                return (Ok(None), 0);
            }
            match session.model(CausalityConfig::conventional()) {
                Ok(m) => {
                    m.ensure_reachability(threads);
                    let events = m.events().len();
                    (Ok(Some(m)), events)
                }
                Err(e) => (Err(e), 0),
            }
        })?;

        let races = passes.run("classify", || {
            let races: Vec<UseFreeRace> = survivors
                .into_iter()
                .map(|c| {
                    let class = classify(&model, conventional.as_deref(), &c);
                    UseFreeRace {
                        var: c.var,
                        use_site: c.use_site,
                        free_site: c.free_site,
                        class,
                    }
                })
                .collect();
            let count = races.len();
            (races, count)
        });

        // The predictive backend, sharing the session's extracted ops
        // and the already-built HB model (for same-looper topology and
        // the both/predictive-only classification).
        let predictive = if self.config.detector.runs_predictive() {
            let pmodel = passes.run("predict-build", || {
                match PredictModel::build(trace, self.config.threads) {
                    Ok(m) => {
                        let edges = m.stats().derived_edges;
                        (Ok(m), edges)
                    }
                    Err(e) => (Err(HbError::from(e)), 0),
                }
            })?;
            let section = passes.run("predict-candidates", || {
                let s = predictive_section(&self.config, ops, &model, &pmodel, trace, &races);
                let count = s.races.len();
                (s, count)
            });
            Some(section)
        } else {
            None
        };

        stats.passes = passes;
        Ok(RaceReport {
            app: trace.meta().app.clone(),
            races,
            filtered,
            stats,
            predictive,
            elapsed: start.elapsed(),
        })
    }

    fn filter_reason(
        &self,
        _trace: &Trace,
        model: &HbModel,
        locks: &LockSets,
        ops: &MemoryOps,
        use_site: &UseSite,
        free_site: &FreeSite,
    ) -> Option<FilterReason> {
        if self.config.lockset_filter && locks.common(use_site.at, free_site.at).is_some() {
            return Some(FilterReason::CommonLock);
        }
        // The if-guard and intra-event-allocation heuristics rely on
        // event atomicity: "only applicable to events that are sent to
        // the same event queue and processed by the same looper thread"
        // (§4.3).
        let same_looper = model.same_looper(use_site.at.task, free_site.at.task);
        if !same_looper {
            return None;
        }
        if self.config.intra_event_alloc {
            if alloc_before_use(ops, use_site) {
                return Some(FilterReason::AllocBeforeUse);
            }
            if alloc_after_free(ops, free_site) {
                return Some(FilterReason::AllocAfterFree);
            }
        }
        if self.config.if_guard && if_guarded(ops, use_site) {
            return Some(FilterReason::IfGuard);
        }
        None
    }
}

/// A deduplicated, unordered (use, free) pair awaiting filtering and
/// classification.
struct Candidate {
    var: VarId,
    use_site: UseSite,
    free_site: FreeSite,
}

/// The `candidates` pass: enumerates concurrent (use, free) pairs per
/// pointer variable, deduplicated by (variable, use pc, free pc), with
/// the per-variable pair cap recorded in `stats`.
///
/// Variables fan out across the scoped worker pool; each worker
/// resolves its pairs through the model's reachability index. Per-var
/// enumeration is fully independent — the dedup key is scoped to the
/// variable and the pair cap is per-variable — and the merge walks the
/// sorted variable list in input order, so the result (including
/// candidate order and every statistic) is identical at any thread
/// count.
fn enumerate_candidates(
    config: &DetectorConfig,
    ops: &MemoryOps,
    model: &HbModel,
    stats: &mut DetectStats,
) -> Vec<Candidate> {
    let candidate_vars: Vec<VarId> = {
        let mut v: Vec<VarId> = ops.candidate_vars().collect();
        v.sort_unstable();
        v
    };
    stats.candidate_vars = candidate_vars.len();

    /// One variable's enumeration result.
    struct VarResult {
        found: Vec<Candidate>,
        pairs_checked: usize,
        truncated: bool,
    }

    let threads = cafa_hb::resolve_threads(config.threads);
    let per_var = cafa_engine::fleet::map(&candidate_vars, threads, |&var| {
        let vo = ops.var_ops(var).expect("candidate var has ops");
        let mut found: Vec<Candidate> = Vec::new();
        let mut seen: HashSet<(Pc, Pc)> = HashSet::new();
        let mut pairs_checked = 0usize;
        let mut truncated = false;
        'pairs: for &ui in &vo.uses {
            for &fi in &vo.frees {
                let use_site = ops.uses[ui];
                let free_site = ops.frees[fi];
                if use_site.at.task == free_site.at.task {
                    continue;
                }
                if config.drop_ambiguous_uses && use_site.ambiguous {
                    continue;
                }
                if pairs_checked >= config.max_pairs_per_var {
                    truncated = true;
                    break 'pairs;
                }
                pairs_checked += 1;

                let key = (use_site.read_pc, free_site.pc);
                if seen.contains(&key) {
                    continue;
                }
                if model.happens_before(use_site.at, free_site.at)
                    || model.happens_before(free_site.at, use_site.at)
                {
                    continue; // ordered: no race for this instance
                }
                seen.insert(key);
                found.push(Candidate {
                    var,
                    use_site,
                    free_site,
                });
            }
        }
        VarResult {
            found,
            pairs_checked,
            truncated,
        }
    });

    let mut found: Vec<Candidate> = Vec::new();
    for (&var, r) in candidate_vars.iter().zip(per_var) {
        stats.pairs_checked += r.pairs_checked;
        if r.truncated {
            stats.truncated_vars.push(var);
        }
        found.extend(r.found);
    }
    found
}

/// The `predict-candidates` pass: enumerates predictively-concurrent
/// (use, free) pairs, applies the predictive filter discipline, and
/// classifies each survivor against the HB report set.
///
/// Enumeration mirrors [`enumerate_candidates`] — per-variable fan-out
/// over the fleet pool, (use pc, free pc) dedup, the per-variable pair
/// cap — but asks the predictive order instead of HB, so the result is
/// identical at any thread count for the same reasons. Filtering
/// differs in exactly one rule: a common monitor suppresses a pair
/// only when the two tasks also conflict on state *beyond* the racing
/// variable ([`PredictModel::tasks_conflict_besides`]) — a lock whose
/// sections touch only the racing pointer does not pin their order, so
/// the pair stays reportable and replay adjudicates. The same-looper
/// if-guard and intra-event-allocation heuristics apply unchanged:
/// they reason about event atomicity, which the predictive relation
/// preserves.
fn predictive_section(
    config: &DetectorConfig,
    ops: &MemoryOps,
    model: &HbModel,
    pmodel: &PredictModel,
    trace: &Trace,
    hb_races: &[UseFreeRace],
) -> PredictiveSection {
    let p = pmodel.stats();
    let mut stats = PredictiveStats {
        rounds: p.rounds,
        derived_edges: p.derived_edges,
        gated: p.gated,
        external_edges: p.external_edges,
        ..PredictiveStats::default()
    };
    let hb_keys: HashSet<(VarId, Pc, Pc)> = hb_races
        .iter()
        .map(|r| (r.var, r.use_site.read_pc, r.free_site.pc))
        .collect();
    let locks = LockSets::new(trace);

    let candidate_vars: Vec<VarId> = {
        let mut v: Vec<VarId> = ops.candidate_vars().collect();
        v.sort_unstable();
        v
    };

    /// One variable's predictive enumeration result.
    struct VarResult {
        found: Vec<PredictiveRace>,
        pairs_checked: usize,
        filtered: usize,
        truncated: bool,
    }

    let threads = cafa_hb::resolve_threads(config.threads);
    let per_var = cafa_engine::fleet::map(&candidate_vars, threads, |&var| {
        let vo = ops.var_ops(var).expect("candidate var has ops");
        let mut found: Vec<PredictiveRace> = Vec::new();
        let mut seen: HashSet<(Pc, Pc)> = HashSet::new();
        let mut pairs_checked = 0usize;
        let mut filtered = 0usize;
        let mut truncated = false;
        'pairs: for &ui in &vo.uses {
            for &fi in &vo.frees {
                let use_site = ops.uses[ui];
                let free_site = ops.frees[fi];
                if use_site.at.task == free_site.at.task {
                    continue;
                }
                if config.drop_ambiguous_uses && use_site.ambiguous {
                    continue;
                }
                if pairs_checked >= config.max_pairs_per_var {
                    truncated = true;
                    break 'pairs;
                }
                pairs_checked += 1;

                let key = (use_site.read_pc, free_site.pc);
                if seen.contains(&key) {
                    continue;
                }
                if pmodel.happens_before(use_site.at, free_site.at)
                    || pmodel.happens_before(free_site.at, use_site.at)
                {
                    continue; // predictive-ordered: no feasible flip
                }
                seen.insert(key);
                if predictive_filtered(
                    config, model, pmodel, &locks, ops, var, &use_site, &free_site,
                ) {
                    filtered += 1;
                    continue;
                }
                let class = if hb_keys.contains(&(var, use_site.read_pc, free_site.pc)) {
                    PredictClass::Both
                } else {
                    PredictClass::PredictiveOnly
                };
                found.push(PredictiveRace {
                    var,
                    use_site,
                    free_site,
                    class,
                });
            }
        }
        VarResult {
            found,
            pairs_checked,
            filtered,
            truncated,
        }
    });

    let mut races: Vec<PredictiveRace> = Vec::new();
    for r in per_var {
        stats.pairs_checked += r.pairs_checked;
        stats.filtered += r.filtered;
        if r.truncated {
            stats.truncated_vars += 1;
        }
        races.extend(r.found);
    }
    PredictiveSection { races, stats }
}

/// The predictive filter discipline for one predictively-concurrent
/// pair (see [`predictive_section`]).
#[allow(clippy::too_many_arguments)]
fn predictive_filtered(
    config: &DetectorConfig,
    model: &HbModel,
    pmodel: &PredictModel,
    locks: &LockSets,
    ops: &MemoryOps,
    var: VarId,
    use_site: &UseSite,
    free_site: &FreeSite,
) -> bool {
    if config.lockset_filter
        && locks.common(use_site.at, free_site.at).is_some()
        && pmodel.tasks_conflict_besides(use_site.at.task, free_site.at.task, var)
    {
        return true;
    }
    if !model.same_looper(use_site.at.task, free_site.at.task) {
        return false;
    }
    if config.intra_event_alloc
        && (alloc_before_use(ops, use_site) || alloc_after_free(ops, free_site))
    {
        return true;
    }
    config.if_guard && if_guarded(ops, use_site)
}

/// The `classify` step for one surviving candidate: relate it to the
/// conventional baseline (Table 1's three "true race" columns).
/// `conventional` is `Some` whenever any survivor crosses loopers.
fn classify(model: &HbModel, conventional: Option<&HbModel>, c: &Candidate) -> RaceClass {
    if model.same_looper(c.use_site.at.task, c.free_site.at.task) {
        return RaceClass::IntraThread;
    }
    let conventional = conventional.expect("baseline-hb pass built the conventional model");
    if conventional.happens_before(c.use_site.at, c.free_site.at)
        || conventional.happens_before(c.free_site.at, c.use_site.at)
    {
        RaceClass::InterThread
    } else {
        RaceClass::Conventional
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{BranchKind, DerefKind, MonitorId, ObjId, TraceBuilder};

    /// Figure 1: the MyTracks use-after-free is an intra-thread race.
    #[test]
    fn detects_figure1_race() {
        let mut b = TraceBuilder::new("MyTracks");
        let app = b.add_process();
        let q = b.add_queue(app);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let resume = b.external(q, "onResume");
        b.process_event(resume);
        let (txn, _) = b.rpc_call(resume);
        b.rpc_handle(ipc, txn);
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        b.obj_read(
            connected,
            VarId::new(0),
            Some(ObjId::new(1)),
            Pc::new(0x1010),
        );
        b.deref(connected, ObjId::new(1), Pc::new(0x1014), DerefKind::Invoke);
        b.process_event(destroy);
        b.obj_write(destroy, VarId::new(0), None, Pc::new(0x2010));
        let trace = b.finish().unwrap();

        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].class, RaceClass::IntraThread);
        assert_eq!(report.stats.candidate_vars, 1);
        assert!(report.filtered.is_empty());
    }

    /// Figure 5: guarded and allocation-dominated uses are filtered.
    #[test]
    fn figure5_commutative_events_are_filtered() {
        // Posting from three independent threads keeps the three
        // events logically concurrent.
        let mut b = TraceBuilder::new("fig5");
        let p = b.add_process();
        let q = b.add_queue(p);
        let handler = VarId::new(0);
        let o = ObjId::new(1);
        let t1 = b.add_thread(p, "src1");
        let t2 = b.add_thread(p, "src2");
        let t3 = b.add_thread(p, "src3");
        let pause = b.post(t1, q, "onPause", 0);
        let focus = b.post(t2, q, "onFocus", 0);
        let resume = b.post(t3, q, "onResume", 0);

        b.process_event(pause);
        b.obj_write(pause, handler, None, Pc::new(0x1010)); // free

        b.process_event(focus);
        b.obj_read(focus, handler, Some(o), Pc::new(0x2010));
        b.guard(
            focus,
            BranchKind::IfEqz,
            Pc::new(0x2014),
            Pc::new(0x2030),
            o,
        );
        b.obj_read(focus, handler, Some(o), Pc::new(0x2018));
        b.deref(focus, o, Pc::new(0x201c), DerefKind::Invoke);

        b.process_event(resume);
        let o2 = ObjId::new(2);
        b.obj_write(resume, handler, Some(o2), Pc::new(0x3010)); // alloc
        b.obj_read(resume, handler, Some(o2), Pc::new(0x3014));
        b.deref(resume, o2, Pc::new(0x3018), DerefKind::Invoke);

        let trace = b.finish().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 0, "both patterns are commutative");
        // The guarded onFocus use: note the *first* read (0x2010) is
        // before the guard, so only the post-guard read is a use-pair
        // candidate... both reads are uses (each matched by the deref?
        // no: one deref matches the nearest read 0x2018). The alloc
        // pattern is filtered too.
        assert_eq!(report.filtered.len(), 2);
        let reasons: Vec<FilterReason> = report.filtered.iter().map(|f| f.reason).collect();
        assert!(reasons.contains(&FilterReason::IfGuard));
        assert!(reasons.contains(&FilterReason::AllocBeforeUse));
    }

    /// The same patterns against a *thread* free are NOT filtered: the
    /// heuristics require same-looper atomicity.
    #[test]
    fn heuristics_do_not_apply_across_threads() {
        let mut b = TraceBuilder::new("cross");
        let p = b.add_process();
        let q = b.add_queue(p);
        let worker = b.add_thread(p, "worker");
        let t2 = b.add_thread(p, "src");
        let handler = VarId::new(0);
        let o = ObjId::new(1);

        b.obj_write(worker, handler, None, Pc::new(0x1010)); // free in thread

        let focus = b.post(t2, q, "onFocus", 0);
        b.process_event(focus);
        b.obj_read(focus, handler, Some(o), Pc::new(0x2010));
        b.guard(
            focus,
            BranchKind::IfEqz,
            Pc::new(0x2014),
            Pc::new(0x2030),
            o,
        );
        b.obj_read(focus, handler, Some(o), Pc::new(0x2018));
        b.deref(focus, o, Pc::new(0x201c), DerefKind::Invoke);

        let trace = b.finish().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(
            report.races.len(),
            1,
            "guard does not protect against threads"
        );
        assert_eq!(report.races[0].class, RaceClass::Conventional);
    }

    /// Lockset filter: both sides under the same monitor.
    #[test]
    fn common_lock_suppresses() {
        let mut b = TraceBuilder::new("locks");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let v = VarId::new(0);
        let o = ObjId::new(1);
        let m = MonitorId::new(0);
        b.lock(a, m, 0);
        b.obj_read(a, v, Some(o), Pc::new(0x1010));
        b.deref(a, o, Pc::new(0x1014), DerefKind::Field);
        b.unlock(a, m, 0);
        b.lock(c, m, 1);
        b.obj_write(c, v, None, Pc::new(0x2010));
        b.unlock(c, m, 1);
        let trace = b.finish().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert!(report.races.is_empty());
        assert_eq!(report.filtered.len(), 1);
        assert_eq!(report.filtered[0].reason, FilterReason::CommonLock);

        // Without the lockset filter it is reported (CAFA has no
        // unlock→lock order).
        let mut cfg = DetectorConfig::cafa();
        cfg.lockset_filter = false;
        let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1);
    }

    /// Class (b): the conventional model orders thread-free vs event-use
    /// through the total event order; CAFA does not.
    #[test]
    fn inter_thread_class_requires_conventional_ordering() {
        let mut b = TraceBuilder::new("classb");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "worker");
        let v = VarId::new(0);
        let o = ObjId::new(1);

        // Thread frees, then posts bridge event A (processed first).
        b.obj_write(t, v, None, Pc::new(0x1010));
        let bridge = b.post(t, q, "bridge", 0);
        b.process_event(bridge);
        // Later event B (external) uses the pointer.
        let use_ev = b.external(q, "useEv");
        b.process_event(use_ev);
        b.obj_read(use_ev, v, Some(o), Pc::new(0x2010));
        b.deref(use_ev, o, Pc::new(0x2014), DerefKind::Field);
        let trace = b.finish().unwrap();

        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1);
        // Conventional: free ≺ send ≺ begin(bridge) ≺ (total order)
        // begin(useEv) ≺ use — ordered, so only CAFA reports it.
        assert_eq!(report.races[0].class, RaceClass::InterThread);
    }

    /// Deduplication: repeated dynamic instances of the same statement
    /// pair produce one report.
    #[test]
    fn dynamic_instances_dedup() {
        let mut b = TraceBuilder::new("dedup");
        let p = b.add_process();
        let q = b.add_queue(p);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        let mut srcs = Vec::new();
        for i in 0..4 {
            let t = b.add_thread(p, &format!("src{i}"));
            srcs.push(t);
        }
        for &src in srcs.iter().take(4) {
            let use_ev = b.post(src, q, "useEv", 0);
            b.process_event(use_ev);
            b.obj_read(use_ev, v, Some(o), Pc::new(0x1010));
            b.deref(use_ev, o, Pc::new(0x1014), DerefKind::Field);
            let free_ev = b.post(src, q, "freeEv", 1000);
            b.process_event(free_ev);
            b.obj_write(free_ev, v, None, Pc::new(0x2010));
        }
        let trace = b.finish().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1, "same statement pair reported once");
        assert!(report.stats.pairs_checked > 1);
    }

    /// `--detector` spellings round-trip; unknown values are rejected.
    #[test]
    fn detector_kind_parses_and_displays() {
        for (s, k) in [
            ("hb", DetectorKind::Hb),
            ("predictive", DetectorKind::Predictive),
            ("both", DetectorKind::Both),
        ] {
            assert_eq!(DetectorKind::parse(s), Some(k));
            assert_eq!(k.to_string(), s);
            assert!(DetectorKind::VALID.contains(&s));
        }
        assert_eq!(DetectorKind::parse("wcp"), None);
        assert_eq!(DetectorConfig::cafa().detector, DetectorKind::Hb);
        assert!(!DetectorKind::Hb.runs_predictive());
        assert!(DetectorKind::Both.runs_predictive());
    }

    /// The default HB detector attaches no predictive section — its
    /// report (and JSON) is byte-identical to pre-predictive builds.
    #[test]
    fn hb_detector_has_no_predictive_section() {
        let mut b = TraceBuilder::new("plain");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.write(t, VarId::new(0));
        let trace = b.finish().unwrap();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert!(report.predictive.is_none());
        let json = crate::json::render_json(&report, &trace);
        assert!(!json.contains("predictive"));
    }

    /// Every HB race is also predictively concurrent (the predictive
    /// order is a subset of HB), so under `--detector both` it shows
    /// up in the predictive section classified `both`.
    #[test]
    fn hb_races_classify_as_both() {
        let mut b = TraceBuilder::new("shared");
        let p = b.add_process();
        let q = b.add_queue(p);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        b.obj_read(
            connected,
            VarId::new(0),
            Some(ObjId::new(1)),
            Pc::new(0x1010),
        );
        b.deref(connected, ObjId::new(1), Pc::new(0x1014), DerefKind::Invoke);
        b.process_event(destroy);
        b.obj_write(destroy, VarId::new(0), None, Pc::new(0x2010));
        let trace = b.finish().unwrap();

        let mut cfg = DetectorConfig::cafa();
        cfg.detector = DetectorKind::Both;
        let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1);
        let section = report.predictive.expect("both runs the backend");
        assert_eq!(section.races.len(), 1);
        assert_eq!(section.races[0].class, crate::report::PredictClass::Both);
        // The passes ran and were recorded for `--timings`.
        let names: Vec<&str> = report.stats.passes.records.iter().map(|r| r.name).collect();
        assert!(names.contains(&"predict-build"));
        assert!(names.contains(&"predict-candidates"));
    }

    /// The predictive lockset relaxation: a monitor whose critical
    /// sections touch only the racing pointer does not order them, so
    /// the HB-filtered pair resurfaces as `predictive-only`; add a
    /// second shared variable to the sections and the suppression
    /// comes back.
    #[test]
    fn lock_handoff_is_predictive_only() {
        let build = |extra_shared: bool| {
            let mut b = TraceBuilder::new("handoff");
            let p = b.add_process();
            let a = b.add_thread(p, "a");
            let c = b.add_thread(p, "c");
            let v = VarId::new(0);
            let noise = VarId::new(1);
            let o = ObjId::new(1);
            let m = MonitorId::new(0);
            b.lock(a, m, 0);
            b.obj_read(a, v, Some(o), Pc::new(0x1010));
            b.deref(a, o, Pc::new(0x1014), DerefKind::Invoke);
            if extra_shared {
                b.write(a, noise);
            }
            b.unlock(a, m, 0);
            b.lock(c, m, 1);
            b.obj_write(c, v, None, Pc::new(0x2010));
            if extra_shared {
                b.write(c, noise);
            }
            b.unlock(c, m, 1);
            b.finish().unwrap()
        };

        let mut cfg = DetectorConfig::cafa();
        cfg.detector = DetectorKind::Both;

        let trace = build(false);
        let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
        assert!(report.races.is_empty(), "HB keeps the lockset filter");
        assert_eq!(report.filtered.len(), 1);
        let section = report.predictive.as_ref().unwrap();
        assert_eq!(section.races.len(), 1);
        assert_eq!(
            section.races[0].class,
            crate::report::PredictClass::PredictiveOnly
        );

        let trace = build(true);
        let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
        let section = report.predictive.as_ref().unwrap();
        assert!(
            section.races.is_empty(),
            "sections conflicting beyond the racing var keep the filter"
        );
        assert_eq!(section.stats.filtered, 1);
    }

    /// The pair cap is honored and recorded, never silent.
    #[test]
    fn pair_cap_is_recorded() {
        let mut b = TraceBuilder::new("cap");
        let p = b.add_process();
        let q = b.add_queue(p);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        for i in 0..4 {
            let t = b.add_thread(p, &format!("s{i}"));
            let e = b.post(t, q, "ev", 0);
            b.process_event(e);
            b.obj_read(e, v, Some(o), Pc::new(0x1010));
            b.deref(e, o, Pc::new(0x1014), DerefKind::Field);
            b.obj_write(e, v, None, Pc::new(0x2010));
        }
        let trace = b.finish().unwrap();
        let mut cfg = DetectorConfig::cafa();
        cfg.max_pairs_per_var = 2;
        let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
        assert_eq!(report.stats.truncated_vars, vec![v]);
        assert!(report.stats.pairs_checked <= 2);
    }
}
