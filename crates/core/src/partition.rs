//! Island-partitioned analysis: one trace, all cores.
//!
//! Real event-driven traces decompose into many causally independent
//! *islands* — weakly-connected components of the causality skeleton
//! (see [`cafa_engine::partition`]). No happens-before edge, candidate
//! pair, lockset, or conventional-baseline ordering ever crosses an
//! island boundary, so each island can be projected into a
//! self-contained sub-trace ([`Trace::project`]) and pushed through
//! the unmodified monolithic pipeline on its own fleet worker. The
//! per-island findings are then merged back into the exact monolithic
//! order, making the final report (and its JSON rendering)
//! **byte-identical** to the single-threaded path at every thread
//! count.
//!
//! # Why the merge is deterministic
//!
//! The monolithic candidate pass emits findings sorted by variable id,
//! and within one variable in use-major × free-minor extraction order.
//! Three facts make the partitioned path reproduce this exactly:
//!
//! 1. **Variables never straddle islands.** The skeleton has an edge
//!    between any two tasks accessing the same variable, so each
//!    variable's uses and frees live wholly inside one island (hence
//!    one batch), and per-variable findings are computed by exactly
//!    one worker over exactly the sites the monolithic pass saw.
//! 2. **Projection preserves extraction order.** Tasks keep their
//!    relative id order and bodies are copied verbatim, so each
//!    variable's use/free site lists are index-for-index those of the
//!    full trace (modulo task renumbering, undone at merge time).
//! 3. **Concatenate + stable sort by variable** therefore yields the
//!    monolithic global order regardless of how islands were grouped
//!    into batches or which worker finished first.
//!
//! Batching is a pure function of the partition (never of the thread
//! count): islands are greedily packed into at most [`MAX_BATCHES`]
//! record-balanced batches, amortizing the per-projection cost
//! (cloning the interner, copying bodies) over many islands.
//!
//! Counters sum the same way: `pairs_checked` and the per-variable
//! pair cap are variable-scoped, `candidate_vars` partitions across
//! batches, and derivation statistics add element-wise (rounds take
//! the max — islands derive concurrently). The JSON report contains
//! none of the wall times, so equality holds at the byte level.

use std::time::Instant;

use cafa_engine::{fleet, AnalysisSession, PassStats, TracePartition};
use cafa_hb::HbError;
use cafa_trace::{Projection, TaskId};

use crate::detector::{Analyzer, DetectorConfig};
use crate::report::{DetectStats, RaceReport};

/// When the detector splits a trace into islands.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionMode {
    /// Partition when it pays: more than one island, at least
    /// [`AUTO_MIN_RECORDS`] records, and no happens-before model for
    /// the configuration already cached on the session (a cached model
    /// — e.g. one grown by a streaming session — makes the monolithic
    /// path cheaper than re-deriving per island).
    #[default]
    Auto,
    /// Always analyze monolithically.
    Off,
    /// Partition whenever the trace has more than one island,
    /// regardless of size or cached models. Meant for differential
    /// tests; `Auto` is the right default everywhere else.
    Force,
}

impl PartitionMode {
    /// Parses a CLI value (`auto` / `off` / `force`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "off" => Some(Self::Off),
            "force" => Some(Self::Force),
            _ => None,
        }
    }
}

/// What the partition pass did, for `--timings` and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Weakly-connected components in the causality skeleton.
    pub islands: usize,
    /// Batches the islands were packed into (≤ [`MAX_BATCHES`]).
    pub batches: usize,
    /// Records in the largest single island — the lower bound on the
    /// critical path, however many workers run.
    pub largest_island_records: usize,
}

/// `Auto` partitions only at or above this many trace records; below
/// it, projection overhead beats the parallelism win.
pub const AUTO_MIN_RECORDS: usize = 10_000;

/// Upper bound on analysis batches. Island counts reach the tens of
/// thousands on fleet corpora; packing them into a fixed number of
/// record-balanced batches keeps per-projection overhead amortized
/// while still saturating any realistic worker pool.
pub const MAX_BATCHES: usize = 64;

/// Runs the partitioned pipeline if the mode, the trace, and the
/// session state call for it; `Ok(None)` means "analyze
/// monolithically".
///
/// # Errors
///
/// Propagates the first per-batch [`HbError`] in batch order. Task ids
/// inside the error refer to the failing *sub-trace*'s coordinates.
pub(crate) fn try_partitioned(
    analyzer: &Analyzer,
    session: &AnalysisSession<'_>,
) -> Result<Option<RaceReport>, HbError> {
    let config = *analyzer.config();
    let trace = session.trace();
    match config.partition {
        PartitionMode::Off => return Ok(None),
        PartitionMode::Auto => {
            if session.has_model(config.causality) {
                return Ok(None);
            }
            let total: usize = (0..trace.task_count())
                .map(|i| trace.body_len(TaskId::from_usize(i)) as usize)
                .sum();
            if total < AUTO_MIN_RECORDS {
                return Ok(None);
            }
        }
        PartitionMode::Force => {}
    }

    let start = Instant::now();
    let mut passes = PassStats::default();
    let part = passes.run("partition", || {
        let p = session.partition();
        let islands = p.len();
        (p, islands)
    });
    if part.len() <= 1 {
        return Ok(None);
    }

    let batches = plan_batches(&part, MAX_BATCHES);
    let inner_config = DetectorConfig {
        threads: 1,
        partition: PartitionMode::Off,
        ..config
    };
    let threads = cafa_hb::resolve_threads(config.threads);
    let results = fleet::map(&batches, threads, |tasks| {
        let projection = trace.project(tasks);
        // Islanded sessions keep the demand-driven HB backend even
        // though each sub-trace is small — the size heuristic
        // mispredicts on the many-island shape by ~10×.
        let inner = AnalysisSession::new_islanded(&projection.trace);
        Analyzer::with_config(inner_config)
            .analyze_with(&inner)
            .map(|report| unproject_report(report, &projection))
    });

    let mut reports = Vec::with_capacity(results.len());
    for result in results {
        reports.push(result?);
    }

    let mut stats = DetectStats {
        events: trace.stats().events,
        partition: Some(PartitionStats {
            islands: part.len(),
            batches: batches.len(),
            largest_island_records: part.largest_records(),
        }),
        ..DetectStats::default()
    };
    let mut races = Vec::new();
    let mut filtered = Vec::new();
    let merge_start = Instant::now();
    for report in reports {
        stats.candidate_vars += report.stats.candidate_vars;
        stats.pairs_checked += report.stats.pairs_checked;
        stats
            .truncated_vars
            .extend_from_slice(&report.stats.truncated_vars);
        let d = &report.stats.derivation;
        stats.derivation.rounds = stats.derivation.rounds.max(d.rounds);
        stats.derivation.instances += d.instances;
        stats.derivation.atomicity_edges += d.atomicity_edges;
        for (total, &batch) in stats.derivation.queue_edges.iter_mut().zip(&d.queue_edges) {
            *total += batch;
        }
        for pass in &report.stats.passes.records {
            passes.accumulate(pass.name, pass.wall, pass.items);
        }
        races.extend(report.races);
        filtered.extend(report.filtered);
    }
    // Stable: within one variable (always one batch) the findings are
    // already in monolithic enumeration order.
    races.sort_by_key(|r| r.var);
    filtered.sort_by_key(|f| f.var);
    stats.truncated_vars.sort_unstable();
    passes.accumulate("merge", merge_start.elapsed(), races.len() + filtered.len());

    stats.passes = passes;
    Ok(Some(RaceReport {
        app: trace.meta().app.clone(),
        races,
        filtered,
        stats,
        // Only reached under the default HB detector (`analyze_with`
        // keeps predictive runs monolithic).
        predictive: None,
        elapsed: start.elapsed(),
    }))
}

/// Packs islands into at most `max_batches` record-balanced batches:
/// islands in min-task-id order, each to the currently lightest batch
/// (ties to the lowest index). A pure function of the partition, so
/// batch composition — and with it every per-pass item count — is
/// identical at every thread count.
fn plan_batches(partition: &TracePartition, max_batches: usize) -> Vec<Vec<TaskId>> {
    let n = partition.len().min(max_batches).max(1);
    let mut loads = vec![0usize; n];
    let mut batches: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (tasks, &records) in partition.components.iter().zip(&partition.records) {
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, load)| *load)
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Even a record-less island costs a projection and a model.
        loads[slot] += records.max(1);
        batches[slot].extend_from_slice(tasks);
    }
    for batch in &mut batches {
        batch.sort_unstable();
    }
    batches
}

/// Rewrites a batch report's positions back to the source trace's
/// coordinates. Variables, program counters, and classes are
/// projection-invariant; only task ids moved.
fn unproject_report(mut report: RaceReport, projection: &Projection) -> RaceReport {
    for race in &mut report.races {
        race.use_site.at = projection.unproject(race.use_site.at);
        race.use_site.deref_at = projection.unproject(race.use_site.deref_at);
        race.free_site.at = projection.unproject(race.free_site.at);
    }
    for candidate in &mut report.filtered {
        candidate.use_site.at = projection.unproject(candidate.use_site.at);
        candidate.use_site.deref_at = projection.unproject(candidate.use_site.deref_at);
        candidate.free_site.at = projection.unproject(candidate.free_site.at);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::render_json;
    use cafa_trace::{DerefKind, ObjId, Pc, Trace, TraceBuilder, VarId};

    /// Many independent islands, each with one use-free race.
    fn island_trace(islands: usize) -> Trace {
        let mut b = TraceBuilder::new("islands");
        for i in 0..islands {
            let p = b.add_process();
            let q = b.add_queue(p);
            let t1 = b.add_thread(p, "src1");
            let t2 = b.add_thread(p, "src2");
            let v = VarId::from_usize(i);
            let o = ObjId::from_usize(i + 1);
            // Distinct posters keep the two events concurrent.
            let use_ev = b.post(t1, q, "useEv", 0);
            b.process_event(use_ev);
            b.obj_read(use_ev, v, Some(o), Pc::new(0x1010));
            b.deref(use_ev, o, Pc::new(0x1014), DerefKind::Field);
            let free_ev = b.post(t2, q, "freeEv", 0);
            b.process_event(free_ev);
            b.obj_write(free_ev, v, None, Pc::new(0x2010));
        }
        b.finish().unwrap()
    }

    fn config(mode: PartitionMode, threads: usize) -> DetectorConfig {
        DetectorConfig {
            partition: mode,
            threads,
            ..DetectorConfig::cafa()
        }
    }

    #[test]
    fn forced_partition_matches_monolithic_bytes() {
        let trace = island_trace(7);
        let monolithic = Analyzer::with_config(config(PartitionMode::Off, 1))
            .analyze(&trace)
            .unwrap();
        assert_eq!(monolithic.races.len(), 7);
        let reference = render_json(&monolithic, &trace);
        for threads in [1, 2, 8] {
            let session = AnalysisSession::new(&trace);
            let report = Analyzer::with_config(config(PartitionMode::Force, threads))
                .analyze_with(&session)
                .unwrap();
            let stats = report.stats.partition.expect("partitioned path ran");
            assert_eq!(stats.islands, 7);
            assert!(stats.batches <= stats.islands);
            assert_eq!(render_json(&report, &trace), reference);
        }
    }

    #[test]
    fn auto_skips_small_traces_and_cached_models() {
        let trace = island_trace(3);
        // Small trace: auto stays monolithic.
        let report = Analyzer::with_config(config(PartitionMode::Auto, 2))
            .analyze(&trace)
            .unwrap();
        assert!(report.stats.partition.is_none());
        // Cached model: auto stays monolithic even when forced-size.
        let session = AnalysisSession::new(&trace);
        let cfg = config(PartitionMode::Auto, 2);
        session
            .model(cfg.causality)
            .expect("model builds on a valid trace");
        let report = Analyzer::with_config(cfg).analyze_with(&session).unwrap();
        assert!(report.stats.partition.is_none());
    }

    #[test]
    fn single_island_falls_back_to_monolithic() {
        let mut b = TraceBuilder::new("one-island");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.write(t, VarId::new(0));
        let trace = b.finish().unwrap();
        let report = Analyzer::with_config(config(PartitionMode::Force, 4))
            .analyze(&trace)
            .unwrap();
        assert!(report.stats.partition.is_none());
    }

    #[test]
    fn batching_is_a_pure_function_of_the_partition() {
        let trace = island_trace(5);
        let session = AnalysisSession::new(&trace);
        let part = session.partition();
        let a = plan_batches(&part, 2);
        let b = plan_batches(&part, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, trace.task_count());
        // More batches than islands: one island per batch.
        assert_eq!(plan_batches(&part, MAX_BATCHES).len(), 5);
    }
}
