//! False-positive pruning heuristics (§4.3).
//!
//! Two concurrent same-looper events containing a use-free race can
//! still be *commutative*. CAFA recognizes the two common patterns:
//!
//! * **if-guard**: the use sits in a code region a pointer-test branch
//!   proves non-null, so when the free runs first the use is skipped
//!   (or dominated by a fresh value) — Figure 5's `onFocus`;
//! * **intra-event-allocation**: an allocation inside the same event
//!   masks the free (alloc after free) or feeds the use (alloc before
//!   use) — Figure 5's `onResume`.
//!
//! Both heuristics rely on event atomicity, so they are "only
//! applicable to events that are sent to the same event queue and
//! processed by the same looper thread" — the caller enforces that
//! scope; these functions judge a single endpoint.

use cafa_trace::{BranchKind, Pc};

use crate::usefree::{FreeSite, GuardSite, MemoryOps, UseSite};

/// Why a candidate use-free race was suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterReason {
    /// The use is inside an if-guard-protected region (§4.3).
    IfGuard,
    /// An allocation precedes the use within the use's event.
    AllocBeforeUse,
    /// An allocation follows the free within the free's event.
    AllocAfterFree,
    /// Use and free both execute under a common monitor; CAFA trusts
    /// explicit mutual exclusion (§3.2).
    CommonLock,
}

impl std::fmt::Display for FilterReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FilterReason::IfGuard => "if-guard",
            FilterReason::AllocBeforeUse => "intra-event allocation before use",
            FilterReason::AllocAfterFree => "intra-event allocation after free",
            FilterReason::CommonLock => "common lockset",
        };
        f.write_str(s)
    }
}

/// The address region a guard proves non-null, per Figure 6.
///
/// Returns `(lo, hi)` — uses with `lo ≤ pc < hi` in the same method,
/// executed after the branch, are safe.
fn safe_region(g: &GuardSite) -> (Pc, Pc) {
    let forward = g.target.addr() > g.pc.addr();
    match (g.kind, forward) {
        // if-eqz jumps away when null; logged when NOT taken, so the
        // fall-through up to the target is non-null.
        (BranchKind::IfEqz, true) => (g.pc, g.target),
        // if-eqz jumping backward when null: the fall-through to the end
        // of the method is non-null.
        (BranchKind::IfEqz, false) => (g.pc, g.pc.method_end()),
        // if-nez / if-eq jump when non-null; logged when taken. Forward:
        // from the target to the end of the method.
        (BranchKind::IfNez | BranchKind::IfEq, true) => (g.target, g.pc.method_end()),
        // Backward: the loop body between target and branch.
        (BranchKind::IfNez | BranchKind::IfEq, false) => (g.target, g.pc),
    }
}

/// If-guard check: is `use_site` protected by a guard on the same
/// variable, earlier in the same task, whose safe region covers the
/// use's read address?
pub fn if_guarded(ops: &MemoryOps, use_site: &UseSite) -> bool {
    let Some(var_ops) = ops.var_ops(use_site.var) else {
        return false;
    };
    var_ops.guards.iter().map(|&gi| &ops.guards[gi]).any(|g| {
        if g.at.task != use_site.at.task || g.at.index >= use_site.at.index {
            return false;
        }
        let (lo, hi) = safe_region(g);
        let pc = use_site.read_pc;
        pc.same_method(g.pc) && lo.addr() <= pc.addr() && pc.addr() < hi.addr()
    })
}

/// Intra-event-allocation, use side: an allocation to the same variable
/// earlier in the same task guarantees the use cannot observe a null
/// written outside the event.
pub fn alloc_before_use(ops: &MemoryOps, use_site: &UseSite) -> bool {
    let Some(var_ops) = ops.var_ops(use_site.var) else {
        return false;
    };
    var_ops
        .allocs
        .iter()
        .map(|&ai| &ops.allocs[ai])
        .any(|a| a.at.task == use_site.at.task && a.at.index < use_site.at.index)
}

/// Intra-event-allocation, free side: an allocation to the same
/// variable later in the same task means the null value never becomes
/// visible to other events of the looper.
pub fn alloc_after_free(ops: &MemoryOps, free_site: &FreeSite) -> bool {
    let Some(var_ops) = ops.var_ops(free_site.var) else {
        return false;
    };
    var_ops
        .allocs
        .iter()
        .map(|&ai| &ops.allocs[ai])
        .any(|a| a.at.task == free_site.at.task && a.at.index > free_site.at.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usefree::extract;
    use cafa_trace::{DerefKind, ObjId, TraceBuilder, VarId};

    /// Figure 5's onFocus: `if (handler != null) handler.run();`
    #[test]
    fn guarded_use_is_filtered() {
        let mut b = TraceBuilder::new("fig5");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "onFocus");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        // read handler; if-eqz jumps to 0x1040 when null; use at 0x1018.
        b.obj_read(e, v, Some(o), Pc::new(0x1010));
        b.guard(e, BranchKind::IfEqz, Pc::new(0x1014), Pc::new(0x1040), o);
        b.obj_read(e, v, Some(o), Pc::new(0x1018));
        b.deref(e, o, Pc::new(0x101c), DerefKind::Invoke);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        // The second read is the guarded use.
        let guarded_use = ops
            .uses
            .iter()
            .find(|u| u.read_pc == Pc::new(0x1018))
            .unwrap();
        assert!(if_guarded(&ops, guarded_use));
    }

    #[test]
    fn use_outside_guard_region_is_not_filtered() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "ev");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        b.obj_read(e, v, Some(o), Pc::new(0x1010));
        b.guard(e, BranchKind::IfEqz, Pc::new(0x1014), Pc::new(0x1020), o);
        // Use beyond the guarded region (pc ≥ target).
        b.obj_read(e, v, Some(o), Pc::new(0x1024));
        b.deref(e, o, Pc::new(0x1028), DerefKind::Field);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        let u = ops
            .uses
            .iter()
            .find(|u| u.read_pc == Pc::new(0x1024))
            .unwrap();
        assert!(!if_guarded(&ops, u));
    }

    #[test]
    fn guard_in_other_method_does_not_protect() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "ev");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        b.obj_read(e, v, Some(o), Pc::new(0x1010));
        // Backward if-eqz guard: protects to end of *its* method block.
        b.guard(e, BranchKind::IfEqz, Pc::new(0x1014), Pc::new(0x1004), o);
        // Use in a different method block (0x2000), even though later.
        b.obj_read(e, v, Some(o), Pc::new(0x2010));
        b.deref(e, o, Pc::new(0x2014), DerefKind::Field);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        let u = ops
            .uses
            .iter()
            .find(|u| u.read_pc == Pc::new(0x2010))
            .unwrap();
        assert!(!if_guarded(&ops, u));
    }

    #[test]
    fn ifnez_taken_protects_target_region() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "ev");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        b.obj_read(e, v, Some(o), Pc::new(0x1010));
        b.guard(e, BranchKind::IfNez, Pc::new(0x1014), Pc::new(0x1030), o);
        b.obj_read(e, v, Some(o), Pc::new(0x1034)); // inside [target, end)
        b.deref(e, o, Pc::new(0x1038), DerefKind::Invoke);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        let u = ops
            .uses
            .iter()
            .find(|u| u.read_pc == Pc::new(0x1034))
            .unwrap();
        assert!(if_guarded(&ops, u));
    }

    #[test]
    fn backward_ifnez_protects_loop_body() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "ev");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(1);
        b.obj_read(e, v, Some(o), Pc::new(0x1030));
        b.guard(e, BranchKind::IfNez, Pc::new(0x1034), Pc::new(0x1010), o);
        b.obj_read(e, v, Some(o), Pc::new(0x1018)); // inside [target, pc)
        b.deref(e, o, Pc::new(0x101c), DerefKind::Field);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        let u = ops
            .uses
            .iter()
            .find(|u| u.read_pc == Pc::new(0x1018))
            .unwrap();
        assert!(if_guarded(&ops, u));
    }

    /// Figure 5's onResume: `handler = new Handler(); handler.run();`
    #[test]
    fn alloc_before_use_filters() {
        let mut b = TraceBuilder::new("fig5");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "onResume");
        b.process_event(e);
        let v = VarId::new(0);
        let o = ObjId::new(2);
        b.obj_write(e, v, Some(o), Pc::new(0x1010)); // allocation
        b.obj_read(e, v, Some(o), Pc::new(0x1014));
        b.deref(e, o, Pc::new(0x1018), DerefKind::Invoke);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert!(alloc_before_use(&ops, &ops.uses[0]));
    }

    #[test]
    fn alloc_after_free_filters() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "swap");
        b.process_event(e);
        let v = VarId::new(0);
        b.obj_write(e, v, None, Pc::new(0x1010)); // free
        b.obj_write(e, v, Some(ObjId::new(3)), Pc::new(0x1014)); // realloc
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert!(alloc_after_free(&ops, &ops.frees[0]));
    }

    #[test]
    fn alloc_in_other_event_does_not_filter() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e1 = b.external(q, "alloc-ev");
        let e2 = b.external(q, "use-ev");
        b.process_event(e1);
        let v = VarId::new(0);
        let o = ObjId::new(2);
        b.obj_write(e1, v, Some(o), Pc::new(0x1010));
        b.process_event(e2);
        b.obj_read(e2, v, Some(o), Pc::new(0x1014));
        b.deref(e2, o, Pc::new(0x1018), DerefKind::Field);
        let trace = b.finish().unwrap();
        let ops = extract(&trace);
        assert!(!alloc_before_use(&ops, &ops.uses[0]));
    }
}
