//! Race reports: the detector's output types.

use std::fmt;
use std::time::Duration;

use cafa_engine::PassStats;
use cafa_hb::DerivationStats;
use cafa_trace::{Trace, VarId};

use crate::filters::FilterReason;
use crate::partition::PartitionStats;
use crate::usefree::{FreeSite, UseSite};

/// How a reported race relates to the conventional baseline — the three
/// "true race" columns of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceClass {
    /// (a) Both endpoints are events of the same looper: an intra-thread
    /// violation, invisible to any thread-based detector by
    /// construction.
    IntraThread,
    /// (b) Endpoints span tasks (thread vs. event, or different
    /// loopers), and the conventional model *orders* them — only CAFA's
    /// relaxed event order exposes the race.
    InterThread,
    /// (c) Also concurrent under the conventional model: a conventional
    /// detector would find it too.
    Conventional,
}

impl fmt::Display for RaceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceClass::IntraThread => "intra-thread",
            RaceClass::InterThread => "inter-thread",
            RaceClass::Conventional => "conventional",
        };
        f.write_str(s)
    }
}

/// How a race reported by the predictive backend relates to the HB
/// backend — the per-backend comparison columns of `--detector both`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictClass {
    /// Reported by both backends: the HB relation also leaves the pair
    /// unordered and unfiltered.
    Both,
    /// Only the predictive relation exposes the pair (HB orders it, or
    /// the strict lockset filter suppresses it): an *extra* report that
    /// must be adjudicated by replay — confirmed witness or counted
    /// false positive.
    PredictiveOnly,
}

impl fmt::Display for PredictClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredictClass::Both => "both",
            PredictClass::PredictiveOnly => "predictive-only",
        };
        f.write_str(s)
    }
}

/// One race reported by the predictive backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictiveRace {
    /// The pointer variable raced on.
    pub var: VarId,
    /// The racing use.
    pub use_site: UseSite,
    /// The racing free.
    pub free_site: FreeSite,
    /// Relation to the HB backend's report set.
    pub class: PredictClass,
}

/// Counters from the predictive fixpoint and enumeration, mirrored
/// from `cafa_predict::PredictStats` plus the enumeration's own
/// counts. No wall times — the JSON rendering stays a pure function
/// of trace and configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictiveStats {
    /// Rounds until the conflict-gated fixpoint converged.
    pub rounds: u32,
    /// Atomicity/queue edges the gated fixpoint materialized.
    pub derived_edges: usize,
    /// Rule conclusions suppressed by the conflict gate — orderings HB
    /// keeps that the predictive relation deliberately drops.
    pub gated: u64,
    /// Conflict-scoped external-input edges (gesture pairs whose
    /// handlers share state).
    pub external_edges: usize,
    /// Dynamic (use, free) instance pairs the predictive enumeration
    /// examined.
    pub pairs_checked: usize,
    /// Candidates suppressed by the predictive filter set (the relaxed
    /// lockset plus the same-looper heuristics).
    pub filtered: usize,
    /// Variables whose predictive pair enumeration hit the cap.
    pub truncated_vars: usize,
}

/// The predictive backend's findings, attached to a [`RaceReport`]
/// when the detector runs with `--detector predictive|both`; `None`
/// under the default HB backend, keeping its output byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredictiveSection {
    /// Predictively-concurrent races, same (variable, use pc, free pc)
    /// deduplication and ordering discipline as [`RaceReport::races`].
    pub races: Vec<PredictiveRace>,
    /// Fixpoint + enumeration counters.
    pub stats: PredictiveStats,
}

impl PredictiveSection {
    /// Races of a given predictive class.
    pub fn count(&self, class: PredictClass) -> usize {
        self.races.iter().filter(|r| r.class == class).count()
    }
}

/// One reported use-free race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseFreeRace {
    /// The pointer variable raced on.
    pub var: VarId,
    /// The racing use.
    pub use_site: UseSite,
    /// The racing free.
    pub free_site: FreeSite,
    /// Relation to the conventional baseline.
    pub class: RaceClass,
}

/// A candidate pair suppressed by a pruning heuristic, retained for
/// ablation studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilteredCandidate {
    /// The pointer variable.
    pub var: VarId,
    /// The candidate use.
    pub use_site: UseSite,
    /// The candidate free.
    pub free_site: FreeSite,
    /// Which heuristic suppressed it.
    pub reason: FilterReason,
}

/// Aggregate counters from one detector run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Events in the trace (the "Events" column of Table 1).
    pub events: usize,
    /// Variables with at least one use and one free.
    pub candidate_vars: usize,
    /// Dynamic (use, free) instance pairs examined.
    pub pairs_checked: usize,
    /// Variables whose instance pairs hit the per-variable cap; coverage
    /// for those variables is partial.
    pub truncated_vars: Vec<VarId>,
    /// Fixpoint statistics from the happens-before derivation. On the
    /// partitioned path: summed over islands (rounds take the max).
    pub derivation: DerivationStats,
    /// Island-partitioning counters; `None` when the monolithic path
    /// ran.
    pub partition: Option<PartitionStats>,
    /// Per-pass wall time and item counts (equality ignores the wall
    /// times; see [`PassStats`]). Rendered by `cafa analyze --timings`.
    pub passes: PassStats,
}

/// The result of analyzing one trace.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Application name from the trace metadata.
    pub app: String,
    /// Reported races, deduplicated by (variable, use pc, free pc).
    pub races: Vec<UseFreeRace>,
    /// Candidates suppressed by heuristics, same deduplication.
    pub filtered: Vec<FilteredCandidate>,
    /// Run counters.
    pub stats: DetectStats,
    /// The predictive backend's findings; `None` unless the detector
    /// ran with [`DetectorKind`](crate::DetectorKind) `Predictive` or
    /// `Both`.
    pub predictive: Option<PredictiveSection>,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

impl RaceReport {
    /// Races of a given class.
    pub fn count(&self, class: RaceClass) -> usize {
        self.races.iter().filter(|r| r.class == class).count()
    }

    /// Renders a human-readable summary, resolving names via `trace`.
    pub fn render(&self, trace: &Trace) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} race(s) reported, {} candidate(s) filtered ({} events, {} pairs checked)",
            self.app,
            self.races.len(),
            self.filtered.len(),
            self.stats.events,
            self.stats.pairs_checked,
        );
        for (i, r) in self.races.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<3} {:<12} var {:<6} use {} @{} in {}  <->  free {} @{} in {}",
                i + 1,
                r.class.to_string(),
                r.var.to_string(),
                r.use_site.at,
                r.use_site.read_pc,
                trace.task_name(r.use_site.at.task),
                r.free_site.at,
                r.free_site.pc,
                trace.task_name(r.free_site.at.task),
            );
            let _ = writeln!(
                out,
                "       context: {}  <->  {}",
                crate::context::render_stack(trace, r.use_site.at),
                crate::context::render_stack(trace, r.free_site.at),
            );
        }
        if !self.stats.truncated_vars.is_empty() {
            let _ = writeln!(
                out,
                "  note: pair cap hit for {} variable(s); coverage partial there",
                self.stats.truncated_vars.len()
            );
        }
        if let Some(p) = &self.predictive {
            let _ = writeln!(
                out,
                "  predictive: {} race(s), {} predictive-only ({} round(s), {} edge(s) derived, {} gated)",
                p.races.len(),
                p.count(PredictClass::PredictiveOnly),
                p.stats.rounds,
                p.stats.derived_edges,
                p.stats.gated,
            );
            for (i, r) in p.races.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  p#{:<2} {:<15} var {:<6} use {} @{} in {}  <->  free {} @{} in {}",
                    i + 1,
                    r.class.to_string(),
                    r.var.to_string(),
                    r.use_site.at,
                    r.use_site.read_pc,
                    trace.task_name(r.use_site.at.task),
                    r.free_site.at,
                    r.free_site.pc,
                    trace.task_name(r.free_site.at.task),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display() {
        assert_eq!(RaceClass::IntraThread.to_string(), "intra-thread");
        assert_eq!(RaceClass::InterThread.to_string(), "inter-thread");
        assert_eq!(RaceClass::Conventional.to_string(), "conventional");
    }
}
