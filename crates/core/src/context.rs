//! Calling-context reconstruction (§5.3).
//!
//! The instrumented interpreter logs method entries and exits "to
//! provide context information for reasoning about races". This module
//! rebuilds the context stack at any trace position, so a race report
//! can say *where* the racing use and free executed, not just which
//! record raced.

use cafa_trace::{OpRef, Pc, Record, Trace};

/// One frame of a reconstructed context stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Entry address of the method.
    pub pc: Pc,
    /// Method name.
    pub name: String,
}

/// The context stack at the record `at`, outermost frame first.
///
/// Reconstructed by replaying the task's `MethodEnter`/`MethodExit`
/// records up to (and including) position `at`. Unbalanced exits —
/// possible in truncated traces — are tolerated by ignoring pops of an
/// empty stack.
pub fn stack_at(trace: &Trace, at: OpRef) -> Vec<Frame> {
    let mut stack: Vec<Frame> = Vec::new();
    for (i, r) in trace.body(at.task).iter().enumerate() {
        if i as u32 > at.index {
            break;
        }
        match *r {
            Record::MethodEnter { pc, name } => {
                stack.push(Frame {
                    pc,
                    name: trace.names().resolve(name).to_owned(),
                });
            }
            Record::MethodExit { .. } => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
}

/// Renders a stack as `outer > inner`, or a placeholder when the trace
/// carries no frame records for that task.
pub fn render_stack(trace: &Trace, at: OpRef) -> String {
    let stack = stack_at(trace, at);
    if stack.is_empty() {
        format!("<{}>", trace.task_name(at.task))
    } else {
        stack
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
            .join(" > ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{TraceBuilder, VarId};

    #[test]
    fn nested_frames_reconstruct() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.method_enter(t, Pc::new(0x1000), "outer"); // 0
        b.read(t, VarId::new(0)); // 1: [outer]
        b.method_enter(t, Pc::new(0x2000), "inner"); // 2
        let deep = b.read(t, VarId::new(0)); // 3: [outer, inner]
        b.method_exit(t, Pc::new(0x2000), false); // 4
        let shallow = b.read(t, VarId::new(0)); // 5: [outer]
        b.method_exit(t, Pc::new(0x1000), false); // 6
        let trace = b.finish().unwrap();

        let stack = stack_at(&trace, deep);
        assert_eq!(stack.len(), 2);
        assert_eq!(stack[0].name, "outer");
        assert_eq!(stack[1].name, "inner");
        assert_eq!(render_stack(&trace, deep), "outer > inner");

        assert_eq!(stack_at(&trace, shallow).len(), 1);
        // After the final exit the stack is empty; rendering falls back
        // to the task name.
        assert_eq!(render_stack(&trace, OpRef::new(t, 6)), "<main>");
    }

    #[test]
    fn unbalanced_exits_are_tolerated() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.method_exit(t, Pc::new(0x1000), true); // stray
        let at = b.read(t, VarId::new(0));
        let trace = b.finish().unwrap();
        assert!(stack_at(&trace, at).is_empty());
    }

    #[test]
    fn sim_traces_carry_handler_frames() {
        use cafa_sim::{run, Body, ProgramBuilder, SimConfig};
        let mut p = ProgramBuilder::new("frames");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.ptr_var_alloc();
        let h = p.handler("onDraw", Body::new().use_ptr(v));
        p.gesture(0, l, h);
        let trace = run(&p.build(), &SimConfig::with_seed(0))
            .unwrap()
            .trace
            .unwrap();
        // The use inside the event reports its handler as context.
        let ops = crate::usefree::extract(&trace);
        assert_eq!(ops.uses.len(), 1);
        assert_eq!(render_stack(&trace, ops.uses[0].at), "onDraw");
    }
}
