//! Machine-readable (JSON) rendering of race reports.
//!
//! Hand-rolled emitter — the workspace deliberately keeps the trace and
//! report paths dependency-free — producing stable, line-oriented JSON
//! for downstream tooling (dashboards, CI annotations, diffing runs).

use std::fmt::Write as _;

use cafa_trace::Trace;

use crate::report::RaceReport;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a report as a JSON object.
///
/// The output is a pure function of the trace and the detector
/// configuration — no timestamps or wall times — so batch and
/// streaming analyses of the same trace are byte-identical and runs
/// can be diffed. Timing lives in the human-readable render
/// (`RaceReport::elapsed`) and `--timings`.
///
/// Schema (stable):
///
/// ```json
/// {
///   "app": "...", "events": N, "pairs_checked": N,
///   "races": [{"var": "v3", "class": "intra-thread",
///              "use": {"task": "t7", "index": 2, "pc": "0x1010",
///                       "handler": "...", "context": "..."},
///              "free": {...}}],
///   "filtered": [{"var": "v4", "reason": "if-guard"}],
///   "truncated_vars": ["v9"]
/// }
/// ```
///
/// Under `--detector predictive|both` a `"predictive"` object follows
/// `truncated_vars`: the predictive backend's races (each tagged
/// `both` or `predictive-only`) and its fixpoint/enumeration stats.
/// The default HB rendering is byte-for-byte unchanged.
pub fn render_json(report: &RaceReport, trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&report.app));
    let _ = writeln!(out, "  \"events\": {},", report.stats.events);
    let _ = writeln!(
        out,
        "  \"candidate_vars\": {},",
        report.stats.candidate_vars
    );
    let _ = writeln!(out, "  \"pairs_checked\": {},", report.stats.pairs_checked);

    out.push_str("  \"races\": [\n");
    for (i, r) in report.races.iter().enumerate() {
        let comma = if i + 1 < report.races.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"var\": \"{}\", \"class\": \"{}\", \
             \"use\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\", \
             \"handler\": \"{}\", \"context\": \"{}\"}}, \
             \"free\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\", \
             \"handler\": \"{}\", \"context\": \"{}\"}}}}{comma}",
            r.var,
            r.class,
            r.use_site.at.task,
            r.use_site.at.index,
            r.use_site.read_pc,
            escape(trace.task_name(r.use_site.at.task)),
            escape(&crate::context::render_stack(trace, r.use_site.at)),
            r.free_site.at.task,
            r.free_site.at.index,
            r.free_site.pc,
            escape(trace.task_name(r.free_site.at.task)),
            escape(&crate::context::render_stack(trace, r.free_site.at)),
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"filtered\": [\n");
    for (i, f) in report.filtered.iter().enumerate() {
        let comma = if i + 1 < report.filtered.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"var\": \"{}\", \"reason\": \"{}\"}}{comma}",
            f.var, f.reason
        );
    }
    out.push_str("  ],\n");

    let trunc: Vec<String> = report
        .stats
        .truncated_vars
        .iter()
        .map(|v| format!("\"{v}\""))
        .collect();
    // The predictive section is appended only when that backend ran,
    // so default (`--detector hb`) output stays byte-identical.
    match &report.predictive {
        None => {
            let _ = writeln!(out, "  \"truncated_vars\": [{}]", trunc.join(", "));
        }
        Some(p) => {
            let _ = writeln!(out, "  \"truncated_vars\": [{}],", trunc.join(", "));
            out.push_str("  \"predictive\": {\n");
            out.push_str("    \"races\": [\n");
            for (i, r) in p.races.iter().enumerate() {
                let comma = if i + 1 < p.races.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "      {{\"var\": \"{}\", \"class\": \"{}\", \
                     \"use\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\", \
                     \"handler\": \"{}\"}}, \
                     \"free\": {{\"task\": \"{}\", \"index\": {}, \"pc\": \"{}\", \
                     \"handler\": \"{}\"}}}}{comma}",
                    r.var,
                    r.class,
                    r.use_site.at.task,
                    r.use_site.at.index,
                    r.use_site.read_pc,
                    escape(trace.task_name(r.use_site.at.task)),
                    r.free_site.at.task,
                    r.free_site.at.index,
                    r.free_site.pc,
                    escape(trace.task_name(r.free_site.at.task)),
                );
            }
            out.push_str("    ],\n");
            let s = &p.stats;
            let _ = writeln!(
                out,
                "    \"stats\": {{\"rounds\": {}, \"derived_edges\": {}, \
                 \"gated\": {}, \"external_edges\": {}, \"pairs_checked\": {}, \
                 \"filtered\": {}, \"truncated_vars\": {}}}",
                s.rounds,
                s.derived_edges,
                s.gated,
                s.external_edges,
                s.pairs_checked,
                s.filtered,
                s.truncated_vars,
            );
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use cafa_trace::{DerefKind, ObjId, Pc, TraceBuilder, VarId};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new("json \"app\"");
        let p = b.add_process();
        let q = b.add_queue(p);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let use_ev = b.post(ipc, q, "useEv", 0);
        let free_ev = b.external(q, "freeEv");
        b.process_event(use_ev);
        b.obj_read(use_ev, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x1010));
        b.deref(use_ev, ObjId::new(1), Pc::new(0x1014), DerefKind::Field);
        b.process_event(free_ev);
        b.obj_write(free_ev, VarId::new(0), None, Pc::new(0x2010));
        b.finish().unwrap()
    }

    #[test]
    fn json_has_expected_fields_and_escapes() {
        let trace = racy_trace();
        let report = Analyzer::new().analyze(&trace).unwrap();
        assert_eq!(report.races.len(), 1);
        let json = render_json(&report, &trace);
        assert!(json.contains("\"app\": \"json \\\"app\\\"\""));
        assert!(json.contains("\"class\": \"intra-thread\""));
        assert!(json.contains("\"handler\": \"useEv\""));
        assert!(json.contains("\"pc\": \"0x1010\""));
        assert!(json.contains("\"truncated_vars\": []"));
        // Crude structural sanity: balanced braces and brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn filtered_candidates_and_truncation_serialize() {
        use cafa_core_filters_probe::build_filtered_trace;
        let trace = build_filtered_trace();
        let mut cfg = crate::DetectorConfig::cafa();
        cfg.max_pairs_per_var = 1;
        let report = crate::Analyzer::with_config(cfg).analyze(&trace).unwrap();
        let json = render_json(&report, &trace);
        assert!(json.contains("\"reason\": \"if-guard\"") || json.contains("\"filtered\": [\n  ]"));
        // Truncated vars render as quoted ids when present.
        if !report.stats.truncated_vars.is_empty() {
            assert!(json.contains("\"truncated_vars\": [\"v"));
        }
    }

    /// Builds a trace with one guarded (filtered) candidate.
    mod cafa_core_filters_probe {
        use cafa_trace::{BranchKind, DerefKind, ObjId, Pc, Trace, TraceBuilder, VarId};

        pub fn build_filtered_trace() -> Trace {
            let mut b = TraceBuilder::new("filtered");
            let p = b.add_process();
            let q = b.add_queue(p);
            let t1 = b.add_thread(p, "s1");
            let t2 = b.add_thread(p, "s2");
            let v = VarId::new(0);
            let o = ObjId::new(1);
            let use_ev = b.post(t1, q, "useEv", 0);
            b.process_event(use_ev);
            b.obj_read(use_ev, v, Some(o), Pc::new(0x1010));
            b.guard(
                use_ev,
                BranchKind::IfEqz,
                Pc::new(0x1014),
                Pc::new(0x1040),
                o,
            );
            b.obj_read(use_ev, v, Some(o), Pc::new(0x1018));
            b.deref(use_ev, o, Pc::new(0x101c), DerefKind::Invoke);
            let free_ev = b.post(t2, q, "freeEv", 0);
            b.process_event(free_ev);
            b.obj_write(free_ev, v, None, Pc::new(0x2010));
            b.finish().unwrap()
        }
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }
}
