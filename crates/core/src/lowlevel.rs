//! Conventional-definition ("low-level") data-race counting.
//!
//! §4.1 motivates use-free races by counting plain conflicting-access
//! races in a 30-second ConnectBot trace: **1,664** under the relaxed
//! event order, "and most of them are not harmful bugs". This module
//! reproduces that measurement: it counts *racy statement pairs* — two
//! accesses to the same variable, at least one a write, in different
//! tasks, unordered under a given causality model — deduplicated by
//! code site so repeated dynamic instances of the same statements count
//! once.

use std::collections::{HashMap, HashSet};

use cafa_engine::AnalysisSession;
use cafa_hb::{CausalityConfig, HbError};
use cafa_trace::{NameId, OpRef, Record, Trace, VarId};

/// One access site: the accessing code position, approximated by the
/// task's handler/thread name (distinct handlers are distinct code) plus
/// the instruction address when the record carries one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Site {
    name: NameId,
    pc: u32,
    write: bool,
}

/// Summary of a low-level race count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LowLevelSummary {
    /// Racy statement pairs found.
    pub racy_pairs: usize,
    /// Variables with at least one racy pair.
    pub racy_vars: usize,
    /// Dynamic instance pairs examined.
    pub pairs_checked: usize,
    /// Variables whose site pairs hit the per-pair instance cap, so
    /// additional races there may exist.
    pub truncated_vars: Vec<VarId>,
}

/// Per-site-pair instance budget: how many dynamic instance pairs are
/// examined before giving up on proving a site pair racy.
const INSTANCES_PER_SITE: usize = 8;

/// Counts conventional-definition races in `trace` under `config`.
///
/// With [`CausalityConfig::cafa`] this reproduces the §4.1 measurement
/// (thousands of mostly-benign races); with
/// [`CausalityConfig::conventional`] it shows what a thread-based
/// detector would report.
///
/// # Errors
///
/// Returns [`HbError`] if the happens-before model cannot be built.
pub fn count_races(trace: &Trace, config: CausalityConfig) -> Result<LowLevelSummary, HbError> {
    let session = AnalysisSession::new(trace);
    count_races_with(&session, config)
}

/// Like [`count_races`], but over a shared [`AnalysisSession`] so the
/// happens-before model is reused across counters and the detector.
///
/// # Errors
///
/// Returns [`HbError`] if the happens-before model cannot be built.
pub fn count_races_with(
    session: &AnalysisSession<'_>,
    config: CausalityConfig,
) -> Result<LowLevelSummary, HbError> {
    let trace = session.trace();
    let model = session.model(config)?;

    // Group accesses per variable and site.
    #[derive(Default)]
    struct VarAccesses {
        sites: HashMap<Site, Vec<OpRef>>,
        has_write: bool,
    }
    let mut vars: HashMap<VarId, VarAccesses> = HashMap::new();
    for (at, r) in trace.iter_ops() {
        let (var, write, pc) = match *r {
            Record::Read { var } => (var, false, 0),
            Record::Write { var } => (var, true, 0),
            Record::ObjRead { var, pc, .. } => (var, false, pc.addr()),
            Record::ObjWrite { var, pc, .. } => (var, true, pc.addr()),
            _ => continue,
        };
        let name = trace.task(at.task).name;
        let entry = vars.entry(var).or_default();
        entry.has_write |= write;
        let insts = entry.sites.entry(Site { name, pc, write }).or_default();
        if insts.len() < INSTANCES_PER_SITE {
            insts.push(at);
        }
    }

    // Batched reachability over the representative instances.
    let mut sources: Vec<OpRef> = Vec::new();
    let mut source_index: HashMap<OpRef, usize> = HashMap::new();
    for va in vars.values() {
        if !va.has_write || va.sites.len() < 2 {
            continue;
        }
        for insts in va.sites.values() {
            for &at in insts {
                source_index.entry(at).or_insert_with(|| {
                    sources.push(at);
                    sources.len() - 1
                });
            }
        }
    }
    let batch = model.batch(&sources);

    let mut summary = LowLevelSummary::default();
    let mut racy_site_pairs: HashSet<(VarId, Site, Site)> = HashSet::new();

    let mut var_list: Vec<(&VarId, &VarAccesses)> = vars.iter().collect();
    var_list.sort_by_key(|(v, _)| **v);
    for (&var, va) in var_list {
        if !va.has_write || va.sites.len() < 2 {
            continue;
        }
        let mut sites: Vec<(&Site, &Vec<OpRef>)> = va.sites.iter().collect();
        sites.sort_by_key(|(s, _)| **s);
        let mut var_is_racy = false;
        for i in 0..sites.len() {
            // j == i covers two dynamic instances of the same statement
            // in different tasks (e.g. the same writer handler run
            // twice concurrently).
            for j in i..sites.len() {
                let (sa, ia) = sites[i];
                let (sb, ib) = sites[j];
                if !sa.write && !sb.write {
                    continue;
                }
                let mut racy = false;
                'outer: for &a in ia {
                    for &b in ib {
                        if a.task == b.task {
                            continue;
                        }
                        summary.pairs_checked += 1;
                        let (ka, kb) = (source_index[&a], source_index[&b]);
                        if !batch.before(ka, b) && !batch.before(kb, a) {
                            racy = true;
                            break 'outer;
                        }
                    }
                }
                // A "not racy" verdict is only proven if the recorded
                // instances cover the site pair; when a site list hit
                // the per-site cap, unrecorded instances could still
                // race, so the verdict is partial and must be flagged.
                let capped = ia.len() == INSTANCES_PER_SITE || ib.len() == INSTANCES_PER_SITE;
                if !racy && capped && !summary.truncated_vars.contains(&var) {
                    summary.truncated_vars.push(var);
                }
                if racy {
                    racy_site_pairs.insert((var, *sa, *sb));
                    var_is_racy = true;
                }
            }
        }
        if var_is_racy {
            summary.racy_vars += 1;
        }
    }
    summary.racy_pairs = racy_site_pairs.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::TraceBuilder;

    /// Figure 2's ConnectBot pattern: onPause writes, onLayout reads —
    /// a read-write race under CAFA that the conventional model hides.
    #[test]
    fn figure2_read_write_race_counts_under_cafa_only() {
        let mut b = TraceBuilder::new("ConnectBot");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t1 = b.add_thread(p, "s1");
        let t2 = b.add_thread(p, "s2");
        let resize_allowed = VarId::new(0);
        let pause = b.post(t1, q, "onPause", 0);
        let layout = b.post(t2, q, "onLayout", 0);
        b.process_event(pause);
        b.write(pause, resize_allowed);
        b.process_event(layout);
        b.read(layout, resize_allowed);
        let trace = b.finish().unwrap();

        let cafa = count_races(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(cafa.racy_pairs, 1);
        assert_eq!(cafa.racy_vars, 1);

        let conv = count_races(&trace, CausalityConfig::conventional()).unwrap();
        assert_eq!(conv.racy_pairs, 0);
    }

    #[test]
    fn read_read_pairs_never_race() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t1 = b.add_thread(p, "s1");
        let t2 = b.add_thread(p, "s2");
        let v = VarId::new(0);
        let e1 = b.post(t1, q, "r1", 0);
        let e2 = b.post(t2, q, "r2", 0);
        b.process_event(e1);
        b.read(e1, v);
        b.process_event(e2);
        b.read(e2, v);
        let trace = b.finish().unwrap();
        let s = count_races(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(s.racy_pairs, 0);
    }

    #[test]
    fn repeated_instances_count_once() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let v = VarId::new(0);
        for i in 0..6 {
            let t = b.add_thread(p, &format!("s{i}"));
            // Same handler names each round: one writer site, one
            // reader site.
            let w = b.post(t, q, "writer", 0);
            b.process_event(w);
            b.write(w, v);
            let r = b.post(t, q, "reader", 0);
            b.process_event(r);
            b.read(r, v);
        }
        let trace = b.finish().unwrap();
        let s = count_races(&trace, CausalityConfig::cafa()).unwrap();
        // writer-vs-reader and writer-vs-writer.
        assert_eq!(s.racy_pairs, 2);
        assert_eq!(s.racy_vars, 1);
        assert!(s.truncated_vars.is_empty());
    }

    #[test]
    fn ordered_accesses_do_not_race() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(0);
        b.write(t, v);
        let w = b.fork(t, p, "child");
        b.read(w, v);
        let trace = b.finish().unwrap();
        let s = count_races(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(s.racy_pairs, 0);
        assert!(s.pairs_checked > 0);
    }
}
