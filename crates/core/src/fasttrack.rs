//! A FastTrack-style conventional race detector (Flanagan & Freund,
//! PLDI 2009), the canonical thread-based baseline the paper contrasts
//! with (§7.1: "FastTrack assumes that all memory accesses from the
//! same thread are totally ordered").
//!
//! The detector runs the classic epoch/vector-clock algorithm over a
//! linearization of the trace in which each **looper is one thread**
//! (its events concatenated in processing order — exactly the
//! assumption CAFA identifies as too strict) and lock release/acquire
//! induces order. It therefore reports only class-(c) races: the
//! cross-validation tests assert its racy-variable set matches the
//! graph-based model under [`CausalityConfig::fasttrack_like`].
//!
//! [`CausalityConfig::fasttrack_like`]: cafa_hb::CausalityConfig::fasttrack_like

use std::collections::{HashMap, HashSet};

use cafa_hb::{base_graph, CausalityConfig, HbError, NodePoint, SyncGraph};
use cafa_trace::{NameId, OpRef, Record, TaskId, Trace, VarId};

/// A dense pseudo-thread id: one per regular thread, one per looper.
type Tid = usize;

/// A vector clock over pseudo-threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Vc(Vec<u32>);

impl Vc {
    fn new(n: usize) -> Self {
        Vc(vec![0; n])
    }

    fn join(&mut self, other: &Vc) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    fn get(&self, t: Tid) -> u32 {
        self.0[t]
    }

    fn set(&mut self, t: Tid, v: u32) {
        self.0[t] = v;
    }
}

/// An epoch `c@t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Epoch {
    tid: Tid,
    clock: u32,
}

impl Epoch {
    const ZERO: Epoch = Epoch { tid: 0, clock: 0 };

    fn le(self, vc: &Vc) -> bool {
        self.clock <= vc.get(self.tid)
    }
}

/// The read state of one variable: an exclusive epoch or a shared
/// vector clock (FastTrack's adaptive representation).
#[derive(Clone, Debug)]
enum ReadState {
    Epoch(Epoch),
    Shared(Vc),
}

/// An access site, for race deduplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Site {
    name: NameId,
    pc: u32,
}

#[derive(Clone, Debug)]
struct VarState {
    write: Epoch,
    write_site: Site,
    read: ReadState,
    read_sites: HashMap<Tid, Site>,
}

/// One race found by FastTrack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FastTrackRace {
    /// The variable raced on.
    pub var: VarId,
    /// Position of the access that exposed the race.
    pub at: OpRef,
    /// True when the exposing access is a write.
    pub is_write: bool,
}

/// FastTrack run summary.
#[derive(Clone, Debug, Default)]
pub struct FastTrackReport {
    /// Races, one per distinct (variable, prior site, current site).
    pub races: Vec<FastTrackRace>,
    /// Distinct variables with at least one race.
    pub racy_vars: usize,
}

/// Runs FastTrack over `trace`.
///
/// # Errors
///
/// Returns [`HbError`] if the conventional sync graph is cyclic (the
/// linearization needs a topological order).
pub fn fasttrack(trace: &Trace) -> Result<FastTrackReport, HbError> {
    let config = CausalityConfig::fasttrack_like();
    let graph = base_graph(trace, &config);
    let order = linearize(trace, &graph)?;

    // Pseudo-thread assignment.
    let mut tid_of_task: Vec<Tid> = vec![0; trace.task_count()];
    let mut next = trace.queue_count(); // tids 0..queues are loopers
    for t in trace.tasks() {
        tid_of_task[t.id.index()] = match t.queue() {
            Some(q) => q.index(),
            None => {
                let tid = next;
                next += 1;
                tid
            }
        };
    }
    let ntids = next;

    let mut clocks: Vec<Vc> = (0..ntids)
        .map(|t| {
            let mut vc = Vc::new(ntids);
            vc.set(t, 1);
            vc
        })
        .collect();
    let mut msg: HashMap<TaskId, Vc> = HashMap::new();
    let mut lock_vc: HashMap<cafa_trace::MonitorId, Vc> = HashMap::new();
    let mut cond: HashMap<(cafa_trace::MonitorId, u32), Vc> = HashMap::new();
    let mut reg: HashMap<cafa_trace::ListenerId, Vc> = HashMap::new();
    let mut rpc_fwd: HashMap<cafa_trace::TxnId, Vc> = HashMap::new();
    let mut rpc_back: HashMap<cafa_trace::TxnId, Vc> = HashMap::new();
    let mut vars: HashMap<VarId, VarState> = HashMap::new();

    let mut seen: HashSet<(VarId, Site, Site)> = HashSet::new();
    let mut report = FastTrackReport::default();
    let mut racy_vars: HashSet<VarId> = HashSet::new();

    let mut record_race = |report: &mut FastTrackReport,
                           racy_vars: &mut HashSet<VarId>,
                           var: VarId,
                           prior: Site,
                           site: Site,
                           at: OpRef,
                           is_write: bool| {
        let key = (var, prior.min(site), prior.max(site));
        if seen.insert(key) {
            report.races.push(FastTrackRace { var, at, is_write });
            racy_vars.insert(var);
        }
    };

    for action in order {
        match action {
            Action::Begin(task) => {
                if let Some(vc) = msg.remove(&task) {
                    let tid = tid_of_task[task.index()];
                    clocks[tid].join(&vc);
                }
            }
            Action::End(_) => {}
            Action::Op(at) => {
                let tid = tid_of_task[at.task.index()];
                let record = trace.record(at);
                let site = Site {
                    name: trace.task(at.task).name,
                    pc: match *record {
                        Record::ObjRead { pc, .. } | Record::ObjWrite { pc, .. } => pc.addr(),
                        _ => 0,
                    },
                };
                match *record {
                    Record::Fork { child } => {
                        let cid = tid_of_task[child.index()];
                        if cid != tid {
                            let snapshot = clocks[tid].clone();
                            clocks[cid].join(&snapshot);
                            let c = clocks[tid].get(tid);
                            clocks[tid].set(tid, c + 1);
                        }
                    }
                    Record::Join { child } => {
                        let cid = tid_of_task[child.index()];
                        if cid != tid {
                            let snapshot = clocks[cid].clone();
                            clocks[tid].join(&snapshot);
                            let c = clocks[cid].get(cid);
                            clocks[cid].set(cid, c + 1);
                        }
                    }
                    Record::Lock { monitor, .. } => {
                        if let Some(vc) = lock_vc.get(&monitor) {
                            clocks[tid].join(&vc.clone());
                        }
                    }
                    Record::Unlock { monitor, .. } => {
                        lock_vc.insert(monitor, clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::Notify { monitor, gen } => {
                        cond.entry((monitor, gen))
                            .or_insert_with(|| Vc::new(ntids))
                            .join(&clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::Wait { monitor, gen } => {
                        if let Some(vc) = cond.get(&(monitor, gen)) {
                            clocks[tid].join(&vc.clone());
                        }
                    }
                    Record::Send { event, .. } | Record::SendAtFront { event, .. } => {
                        msg.entry(event)
                            .or_insert_with(|| Vc::new(ntids))
                            .join(&clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::Register { listener } => {
                        reg.entry(listener)
                            .or_insert_with(|| Vc::new(ntids))
                            .join(&clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::Perform { listener } => {
                        if let Some(vc) = reg.get(&listener) {
                            clocks[tid].join(&vc.clone());
                        }
                    }
                    Record::RpcCall { txn } => {
                        rpc_fwd.insert(txn, clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::RpcHandle { txn } => {
                        if let Some(vc) = rpc_fwd.get(&txn) {
                            clocks[tid].join(&vc.clone());
                        }
                    }
                    Record::RpcReply { txn } => {
                        rpc_back.insert(txn, clocks[tid].clone());
                        let c = clocks[tid].get(tid);
                        clocks[tid].set(tid, c + 1);
                    }
                    Record::RpcReceive { txn } => {
                        if let Some(vc) = rpc_back.get(&txn) {
                            clocks[tid].join(&vc.clone());
                        }
                    }
                    Record::Read { var } | Record::ObjRead { var, .. } => {
                        let epoch = Epoch {
                            tid,
                            clock: clocks[tid].get(tid),
                        };
                        let state = vars.entry(var).or_insert_with(|| VarState {
                            write: Epoch::ZERO,
                            write_site: site,
                            read: ReadState::Epoch(Epoch::ZERO),
                            read_sites: HashMap::new(),
                        });
                        // Same-epoch fast path.
                        if let ReadState::Epoch(r) = state.read {
                            if r == epoch {
                                continue;
                            }
                        }
                        // Write-read race check.
                        if state.write != Epoch::ZERO && !state.write.le(&clocks[tid]) {
                            record_race(
                                &mut report,
                                &mut racy_vars,
                                var,
                                state.write_site,
                                site,
                                at,
                                false,
                            );
                        }
                        // Update read state adaptively.
                        match &mut state.read {
                            ReadState::Epoch(r) => {
                                if *r == Epoch::ZERO || r.le(&clocks[tid]) {
                                    *r = epoch;
                                    state.read_sites.clear();
                                    state.read_sites.insert(tid, site);
                                } else {
                                    let mut vc = Vc::new(ntids);
                                    vc.set(r.tid, r.clock);
                                    vc.set(tid, epoch.clock);
                                    state.read = ReadState::Shared(vc);
                                    state.read_sites.insert(tid, site);
                                }
                            }
                            ReadState::Shared(vc) => {
                                vc.set(tid, epoch.clock);
                                state.read_sites.insert(tid, site);
                            }
                        }
                    }
                    Record::Write { var } | Record::ObjWrite { var, .. } => {
                        let epoch = Epoch {
                            tid,
                            clock: clocks[tid].get(tid),
                        };
                        let state = vars.entry(var).or_insert_with(|| VarState {
                            write: Epoch::ZERO,
                            write_site: site,
                            read: ReadState::Epoch(Epoch::ZERO),
                            read_sites: HashMap::new(),
                        });
                        if state.write == epoch {
                            continue;
                        }
                        // Write-write race check.
                        if state.write != Epoch::ZERO && !state.write.le(&clocks[tid]) {
                            record_race(
                                &mut report,
                                &mut racy_vars,
                                var,
                                state.write_site,
                                site,
                                at,
                                true,
                            );
                        }
                        // Read-write race checks.
                        match &state.read {
                            ReadState::Epoch(r) => {
                                if *r != Epoch::ZERO && !r.le(&clocks[tid]) {
                                    let prior =
                                        state.read_sites.get(&r.tid).copied().unwrap_or(site);
                                    record_race(
                                        &mut report,
                                        &mut racy_vars,
                                        var,
                                        prior,
                                        site,
                                        at,
                                        true,
                                    );
                                }
                            }
                            ReadState::Shared(vc) => {
                                for t in 0..ntids {
                                    if vc.get(t) > clocks[tid].get(t) {
                                        let prior =
                                            state.read_sites.get(&t).copied().unwrap_or(site);
                                        record_race(
                                            &mut report,
                                            &mut racy_vars,
                                            var,
                                            prior,
                                            site,
                                            at,
                                            true,
                                        );
                                    }
                                }
                            }
                        }
                        state.write = epoch;
                        state.write_site = site;
                        state.read = ReadState::Epoch(Epoch::ZERO);
                        state.read_sites.clear();
                    }
                    _ => {}
                }
            }
        }
    }

    report.racy_vars = racy_vars.len();
    Ok(report)
}

/// A step of the linearized execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Begin(TaskId),
    Op(OpRef),
    End(TaskId),
}

/// Produces a global order of all records consistent with the graph.
fn linearize(trace: &Trace, graph: &SyncGraph) -> Result<Vec<Action>, HbError> {
    let topo = graph
        .topo_order()
        .map_err(|nodes| HbError::cyclic(graph, &nodes))?;
    let mut cursor: Vec<u32> = vec![0; trace.task_count()];
    let mut out = Vec::with_capacity(trace.stats().records + 2 * trace.task_count());
    for n in topo {
        let info = graph.node(n);
        let task = info.task;
        match info.point {
            NodePoint::Begin => out.push(Action::Begin(task)),
            NodePoint::Record(i) => {
                for j in cursor[task.index()]..=i {
                    out.push(Action::Op(OpRef::new(task, j)));
                }
                cursor[task.index()] = i + 1;
            }
            NodePoint::End => {
                let len = trace.body_len(task);
                for j in cursor[task.index()]..len {
                    out.push(Action::Op(OpRef::new(task, j)));
                }
                cursor[task.index()] = len;
                out.push(Action::End(task));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowlevel::count_races;

    #[test]
    fn unsynchronized_threads_race() {
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let v = VarId::new(0);
        b.write(a, v);
        b.write(c, v);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 1);
        assert_eq!(r.races.len(), 1);
        assert!(r.races[0].is_write);
    }

    #[test]
    fn fork_join_orders_accesses() {
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(0);
        b.write(t, v);
        let w = b.fork(t, p, "w");
        b.write(w, v);
        b.join(t, w);
        b.read(t, v);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 0);
    }

    #[test]
    fn locks_order_critical_sections() {
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let v = VarId::new(0);
        let m = cafa_trace::MonitorId::new(0);
        b.lock(a, m, 0);
        b.write(a, v);
        b.unlock(a, m, 0);
        b.lock(c, m, 1);
        b.write(c, v);
        b.unlock(c, m, 1);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 0, "lock_hb orders the critical sections");
    }

    #[test]
    fn events_on_one_looper_never_race() {
        // The defining blind spot of the conventional baseline.
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t1 = b.add_thread(p, "s1");
        let t2 = b.add_thread(p, "s2");
        let v = VarId::new(0);
        let e1 = b.post(t1, q, "e1", 0);
        let e2 = b.post(t2, q, "e2", 0);
        b.process_event(e1);
        b.write(e1, v);
        b.process_event(e2);
        b.write(e2, v);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 0);
    }

    #[test]
    fn thread_vs_event_races() {
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let worker = b.add_thread(p, "worker");
        let t2 = b.add_thread(p, "src");
        let v = VarId::new(0);
        b.write(worker, v);
        let e = b.post(t2, q, "ev", 0);
        b.process_event(e);
        b.write(e, v);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 1);
    }

    #[test]
    fn read_shared_then_write_races_all_readers() {
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let v = VarId::new(0);
        b.write(t, v);
        let r1 = b.fork(t, p, "r1");
        let r2 = b.fork(t, p, "r2");
        b.read(r1, v);
        b.read(r2, v);
        let w = b.fork(t, p, "w");
        b.write(w, v);
        let trace = b.finish().unwrap();
        let r = fasttrack(&trace).unwrap();
        assert_eq!(r.racy_vars, 1);
        // Two distinct read-write site pairs.
        assert_eq!(r.races.len(), 2);
    }

    #[test]
    fn racy_vars_agree_with_graph_model() {
        // Cross-validation: FastTrack's racy-variable set equals the
        // graph-based fasttrack_like model's.
        let mut b = cafa_trace::TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let main = b.add_thread(p, "main");
        let w = b.fork(main, p, "w");
        let v_synced = VarId::new(0);
        let v_racy = VarId::new(1);
        b.write(main, v_synced);
        let e = b.post(main, q, "ev", 0);
        b.process_event(e);
        b.read(e, v_synced); // ordered via send
        b.write(w, v_racy);
        b.read(e, v_racy); // racy: no order to w
        b.join(main, w);
        let trace = b.finish().unwrap();

        let ft = fasttrack(&trace).unwrap();
        let graph = count_races(&trace, CausalityConfig::fasttrack_like()).unwrap();
        assert_eq!(ft.racy_vars, graph.racy_vars);
        assert_eq!(ft.racy_vars, 1);
    }
}
