//! Detector edge cases: truncation accounting, report rendering, and
//! configuration interplay.

use cafa_core::lowlevel::count_races;
use cafa_core::{Analyzer, DetectorConfig, RaceClass};
use cafa_hb::CausalityConfig;
use cafa_trace::{DerefKind, ObjId, Pc, TraceBuilder, VarId};

#[test]
fn report_render_includes_all_sections() {
    let mut b = TraceBuilder::new("render");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t1 = b.add_thread(p, "s1");
    let t2 = b.add_thread(p, "s2");
    let v = VarId::new(0);
    let o = ObjId::new(1);
    let use_ev = b.post(t1, q, "useEv", 0);
    let free_ev = b.post(t2, q, "freeEv", 0);
    b.process_event(use_ev);
    b.method_enter(use_ev, Pc::new(0x1000), "useEv#handler");
    b.obj_read(use_ev, v, Some(o), Pc::new(0x1010));
    b.deref(use_ev, o, Pc::new(0x1014), DerefKind::Field);
    b.method_exit(use_ev, Pc::new(0x1000), false);
    b.process_event(free_ev);
    b.obj_write(free_ev, v, None, Pc::new(0x2010));
    let trace = b.finish().unwrap();

    let report = Analyzer::new().analyze(&trace).unwrap();
    assert_eq!(report.races.len(), 1);
    assert_eq!(report.count(RaceClass::IntraThread), 1);
    assert_eq!(report.count(RaceClass::Conventional), 0);
    let text = report.render(&trace);
    assert!(text.contains("1 race(s) reported"));
    assert!(text.contains("intra-thread"));
    assert!(text.contains("useEv"));
    assert!(text.contains("context: useEv#handler"));
}

#[test]
fn lowlevel_truncation_is_reported_not_silent() {
    // One site with more dynamic instances than the per-site budget,
    // all mutually ordered: every recorded instance pair shares no
    // task... construct many same-site instances in ONE task so pairs
    // are skipped and the site lists saturate.
    let mut b = TraceBuilder::new("trunc");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "poster");
    let v = VarId::new(0);
    // 12 events named identically (one site), each writing v; plus one
    // reader event from another thread. The writer events are chained
    // by queue rule 1 (equal delays, same sender) so writer-writer
    // pairs are ordered; writer-vs-reader decides racy-or-not within
    // the instance budget.
    for _ in 0..12 {
        let e = b.post(t, q, "writer", 0);
        b.process_event(e);
        b.write(e, v);
    }
    let t2 = b.add_thread(p, "rsrc");
    let r = b.post(t2, q, "reader", 0);
    b.process_event(r);
    b.read(r, v);
    let trace = b.finish().unwrap();
    let summary = count_races(&trace, CausalityConfig::cafa()).unwrap();
    // The reader is concurrent with the writers: one racy pair, found
    // within budget; the writer-writer site pair saturates its
    // instance cap without finding a racy instance and must be flagged.
    assert_eq!(summary.racy_pairs, 1);
    assert!(summary.pairs_checked > 0);
}

#[test]
fn detector_pair_cap_interacts_with_dedup() {
    let mut b = TraceBuilder::new("cap");
    let p = b.add_process();
    let q = b.add_queue(p);
    let v = VarId::new(0);
    let o = ObjId::new(1);
    // 6 concurrent use events (distinct threads) against 1 free event.
    for i in 0..6 {
        let t = b.add_thread(p, &format!("s{i}"));
        let e = b.post(t, q, "useEv", 0);
        b.process_event(e);
        b.obj_read(e, v, Some(o), Pc::new(0x1010));
        b.deref(e, o, Pc::new(0x1014), DerefKind::Field);
    }
    let tf = b.add_thread(p, "fsrc");
    let f = b.post(tf, q, "freeEv", 0);
    b.process_event(f);
    b.obj_write(f, v, None, Pc::new(0x2010));
    let trace = b.finish().unwrap();

    // Unlimited: one deduped race (same statement pair), 6 instances.
    let full = Analyzer::new().analyze(&trace).unwrap();
    assert_eq!(full.races.len(), 1);
    assert_eq!(full.stats.pairs_checked, 6);

    // Capped at 3: still finds the race (first instance), records the
    // truncation.
    let mut cfg = DetectorConfig::cafa();
    cfg.max_pairs_per_var = 3;
    let capped = Analyzer::with_config(cfg).analyze(&trace).unwrap();
    assert_eq!(capped.races.len(), 1);
    assert_eq!(capped.stats.truncated_vars, vec![v]);
}

#[test]
fn conventional_analyzer_classifies_everything_conventional() {
    // When the detector itself runs the conventional model, whatever it
    // reports is by definition class (c).
    let mut b = TraceBuilder::new("conv");
    let p = b.add_process();
    let t1 = b.add_thread(p, "a");
    let t2 = b.add_thread(p, "b");
    let v = VarId::new(0);
    let o = ObjId::new(1);
    b.obj_read(t1, v, Some(o), Pc::new(0x10));
    b.deref(t1, o, Pc::new(0x14), DerefKind::Field);
    b.obj_write(t2, v, None, Pc::new(0x20));
    let trace = b.finish().unwrap();

    let mut cfg = DetectorConfig::cafa();
    cfg.causality = CausalityConfig::conventional();
    let report = Analyzer::with_config(cfg).analyze(&trace).unwrap();
    assert_eq!(report.races.len(), 1);
    assert_eq!(report.races[0].class, RaceClass::Conventional);
}

#[test]
fn guard_on_different_variable_does_not_protect() {
    let mut b = TraceBuilder::new("wrong-guard");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t1 = b.add_thread(p, "s1");
    let t2 = b.add_thread(p, "s2");
    let guarded = VarId::new(0);
    let racy = VarId::new(1);
    let og = ObjId::new(1);
    let orc = ObjId::new(2);
    let use_ev = b.post(t1, q, "useEv", 0);
    b.process_event(use_ev);
    // Guard proves `guarded` non-null...
    b.obj_read(use_ev, guarded, Some(og), Pc::new(0x1010));
    b.guard(
        use_ev,
        cafa_trace::BranchKind::IfEqz,
        Pc::new(0x1014),
        Pc::new(0x1040),
        og,
    );
    // ...but the use inside the region is of `racy`.
    b.obj_read(use_ev, racy, Some(orc), Pc::new(0x1018));
    b.deref(use_ev, orc, Pc::new(0x101c), DerefKind::Field);
    let free_ev = b.post(t2, q, "freeEv", 0);
    b.process_event(free_ev);
    b.obj_write(free_ev, racy, None, Pc::new(0x2010));
    let trace = b.finish().unwrap();

    let report = Analyzer::new().analyze(&trace).unwrap();
    assert_eq!(report.races.len(), 1, "the guard tests the wrong pointer");
}
