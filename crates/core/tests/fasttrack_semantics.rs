//! FastTrack semantics beyond the unit tests: synchronization through
//! every channel kind, the adaptive read representation, and wait
//! release/reacquire.

use cafa_core::fasttrack::fasttrack;
use cafa_trace::{MonitorId, TraceBuilder, VarId};

#[test]
fn notify_wait_orders_accesses() {
    let mut b = TraceBuilder::new("nw");
    let p = b.add_process();
    let a = b.add_thread(p, "producer");
    let c = b.add_thread(p, "consumer");
    let v = VarId::new(0);
    let m = MonitorId::new(0);
    b.write(a, v);
    b.notify(a, m, 1);
    b.wait(c, m, 1);
    b.read(c, v);
    let trace = b.finish().unwrap();
    assert_eq!(fasttrack(&trace).unwrap().racy_vars, 0);
}

#[test]
fn rpc_orders_accesses_across_processes() {
    let mut b = TraceBuilder::new("rpc");
    let p1 = b.add_process();
    let p2 = b.add_process();
    let caller = b.add_thread(p1, "caller");
    let svc = b.add_thread(p2, "svc");
    let v = VarId::new(0);
    b.write(caller, v);
    let (txn, _) = b.rpc_call(caller);
    b.rpc_handle(svc, txn);
    b.read(svc, v);
    b.write(svc, v);
    b.rpc_reply(svc, txn);
    b.rpc_receive(caller, txn);
    b.read(caller, v);
    let trace = b.finish().unwrap();
    assert_eq!(fasttrack(&trace).unwrap().racy_vars, 0);
}

#[test]
fn register_perform_orders_accesses() {
    let mut b = TraceBuilder::new("listener");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "main");
    let l = b.add_listener("android.view");
    let v = VarId::new(0);
    b.write(t, v);
    b.register(t, l);
    let ev = b.external(q, "cb");
    b.process_event(ev);
    b.perform(ev, l);
    b.read(ev, v);
    let trace = b.finish().unwrap();
    assert_eq!(fasttrack(&trace).unwrap().racy_vars, 0);
}

#[test]
fn wait_reacquire_does_not_create_false_order() {
    // Two threads touch v; one waits on an unrelated monitor in
    // between. The wait must not order the accesses.
    let mut b = TraceBuilder::new("wait-unrelated");
    let p = b.add_process();
    let a = b.add_thread(p, "a");
    let c = b.add_thread(p, "c");
    let helper = b.add_thread(p, "helper");
    let v = VarId::new(0);
    let m = MonitorId::new(0);
    b.write(a, v);
    b.lock(c, m, 1);
    b.unlock(c, m, 1);
    b.lock(helper, m, 2);
    b.notify(helper, m, 1);
    b.unlock(helper, m, 2);
    b.write(c, v);
    let trace = b.finish().unwrap();
    let r = fasttrack(&trace).unwrap();
    assert_eq!(r.racy_vars, 1, "a's write and c's write stay unordered");
}

#[test]
fn read_exclusive_epoch_upgrades_and_downgrades() {
    // Same-thread reads stay in the exclusive-epoch representation;
    // a second thread forces the shared representation; a write after
    // a join collapses it back without reporting.
    let mut b = TraceBuilder::new("adaptive");
    let p = b.add_process();
    let t = b.add_thread(p, "main");
    let v = VarId::new(0);
    b.write(t, v);
    b.read(t, v);
    b.read(t, v); // same epoch fast path
    let r1 = b.fork(t, p, "r1");
    b.read(r1, v);
    let r2 = b.fork(t, p, "r2");
    b.read(r2, v); // now read-shared
    b.join(t, r1);
    b.join(t, r2);
    b.write(t, v); // ordered after both readers
    let trace = b.finish().unwrap();
    assert_eq!(fasttrack(&trace).unwrap().racy_vars, 0);
}

#[test]
fn distinct_variables_race_independently() {
    let mut b = TraceBuilder::new("multi");
    let p = b.add_process();
    let a = b.add_thread(p, "a");
    let c = b.add_thread(p, "c");
    for i in 0..3 {
        b.write(a, VarId::new(i));
        b.write(c, VarId::new(i));
    }
    // A fourth variable only one thread touches.
    b.write(a, VarId::new(3));
    let trace = b.finish().unwrap();
    let r = fasttrack(&trace).unwrap();
    assert_eq!(r.racy_vars, 3);
    assert_eq!(
        r.races.len(),
        3,
        "one write-write site pair per shared variable"
    );
}
