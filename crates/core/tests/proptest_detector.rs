//! Property tests: the use-free race detector on arbitrary traces.

use proptest::prelude::*;

use cafa_core::{Analyzer, DetectorConfig};
use cafa_trace::arbitrary::trace_from_tape;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Analysis is deterministic.
    #[test]
    fn analysis_is_deterministic(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let a = Analyzer::new().analyze(&trace);
        let b = Analyzer::new().analyze(&trace);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                prop_assert_eq!(ra.races, rb.races);
                prop_assert_eq!(ra.filtered, rb.filtered);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic success/failure"),
        }
    }

    /// Race endpoints are always in different tasks, on the reported
    /// variable, and genuinely a use and a free.
    #[test]
    fn reported_races_are_well_formed(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let Ok(report) = Analyzer::new().analyze(&trace) else { return Ok(()) };
        for race in &report.races {
            prop_assert_ne!(race.use_site.at.task, race.free_site.at.task);
            prop_assert_eq!(race.use_site.var, race.var);
            prop_assert_eq!(race.free_site.var, race.var);
            let free_rec = trace.record(race.free_site.at);
            prop_assert!(free_rec.is_free());
            let use_rec = trace.record(race.use_site.at);
            let is_obj_read = matches!(use_rec, cafa_trace::Record::ObjRead { .. });
            prop_assert!(is_obj_read, "use site must be a pointer read");
        }
    }

    /// The heuristics only ever *remove* reports: unfiltered ⊇ filtered.
    #[test]
    fn heuristics_only_remove(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let (Ok(filtered), Ok(unfiltered)) = (
            Analyzer::new().analyze(&trace),
            Analyzer::with_config(DetectorConfig::unfiltered()).analyze(&trace),
        ) else {
            return Ok(());
        };
        prop_assert!(unfiltered.races.len() >= filtered.races.len());
        // Every surviving race also appears unfiltered.
        for race in &filtered.races {
            prop_assert!(
                unfiltered.races.iter().any(|r| {
                    r.var == race.var
                        && r.use_site.read_pc == race.use_site.read_pc
                        && r.free_site.pc == race.free_site.pc
                }),
                "race lost when disabling filters"
            );
        }
    }

    /// FastTrack never crashes and agrees with itself across runs.
    #[test]
    fn fasttrack_is_deterministic(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let a = cafa_core::fasttrack::fasttrack(&trace);
        let b = cafa_core::fasttrack::fasttrack(&trace);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                prop_assert_eq!(ra.racy_vars, rb.racy_vars);
                prop_assert_eq!(ra.races.len(), rb.races.len());
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic success/failure"),
        }
    }
}
