//! Differential suite: island-partitioned analysis ≡ monolithic.
//!
//! The partitioned pipeline (`PartitionMode::Auto`/`Force`) must
//! produce **byte-identical** JSON reports to the monolithic path
//! (`PartitionMode::Off`) on every corpus we have — the ten paper
//! apps, a sampled slice of the generated DSL corpus, the seeded
//! scale trio, and arbitrary proptest tapes — at worker counts 1, 2,
//! and 8. Byte equality (not just equal race sets) is the contract
//! the CI golden-report gates rely on.

use proptest::prelude::*;

use cafa_core::{json::render_json, Analyzer, DetectorConfig, PartitionMode};
use cafa_model::scale::{generate_scale, ScaleConfig};
use cafa_model::{GenConfig, GeneratedCatalog, SizeClass};
use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::Trace;

const SWEEP_THREADS: [usize; 3] = [1, 2, 8];

/// The monolithic reference report for `trace`, as JSON bytes.
fn monolithic_json(trace: &Trace) -> String {
    let config = DetectorConfig {
        partition: PartitionMode::Off,
        ..DetectorConfig::cafa()
    };
    let report = Analyzer::with_config(config)
        .analyze(trace)
        .expect("monolithic analysis succeeds on corpus traces");
    render_json(&report, trace)
}

/// Asserts Auto and Force match the monolithic bytes at every sweep
/// worker count.
fn assert_partition_matches(trace: &Trace, label: &str) {
    let reference = monolithic_json(trace);
    for mode in [PartitionMode::Auto, PartitionMode::Force] {
        for threads in SWEEP_THREADS {
            let config = DetectorConfig {
                threads,
                partition: mode,
                ..DetectorConfig::cafa()
            };
            let report = Analyzer::with_config(config)
                .analyze(trace)
                .expect("partitioned analysis succeeds wherever monolithic does");
            assert_eq!(
                render_json(&report, trace),
                reference,
                "{label}: {mode:?} at {threads} thread(s) drifted from monolithic"
            );
        }
    }
}

/// Every paper app (the Table 1 catalog, golden-report seed 0):
/// partitioned ≡ monolithic. The apps chain external events into one
/// island, so this pins the single-island fallback too.
#[test]
fn paper_apps_partitioned_equals_monolithic() {
    for app in cafa_apps::all_apps() {
        let outcome = app.record(0).expect("catalog apps record clean");
        let trace = outcome.trace.expect("instrumented runs produce a trace");
        assert_partition_matches(&trace, &app.name);
    }
}

/// A sampled slice of the generated DSL corpus (every size class
/// appears under `Mixed`): partitioned ≡ monolithic.
#[test]
fn generated_corpus_partitioned_equals_monolithic() {
    let catalog = GeneratedCatalog::new(GenConfig {
        seed: 11,
        count: 12,
        size: SizeClass::Mixed,
    });
    for spec in catalog.specs().expect("generated models lower") {
        let outcome = spec.record(0).expect("generated apps record clean");
        let trace = outcome.trace.expect("instrumented runs produce a trace");
        assert_partition_matches(&trace, &spec.name);
    }
}

/// The seed-42/43/44 scale trio at 50k events: partitioned ≡
/// monolithic, and Auto genuinely engages (multi-island fleet traces
/// are past the record threshold).
#[test]
fn scale_trio_partitioned_equals_monolithic() {
    for seed in [42, 43, 44] {
        let app = generate_scale(ScaleConfig::new(seed, 50_000));
        let reference = monolithic_json(&app.trace);
        for threads in SWEEP_THREADS {
            let config = DetectorConfig {
                threads,
                partition: PartitionMode::Auto,
                ..DetectorConfig::cafa()
            };
            let report = Analyzer::with_config(config)
                .analyze(&app.trace)
                .expect("scale traces are acyclic by construction");
            assert!(
                report.stats.partition.is_some(),
                "seed {seed}: auto partitioning must engage on a fleet trace"
            );
            assert_eq!(
                render_json(&report, &app.trace),
                reference,
                "seed {seed}: partitioned drifted from monolithic at {threads} thread(s)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary tapes, partitioning forced: byte-identical reports
    /// (or the identical error) at every sweep worker count.
    #[test]
    fn arbitrary_traces_partitioned_equals_monolithic(
        tape in proptest::collection::vec(any::<u8>(), 0..400)
    ) {
        let trace = trace_from_tape(&tape);
        let off = DetectorConfig {
            partition: PartitionMode::Off,
            ..DetectorConfig::cafa()
        };
        let reference = Analyzer::with_config(off).analyze(&trace);
        for threads in SWEEP_THREADS {
            let config = DetectorConfig {
                threads,
                partition: PartitionMode::Force,
                ..DetectorConfig::cafa()
            };
            let forced = Analyzer::with_config(config).analyze(&trace);
            match (&reference, &forced) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    render_json(a, &trace),
                    render_json(b, &trace),
                    "forced partition drifted at {} thread(s)",
                    threads
                ),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "partitioned and monolithic disagree on success at {} thread(s)",
                    threads
                ),
            }
        }
    }
}
