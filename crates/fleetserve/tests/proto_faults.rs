//! Fault injection against the framed ingest protocol.
//!
//! A fleet proxy's connection is untrusted input, exactly like a
//! trace file: the parser must turn truncation, flipped bytes, and
//! hostile length prefixes into typed [`ProtoError`]s at the
//! offending offset, never panic, and never size an allocation (or
//! grow its buffer) from an unchecked wire value. Mirrors the trace
//! crate's `binary_faults` suite at the protocol layer.

use proptest::prelude::*;

use cafa_fleetserve::proto::{
    encode_data_frame, encode_handshake, encode_offset_frame, encode_stats_frame, frame, Mode,
    ProtoItem, ProtoReader, MAX_FRAME_LEN, MAX_SESSION_ID,
};

/// The parser buffers at most one incomplete header (bounded by the
/// max session id plus a few fixed bytes) — payloads stream through.
const HEADER_BOUND: usize = MAX_SESSION_ID + 16;

/// A valid framed conversation: handshake, then data/stats/offset
/// frames for a handful of sessions.
fn valid_framed_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = encode_handshake(Mode::Framed, "proxy-0");
    for (i, p) in payloads.iter().enumerate() {
        let session = format!("device-{}", i % 3);
        bytes.extend_from_slice(&encode_data_frame(&session, p));
        if i % 4 == 1 {
            bytes.extend_from_slice(&encode_stats_frame());
        }
        if i % 5 == 2 {
            bytes.extend_from_slice(&encode_offset_frame(&session));
        }
    }
    bytes
}

/// Feeds `bytes` at `chunk`, returning the items or the first error.
fn feed(bytes: &[u8], chunk: usize) -> Result<Vec<ProtoItem>, cafa_fleetserve::ProtoError> {
    let mut reader = ProtoReader::new();
    let mut items = Vec::new();
    for c in bytes.chunks(chunk.max(1)) {
        reader.feed(c, &mut items)?;
        assert!(
            reader.buffered_bytes() <= HEADER_BOUND,
            "parser buffered {} bytes",
            reader.buffered_bytes()
        );
    }
    reader.eof(&mut items);
    Ok(items)
}

/// A DATA length prefix of `u32::MAX` is rejected at its exact
/// offset, before any buffer is sized from it.
#[test]
fn hostile_data_length_is_rejected_before_allocation() {
    let mut bytes = encode_handshake(Mode::Framed, "p");
    let header = bytes.len() as u64;
    bytes.push(frame::DATA);
    bytes.extend_from_slice(&4u16.to_be_bytes());
    bytes.extend_from_slice(b"dev1");
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.extend_from_slice(&[0u8; 32]); // would-be payload
    let err = feed(&bytes, 3).expect_err("must reject");
    match err {
        cafa_fleetserve::ProtoError::FrameTooLong { at, len } => {
            assert_eq!(at, header + 1 + 2 + 4, "offset of the length prefix");
            assert_eq!(len, u64::from(u32::MAX));
            assert!(len > MAX_FRAME_LEN);
        }
        other => panic!("wrong error: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a valid framed conversation anywhere, delivered at
    /// any chunking, never panics and never errors: the complete
    /// prefix parses, the torn item simply stays pending (exactly
    /// like a trace stream cut mid-record).
    #[test]
    fn truncation_parses_the_complete_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..60), 1..6),
        cut in any::<u32>(),
        chunk in 1usize..40,
    ) {
        let bytes = valid_framed_stream(&payloads);
        let cut = cut as usize % bytes.len();
        let full = feed(&bytes, chunk).expect("valid stream");
        let truncated = feed(&bytes[..cut], chunk).expect("truncation is not a protocol error");
        prop_assert!(truncated.len() <= full.len());
    }

    /// Flipping any byte never panics the parser: it either still
    /// parses (the flip landed in a payload) or fails with a typed
    /// error whose offset is within the stream.
    #[test]
    fn byte_flips_yield_typed_errors_not_panics(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..5),
        flip in any::<(u32, u8)>(),
        chunk in 1usize..32,
    ) {
        let mut bytes = valid_framed_stream(&payloads);
        let idx = flip.0 as usize % bytes.len();
        bytes[idx] ^= flip.1 | 1;
        match feed(&bytes, chunk) {
            Ok(_) => {}
            Err(e) => {
                let at = match e {
                    cafa_fleetserve::ProtoError::BadVersion { at, .. }
                    | cafa_fleetserve::ProtoError::BadMode { at, .. }
                    | cafa_fleetserve::ProtoError::BadSessionIdLength { at, .. }
                    | cafa_fleetserve::ProtoError::BadSessionIdByte { at, .. }
                    | cafa_fleetserve::ProtoError::BadFrameType { at, .. }
                    | cafa_fleetserve::ProtoError::FrameTooLong { at, .. } => at,
                };
                prop_assert!(at <= bytes.len() as u64, "error offset {at} beyond stream");
            }
        }
    }

    /// The parse is chunk-invariant: any chunking of a valid stream
    /// coalesces to the same items as one whole-buffer feed.
    #[test]
    fn arbitrary_chunkings_match_the_whole_buffer_parse(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..50), 1..5),
        chunk in 1usize..64,
    ) {
        fn coalesce(items: Vec<ProtoItem>) -> Vec<ProtoItem> {
            let mut out: Vec<ProtoItem> = Vec::new();
            for item in items {
                match (out.last_mut(), item) {
                    (Some(ProtoItem::Data { session: s, bytes }),
                     ProtoItem::Data { session, bytes: more })
                        if *s == session && !bytes.is_empty() && !more.is_empty() =>
                        bytes.extend_from_slice(&more),
                    (_, item) => out.push(item),
                }
            }
            out
        }
        let bytes = valid_framed_stream(&payloads);
        let whole = coalesce(feed(&bytes, bytes.len()).expect("valid"));
        let chunked = coalesce(feed(&bytes, chunk).expect("valid"));
        prop_assert_eq!(whole, chunked);
    }

    /// Random garbage (not a handshake) always degrades to raw
    /// passthrough or a typed error — never a panic, never unbounded
    /// buffering.
    #[test]
    fn random_garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..200),
        chunk in 1usize..32,
    ) {
        let _ = feed(&garbage, chunk);
    }
}
