//! End-to-end ingest server tests: concurrent sessions over real TCP
//! connections, byte-identical to batch analysis at every worker
//! count; eviction under a memory budget; restart-and-resume from the
//! state directory; session isolation; the admin metrics surface.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cafa_apps::all_apps;
use cafa_core::json::render_json;
use cafa_core::Analyzer;
use cafa_fleetserve::client::{push_trace, FramedClient, ServerFrame};
use cafa_fleetserve::proto::{encode_handshake, Mode};
use cafa_fleetserve::server::{Server, ServerConfig};
use cafa_fleetserve::ClientError;
use cafa_stream::{IncrementalSession, StreamOptions};
use cafa_trace::{to_binary_vec, Trace};

/// A server running on a background thread, stoppable from the test.
struct TestServer {
    server: Arc<Server>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    addr: String,
}

impl TestServer {
    fn start(config: ServerConfig, admin: bool) -> Self {
        let admin_addr = admin.then_some("127.0.0.1:0");
        let server =
            Arc::new(Server::bind("127.0.0.1:0", admin_addr, config).expect("bind succeeds"));
        let addr = server.local_addr().expect("bound").to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || server.run(&stop))
        };
        Self {
            server,
            stop,
            handle: Some(handle),
            addr,
        }
    }

    fn admin_addr(&self) -> String {
        self.server
            .admin_addr()
            .expect("addr readable")
            .expect("admin configured")
            .to_string()
    }

    fn stop(mut self) -> Arc<Server> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().expect("server thread");
        }
        Arc::clone(&self.server)
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Records every catalog app once per process: (name, wire bytes,
/// batch report). Shared across tests — recording and batch-analyzing
/// the ten apps is the expensive part of this suite.
fn corpus() -> &'static [(String, Vec<u8>, String)] {
    static CORPUS: std::sync::OnceLock<Vec<(String, Vec<u8>, String)>> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        all_apps()
            .iter()
            .map(|app| {
                let outcome = app.record(0).expect("workload records cleanly");
                let trace = outcome.trace.expect("instrumentation is on");
                (
                    app.name.to_owned(),
                    to_binary_vec(&trace),
                    batch_json(&trace),
                )
            })
            .collect()
    })
}

fn batch_json(trace: &Trace) -> String {
    let report = Analyzer::new().analyze(trace).expect("analysis succeeds");
    render_json(&report, trace)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafa-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ten concurrent sessions — one per catalog app, each on its own
/// connection with its own adversarial chunk size — produce reports
/// byte-identical to batch `analyze`, at 1, 2, and 8 workers.
#[test]
fn concurrent_sessions_match_batch_at_every_worker_count() {
    let corpus = corpus();
    assert_eq!(corpus.len(), 10, "the full paper catalog");
    for threads in [1usize, 2, 8] {
        let server = TestServer::start(
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
            false,
        );
        std::thread::scope(|scope| {
            for (i, (name, bytes, expected)) in corpus.iter().enumerate() {
                let addr = server.addr.clone();
                // Deliberately misaligned chunk sizes per session.
                let chunk = [7usize, 64, 389, 1024, 4096][i % 5];
                scope.spawn(move || {
                    let outcome = push_trace(&addr, name, bytes, chunk).expect("push succeeds");
                    assert_eq!(outcome.resumed_at, 0, "{name}: fresh session");
                    let report = outcome.report.expect("trace is complete");
                    assert_eq!(
                        report, *expected,
                        "{name} at {threads} workers, chunk {chunk}"
                    );
                });
            }
        });
        server.stop();
    }
}

/// Stopping the server mid-trace and starting a new one on the same
/// state directory resumes every session: the client re-sends from
/// the durable offset the handshake reports, and the final report is
/// byte-identical to an uninterrupted batch analysis.
#[test]
fn restart_resumes_mid_trace_sessions_byte_identically() {
    let corpus = corpus();
    let dir = tmp_dir("restart");
    let config = || ServerConfig {
        threads: 2,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let picks: Vec<_> = corpus.iter().take(3).collect();
    let cuts: Vec<usize> = picks.iter().map(|(_, b, _)| b.len() / 2).collect();

    let server = TestServer::start(config(), false);
    for ((name, bytes, _), &cut) in picks.iter().zip(&cuts) {
        let mut conn = TcpStream::connect(&server.addr).expect("connect");
        conn.write_all(&encode_handshake(Mode::Stream, name))
            .expect("handshake");
        let mut reply = [0u8; 12];
        conn.read_exact(&mut reply).expect("offset reply");
        conn.write_all(&bytes[..cut]).expect("partial trace");
        // Drop mid-trace: the session must survive on disk.
    }
    // Wait until every partial byte is journaled.
    let deadline = Instant::now() + Duration::from_secs(10);
    for ((name, _, _), &cut) in picks.iter().zip(&cuts) {
        loop {
            let durable = server
                .server
                .registry()
                .session(name)
                .map_or(0, |m| m.durable_bytes);
            if durable == cut as u64 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{name}: journal never reached {cut}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    server.stop();

    let revived = TestServer::start(config(), false);
    for ((name, bytes, expected), &cut) in picks.iter().zip(&cuts) {
        let outcome = push_trace(&revived.addr, name, bytes, 1024).expect("resumed push");
        assert_eq!(
            outcome.resumed_at, cut as u64,
            "{name}: server reports the journaled prefix"
        );
        let report = outcome.report.expect("trace completes after resume");
        assert_eq!(report, *expected, "{name}: resumed report");
    }
    revived.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under a memory budget, cold sessions are evicted to their journals
/// and restored transparently on their next byte: every report stays
/// byte-identical, evictions and restores actually happen, and the
/// settled resident footprint never exceeds the budget.
#[test]
fn eviction_under_budget_keeps_reports_identical() {
    let corpus = corpus();
    // The three smallest traces: each restore replays the session's
    // whole journal, so eviction thrash is quadratic in trace length.
    let mut picks: Vec<_> = corpus.iter().collect();
    picks.sort_by_key(|(_, bytes, _)| bytes.len());
    picks.truncate(3);
    // Self-calibrating budget: a third of the summed final footprints,
    // so the sessions cannot all stay resident together.
    let sum: usize = picks
        .iter()
        .map(|(_, bytes, _)| {
            let mut s = IncrementalSession::new(StreamOptions::default());
            s.push(bytes).expect("valid trace");
            s.footprint_bytes()
        })
        .sum();
    let budget = (sum / 3).max(4096);

    let dir = tmp_dir("evict");
    let server = TestServer::start(
        ServerConfig {
            threads: 2,
            state_dir: Some(dir.clone()),
            memory_budget: Some(budget),
            ..ServerConfig::default()
        },
        false,
    );

    // One multiplexed proxy connection interleaving all sessions
    // chunk by chunk — the access pattern that forces evict/restore
    // cycling.
    let mut client = FramedClient::connect(&server.addr, "proxy").expect("connect");
    let chunk = 16384usize;
    let mut offsets = vec![0usize; picks.len()];
    loop {
        let mut progressed = false;
        for (i, (name, bytes, _)) in picks.iter().enumerate() {
            if offsets[i] < bytes.len() {
                let end = (offsets[i] + chunk).min(bytes.len());
                client
                    .send_data(name, &bytes[offsets[i]..end])
                    .expect("send");
                offsets[i] = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    client.finish_writes().expect("half-close");
    let frames = client.drain().expect("drain replies");

    for (name, _, expected) in &picks {
        let report = frames.iter().find_map(|f| match f {
            ServerFrame::Report { session, payload } if session == name => {
                Some(String::from_utf8_lossy(payload).into_owned())
            }
            _ => None,
        });
        assert_eq!(
            report.as_deref(),
            Some(expected.as_str()),
            "{name}: report under eviction pressure"
        );
    }

    let server = server.stop();
    let totals = server.registry().totals();
    assert!(totals.evictions > 0, "budget forced evictions: {totals:?}");
    assert!(
        totals.restores > 0,
        "cold sessions were restored: {totals:?}"
    );
    assert!(
        totals.settled_peak_bytes <= budget,
        "settled resident footprint {} exceeds budget {budget}",
        totals.settled_peak_bytes
    );
    assert!(
        sum > budget,
        "calibration: more session state existed ({sum}) than the budget ({budget})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One session's malformed bytes fail that session alone: the same
/// multiplexed connection still completes its healthy session, and
/// the failure comes back as a typed, session-scoped ERROR frame.
#[test]
fn a_failing_session_leaves_others_unaffected() {
    let corpus = corpus();
    let (name, bytes, expected) = &corpus[0];
    let server = TestServer::start(ServerConfig::default(), false);

    let mut client = FramedClient::connect(&server.addr, "proxy").expect("connect");
    // A hostile trace header: version varint that overflows u32 —
    // rejected by the decoder at a typed offset.
    let mut garbage = b"CAFT".to_vec();
    garbage.extend_from_slice(&[0xff; 9]);
    garbage.push(0x01);
    client.send_data("bad-device", &garbage).expect("send");
    for part in bytes.chunks(1024) {
        client.send_data(name, part).expect("send");
    }
    client.finish_writes().expect("half-close");
    let frames = client.drain().expect("drain");

    let error = frames.iter().find_map(|f| match f {
        ServerFrame::Error { session, message } if session == "bad-device" => Some(message.clone()),
        _ => None,
    });
    let message = error.expect("bad session fails with a typed error");
    assert!(
        message.contains("bad-device"),
        "error names the session: {message}"
    );
    let report = frames.iter().find_map(|f| match f {
        ServerFrame::Report { session, payload } if session == name => {
            Some(String::from_utf8_lossy(payload).into_owned())
        }
        _ => None,
    });
    assert_eq!(
        report.as_deref(),
        Some(expected.as_str()),
        "healthy session is unaffected"
    );
    server.stop();
}

/// A second connection for an attached session is refused with a
/// session-scoped error; the first connection keeps working.
#[test]
fn second_attach_of_a_live_session_is_refused() {
    let corpus = corpus();
    let (name, bytes, expected) = &corpus[1];
    let server = TestServer::start(ServerConfig::default(), false);

    let mut first = TcpStream::connect(&server.addr).expect("connect");
    first
        .write_all(&encode_handshake(Mode::Stream, name))
        .expect("handshake");
    let mut reply = [0u8; 12];
    first.read_exact(&mut reply).expect("offset reply");
    first.write_all(&bytes[..bytes.len() / 2]).expect("prefix");

    let err = push_trace(&server.addr, name, bytes, 4096).expect_err("busy session");
    match err {
        ClientError::Rejected { session, message } => {
            assert_eq!(session, *name);
            assert!(message.contains("already attached"), "{message}");
        }
        other => panic!("expected a session-busy rejection, got {other}"),
    }

    // The original connection finishes unharmed.
    first.write_all(&bytes[bytes.len() / 2..]).expect("suffix");
    first
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut report = String::new();
    first.read_to_string(&mut report).expect("report");
    assert_eq!(report, *expected);
    server.stop();
}

/// The admin listener serves per-session and aggregate metrics as
/// JSON; the in-band STATS frame returns the same document shape.
#[test]
fn admin_surface_reports_session_metrics() {
    let corpus = corpus();
    let (name, bytes, _) = &corpus[2];
    let server = TestServer::start(ServerConfig::default(), true);
    let outcome = push_trace(&server.addr, name, bytes, 4096).expect("push");
    assert!(outcome.report.is_some());

    let metrics =
        cafa_fleetserve::fetch_admin_metrics(&server.admin_addr()).expect("admin metrics");
    assert!(metrics.contains("\"per_session\""), "{metrics}");
    assert!(
        metrics.contains(&format!("\"session\": \"{name}\"")),
        "{metrics}"
    );
    assert!(metrics.contains("\"phase\": \"completed\""), "{metrics}");
    assert!(metrics.contains("\"completed\": 1"), "{metrics}");

    let mut client = FramedClient::connect(&server.addr, "probe").expect("connect");
    client.request_stats().expect("stats request");
    client.finish_writes().expect("half-close");
    let frames = client.drain().expect("drain");
    let stats = frames.iter().find_map(|f| match f {
        ServerFrame::StatsReply { payload } => Some(String::from_utf8_lossy(payload).into_owned()),
        _ => None,
    });
    let stats = stats.expect("stats reply arrives");
    assert!(stats.contains("\"per_session\""), "{stats}");
    server.stop();
}

/// The PR 2 regression: the listener must keep accepting — two
/// sequential raw (anonymous passthrough) connections each get a
/// full report from one server process.
#[test]
fn listener_accepts_connections_in_sequence_not_just_one() {
    let corpus = corpus();
    let (_, bytes, expected) = &corpus[0];
    let server = TestServer::start(ServerConfig::default(), false);
    for round in 0..2 {
        let mut conn = TcpStream::connect(&server.addr).expect("connect");
        conn.write_all(bytes).expect("raw trace");
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut report = String::new();
        conn.read_to_string(&mut report).expect("report");
        assert_eq!(report, *expected, "round {round}");
    }
    server.stop();
}
