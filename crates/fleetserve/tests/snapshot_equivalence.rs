//! Snapshot/restore equivalence: journaling a session's chunks,
//! dropping the in-memory state, restoring from the journal, and
//! pushing the rest of the trace must produce a final report
//! byte-identical to an uninterrupted analysis — for every catalog
//! app and sampled generated apps, with the cut placed mid-chunk,
//! mid-task, and on a sealed-task boundary.
//!
//! This is the property the server's eviction and crash-restart
//! paths lean on; here it is pinned directly against the journal
//! format, without a socket in the way.

use std::path::PathBuf;

use cafa_apps::{all_apps, resolve};
use cafa_core::json::render_json;
use cafa_core::Analyzer;
use cafa_fleetserve::journal::{read_frames, Journal};
use cafa_stream::{IncrementalSession, StreamOptions};
use cafa_trace::{to_binary_vec, Trace};

const CHUNK: usize = 512;

fn batch_json(trace: &Trace) -> String {
    let report = Analyzer::new().analyze(trace).expect("analysis succeeds");
    render_json(&report, trace)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafa-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The cut points exercised for each trace: mid-chunk (not a multiple
/// of the journal chunk size), mid-task, and the first chunk boundary
/// after a task sealed.
fn cut_points(bytes: &[u8]) -> Vec<(String, usize)> {
    let mut cuts = vec![
        // Mid-chunk AND mid-record: one third, nudged off alignment.
        ("mid-chunk".to_owned(), (bytes.len() / 3) | 1),
        // Mid-task: half way through the stream.
        ("mid-task".to_owned(), bytes.len() / 2),
    ];
    // Sealed-task boundary: feed in journal-sized chunks and stop at
    // the first boundary where the sealed-task count increased.
    let mut probe = IncrementalSession::new(StreamOptions::default());
    let mut sealed = 0usize;
    let mut fed = 0usize;
    for chunk in bytes.chunks(CHUNK) {
        probe.push(chunk).expect("valid trace");
        fed += chunk.len();
        let now = probe.progress().tasks_sealed;
        if now > sealed && fed < bytes.len() {
            cuts.push(("sealed-boundary".to_owned(), fed));
            break;
        }
        sealed = now;
    }
    cuts
}

/// Journals the prefix chunk-by-chunk, drops all live state, restores
/// from the journal alone, pushes the remainder, and checks the final
/// report against the uninterrupted batch analysis.
fn check_restore_roundtrip(dir: &std::path::Path, name: &str, bytes: &[u8], expected: &str) {
    for (kind, cut) in cut_points(bytes) {
        let session_id = format!("{name}-{kind}");
        {
            let mut journal = Journal::open(dir, &session_id).expect("journal opens");
            let mut live = IncrementalSession::new(StreamOptions::default());
            let mut fed = 0usize;
            while fed < cut {
                let end = (fed + CHUNK).min(cut);
                journal.append(&bytes[fed..end]).expect("append");
                live.push(&bytes[fed..end]).expect("valid prefix");
                fed = end;
            }
            assert_eq!(
                journal.durable_offset(),
                cut as u64,
                "{session_id}: journal covers the prefix"
            );
            // `live` and `journal` drop here: the eviction moment.
        }

        let frames = read_frames(dir, &session_id).expect("journal reads back");
        assert_eq!(
            frames.iter().map(Vec::len).sum::<usize>(),
            cut,
            "{session_id}: frames reproduce the prefix bytes"
        );
        let mut restored =
            IncrementalSession::restore(StreamOptions::default(), frames.iter().map(Vec::as_slice))
                .expect("restore replays cleanly");
        assert_eq!(
            restored.progress().bytes,
            cut as u64,
            "{session_id}: restored session resumes at the cut"
        );

        for chunk in bytes[cut..].chunks(CHUNK) {
            restored.push(chunk).expect("valid suffix");
        }
        assert!(restored.is_complete(), "{session_id}: trace ends cleanly");
        let outcome = restored.finish().expect("finish succeeds");
        let json = render_json(&outcome.report, &outcome.trace);
        assert_eq!(
            json, expected,
            "{session_id}: report after evict/restore at byte {cut}"
        );
    }
}

/// Every app in the paper catalog survives evict-and-restore at all
/// three cut kinds with a byte-identical report.
#[test]
fn catalog_apps_restore_byte_identically_at_every_cut() {
    let dir = tmp_dir("catalog");
    for app in all_apps() {
        let outcome = app.record(0).expect("workload records cleanly");
        let trace = outcome.trace.expect("instrumentation is on");
        let bytes = to_binary_vec(&trace);
        check_restore_roundtrip(&dir, &app.name, &bytes, &batch_json(&trace));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sampled slots of the generated corpus get the same treatment —
/// the property is not special to the hand-built catalog.
#[test]
fn generated_corpus_samples_restore_byte_identically() {
    let dir = tmp_dir("gen");
    for spec in ["gen:1:0", "gen:2:5", "gen:3:9"] {
        let app = resolve(spec).expect("generated slot resolves");
        let outcome = app.record(0).expect("generated app records");
        let trace = outcome.trace.expect("instrumentation is on");
        let bytes = to_binary_vec(&trace);
        check_restore_roundtrip(&dir, spec, &bytes, &batch_json(&trace));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
