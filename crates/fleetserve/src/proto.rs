//! Wire protocol for multi-tenant ingest connections.
//!
//! A connection to the ingest port speaks one of three dialects,
//! distinguished by its first bytes:
//!
//! * **Raw passthrough** — anything that does not start with the
//!   `CAFS` handshake magic is treated as a bare trace stream (the
//!   PR 2 `cafa serve` behavior): the whole connection is one
//!   anonymous session, and malformed bytes are rejected by the trace
//!   decoder with its own typed error at the exact offset.
//! * **Stream mode** — a `CAFS` handshake naming a session id,
//!   followed by raw trace bytes for that session. The server replies
//!   with the session's durable offset (`CAFO` + u64) so a client can
//!   resume mid-trace after a disconnect or a server restart.
//! * **Framed mode** — a `CAFS` handshake with mode 1, followed by
//!   length-prefixed frames each naming a session id. One connection
//!   (e.g. a fleet proxy) can interleave many devices' traces, query
//!   durable offsets, and request server metrics.
//!
//! Parsing is a pure, resumable state machine ([`ProtoReader`]):
//! chunk-boundary independent, allocation-bounded (a hostile length
//! prefix is rejected *before* any buffer is sized from it), and
//! every rejection is a typed [`ProtoError`] carrying the exact byte
//! offset of the offending input.
//!
//! All integers are big-endian. Frame layout (framed mode):
//!
//! ```text
//! DATA        0x00  u16 id_len, id, u32 len, payload   client → server
//! REPORT      0x01  u16 id_len, id, u32 len, payload   server → client
//! STATS       0x02  (empty)                            client → server
//! STATS_REPLY 0x03  u32 len, payload                   server → client
//! OFFSET      0x04  u16 id_len, id                     client → server
//! OFFSET_REPLY0x05  u16 id_len, id, u64 offset         server → client
//! ```

use std::fmt;

/// Handshake magic: the first four bytes of a session-mode connection.
pub const SESSION_MAGIC: [u8; 4] = *b"CAFS";
/// Magic prefixing the server's durable-offset handshake reply.
pub const OFFSET_MAGIC: [u8; 4] = *b"CAFO";
/// Protocol version carried in the handshake.
pub const PROTO_VERSION: u8 = 1;
/// Longest accepted session id, in bytes.
pub const MAX_SESSION_ID: usize = 64;
/// Largest accepted DATA frame payload. A length prefix above this is
/// rejected at its own offset, before any allocation is sized from it.
pub const MAX_FRAME_LEN: u64 = 1 << 20;

/// Frame type tags (framed mode).
pub mod frame {
    /// Trace bytes for a session.
    pub const DATA: u8 = 0;
    /// Final per-session report (server → client).
    pub const REPORT: u8 = 1;
    /// Metrics request.
    pub const STATS: u8 = 2;
    /// Metrics reply (server → client).
    pub const STATS_REPLY: u8 = 3;
    /// Durable-offset query for a session.
    pub const OFFSET: u8 = 4;
    /// Durable-offset reply (server → client).
    pub const OFFSET_REPLY: u8 = 5;
    /// Per-session error (server → client): `u16 id_len, id, u32
    /// len, message`. Scoped to one session — a proxy multiplexing
    /// many devices drops only the failed one.
    pub const ERROR: u8 = 6;
}

/// How the connection carries trace bytes after the handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The rest of the connection is raw trace bytes for the
    /// handshake's session.
    Stream,
    /// The rest of the connection is a sequence of frames, each
    /// naming its session (multiplexing mode for proxies).
    Framed,
}

/// A parsed protocol item, in connection order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoItem {
    /// A completed `CAFS` handshake.
    Hello {
        /// Connection dialect after the handshake.
        mode: Mode,
        /// Session id (stream mode) or connection name (framed mode).
        session: String,
    },
    /// The connection is raw passthrough (no handshake): these bytes
    /// belong to one anonymous session. Emitted for every chunk.
    Raw(Vec<u8>),
    /// Trace bytes for a session (stream-mode payload or DATA frame).
    Data {
        /// The session the bytes belong to.
        session: String,
        /// The bytes (possibly empty — an empty DATA frame is a
        /// valid "poke" that forces restore/report delivery).
        bytes: Vec<u8>,
    },
    /// A metrics request (STATS frame).
    StatsRequest,
    /// A durable-offset query (OFFSET frame).
    OffsetRequest {
        /// The session whose durable offset is asked for.
        session: String,
    },
}

/// A typed protocol rejection, positioned at the exact byte offset
/// (from the start of the connection) of the offending input.
#[derive(Debug)]
pub enum ProtoError {
    /// The handshake version byte is not [`PROTO_VERSION`].
    BadVersion {
        /// Offset of the version byte.
        at: u64,
        /// The byte found.
        found: u8,
    },
    /// The handshake mode byte is not a known [`Mode`].
    BadMode {
        /// Offset of the mode byte.
        at: u64,
        /// The byte found.
        found: u8,
    },
    /// A session id length of 0 or above [`MAX_SESSION_ID`].
    BadSessionIdLength {
        /// Offset of the length prefix.
        at: u64,
        /// The declared length.
        len: usize,
    },
    /// A session id byte outside `[A-Za-z0-9._:-]`.
    BadSessionIdByte {
        /// Offset of the offending byte.
        at: u64,
        /// The byte found.
        byte: u8,
    },
    /// An unknown frame type tag.
    BadFrameType {
        /// Offset of the tag byte.
        at: u64,
        /// The byte found.
        found: u8,
    },
    /// A DATA length prefix above [`MAX_FRAME_LEN`] — rejected before
    /// any allocation is sized from it.
    FrameTooLong {
        /// Offset of the length prefix.
        at: u64,
        /// The declared length.
        len: u64,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadVersion { at, found } => {
                write!(
                    f,
                    "byte {at}: unsupported protocol version {found} (expected {PROTO_VERSION})"
                )
            }
            Self::BadMode { at, found } => {
                write!(
                    f,
                    "byte {at}: bad handshake mode {found} (0=stream 1=framed)"
                )
            }
            Self::BadSessionIdLength { at, len } => {
                write!(
                    f,
                    "byte {at}: session id length {len} out of range 1..={MAX_SESSION_ID}"
                )
            }
            Self::BadSessionIdByte { at, byte } => {
                write!(
                    f,
                    "byte {at}: session id byte 0x{byte:02x} outside [A-Za-z0-9._:-]"
                )
            }
            Self::BadFrameType { at, found } => {
                write!(f, "byte {at}: unknown frame type {found}")
            }
            Self::FrameTooLong { at, len } => {
                write!(
                    f,
                    "byte {at}: frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// True for the characters a session id may contain.
pub fn valid_id_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-')
}

/// Validates a session id string (length and charset).
pub fn validate_session_id(id: &str) -> bool {
    (1..=MAX_SESSION_ID).contains(&id.len()) && id.bytes().all(valid_id_byte)
}

#[derive(Clone, Debug)]
enum State {
    /// Deciding between handshake and raw passthrough.
    Sniff,
    /// `CAFS` seen; version, mode, id pending.
    Handshake,
    /// Handshake complete, stream mode: all further bytes are payload.
    Streaming { session: String },
    /// Handshake complete, framed mode: at a frame boundary or inside
    /// a frame header.
    Frame,
    /// Frame header parsed; `remaining` payload bytes pending.
    FramePayload { session: String, remaining: usize },
    /// Raw passthrough: no handshake on this connection.
    Raw,
    /// A protocol error was reported; all further input is rejected.
    Poisoned,
}

/// Resumable parser for one ingest connection.
///
/// Feed arbitrary chunks with [`feed`](ProtoReader::feed); parsing is
/// chunk-boundary independent. At most one incomplete item is ever
/// buffered, and a DATA payload is bounded by [`MAX_FRAME_LEN`], so a
/// hostile peer cannot grow the buffer without bound. After an error
/// the reader is poisoned and keeps rejecting input.
#[derive(Debug)]
pub struct ProtoReader {
    state: State,
    buf: Vec<u8>,
    /// Offset (from connection start) of `buf[0]`.
    consumed: u64,
}

impl Default for ProtoReader {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtoReader {
    /// A reader ready for the connection's first bytes.
    pub fn new() -> Self {
        Self {
            state: State::Sniff,
            buf: Vec::new(),
            consumed: 0,
        }
    }

    /// The dialect in effect, once known.
    pub fn mode(&self) -> Option<Mode> {
        match self.state {
            State::Streaming { .. } => Some(Mode::Stream),
            State::Frame | State::FramePayload { .. } => Some(Mode::Framed),
            _ => None,
        }
    }

    /// Bytes buffered waiting for the current item to complete.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Consumes one chunk, appending completed items to `items`.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] at the exact offset of the offending
    /// byte, as soon as it arrives.
    pub fn feed(&mut self, bytes: &[u8], items: &mut Vec<ProtoItem>) -> Result<(), ProtoError> {
        // Fast paths that need no buffering: whole-chunk payload.
        if self.buf.is_empty() {
            match &self.state {
                State::Raw => {
                    if !bytes.is_empty() {
                        self.consumed += bytes.len() as u64;
                        items.push(ProtoItem::Raw(bytes.to_vec()));
                    }
                    return Ok(());
                }
                State::Streaming { session } => {
                    if !bytes.is_empty() {
                        self.consumed += bytes.len() as u64;
                        items.push(ProtoItem::Data {
                            session: session.clone(),
                            bytes: bytes.to_vec(),
                        });
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
        self.buf.extend_from_slice(bytes);
        loop {
            let made_progress = self.step(items)?;
            if !made_progress {
                return Ok(());
            }
        }
    }

    /// Signals end of connection: flushes any undecided sniff bytes
    /// as raw passthrough. A handshake or frame truncated mid-item is
    /// not an error at this layer — the enclosing session simply never
    /// completed (exactly like a trace stream that stops mid-record).
    pub fn eof(&mut self, items: &mut Vec<ProtoItem>) {
        if let State::Sniff = self.state {
            if !self.buf.is_empty() {
                let bytes = std::mem::take(&mut self.buf);
                self.consumed += bytes.len() as u64;
                self.state = State::Raw;
                items.push(ProtoItem::Raw(bytes));
            }
        }
    }

    /// Attempts to complete one item from the buffer. Returns whether
    /// progress was made (more steps may follow).
    fn step(&mut self, items: &mut Vec<ProtoItem>) -> Result<bool, ProtoError> {
        match std::mem::replace(&mut self.state, State::Poisoned) {
            State::Sniff => {
                if self.buf.first().is_some_and(|&b| b != SESSION_MAGIC[0]) {
                    self.state = State::Raw;
                    return Ok(true);
                }
                if self.buf.len() < 4 {
                    self.state = State::Sniff;
                    return Ok(false);
                }
                if self.buf[..4] == SESSION_MAGIC {
                    self.drain(4);
                    self.state = State::Handshake;
                } else {
                    self.state = State::Raw;
                }
                Ok(true)
            }
            State::Handshake => {
                // version u8, mode u8, id_len u16, id bytes.
                if self.buf.len() < 4 {
                    self.state = State::Handshake;
                    return Ok(false);
                }
                let version = self.buf[0];
                if version != PROTO_VERSION {
                    return Err(ProtoError::BadVersion {
                        at: self.consumed,
                        found: version,
                    });
                }
                let mode = match self.buf[1] {
                    0 => Mode::Stream,
                    1 => Mode::Framed,
                    found => {
                        return Err(ProtoError::BadMode {
                            at: self.consumed + 1,
                            found,
                        })
                    }
                };
                let id_len = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
                if id_len == 0 || id_len > MAX_SESSION_ID {
                    return Err(ProtoError::BadSessionIdLength {
                        at: self.consumed + 2,
                        len: id_len,
                    });
                }
                if self.buf.len() < 4 + id_len {
                    self.state = State::Handshake;
                    return Ok(false);
                }
                let session = self.take_id(4, id_len)?;
                self.drain(4 + id_len);
                items.push(ProtoItem::Hello {
                    mode,
                    session: session.clone(),
                });
                self.state = match mode {
                    Mode::Stream => State::Streaming { session },
                    Mode::Framed => State::Frame,
                };
                Ok(true)
            }
            State::Streaming { session } => {
                if self.buf.is_empty() {
                    self.state = State::Streaming { session };
                    return Ok(false);
                }
                let bytes = std::mem::take(&mut self.buf);
                self.consumed += bytes.len() as u64;
                items.push(ProtoItem::Data {
                    session: session.clone(),
                    bytes,
                });
                self.state = State::Streaming { session };
                Ok(false)
            }
            State::Raw => {
                if self.buf.is_empty() {
                    self.state = State::Raw;
                    return Ok(false);
                }
                let bytes = std::mem::take(&mut self.buf);
                self.consumed += bytes.len() as u64;
                items.push(ProtoItem::Raw(bytes));
                self.state = State::Raw;
                Ok(false)
            }
            State::Frame => {
                let Some(&tag) = self.buf.first() else {
                    self.state = State::Frame;
                    return Ok(false);
                };
                match tag {
                    frame::DATA => {
                        // tag u8, id_len u16, id, len u32.
                        if self.buf.len() < 3 {
                            self.state = State::Frame;
                            return Ok(false);
                        }
                        let id_len = u16::from_be_bytes([self.buf[1], self.buf[2]]) as usize;
                        if id_len == 0 || id_len > MAX_SESSION_ID {
                            return Err(ProtoError::BadSessionIdLength {
                                at: self.consumed + 1,
                                len: id_len,
                            });
                        }
                        if self.buf.len() < 3 + id_len + 4 {
                            self.state = State::Frame;
                            return Ok(false);
                        }
                        let session = self.take_id(3, id_len)?;
                        let l = &self.buf[3 + id_len..3 + id_len + 4];
                        let len = u64::from(u32::from_be_bytes([l[0], l[1], l[2], l[3]]));
                        if len > MAX_FRAME_LEN {
                            return Err(ProtoError::FrameTooLong {
                                at: self.consumed + 3 + id_len as u64,
                                len,
                            });
                        }
                        self.drain(3 + id_len + 4);
                        if len == 0 {
                            items.push(ProtoItem::Data {
                                session,
                                bytes: Vec::new(),
                            });
                            self.state = State::Frame;
                        } else {
                            self.state = State::FramePayload {
                                session,
                                remaining: len as usize,
                            };
                        }
                        Ok(true)
                    }
                    frame::STATS => {
                        self.drain(1);
                        items.push(ProtoItem::StatsRequest);
                        self.state = State::Frame;
                        Ok(true)
                    }
                    frame::OFFSET => {
                        if self.buf.len() < 3 {
                            self.state = State::Frame;
                            return Ok(false);
                        }
                        let id_len = u16::from_be_bytes([self.buf[1], self.buf[2]]) as usize;
                        if id_len == 0 || id_len > MAX_SESSION_ID {
                            return Err(ProtoError::BadSessionIdLength {
                                at: self.consumed + 1,
                                len: id_len,
                            });
                        }
                        if self.buf.len() < 3 + id_len {
                            self.state = State::Frame;
                            return Ok(false);
                        }
                        let session = self.take_id(3, id_len)?;
                        self.drain(3 + id_len);
                        items.push(ProtoItem::OffsetRequest { session });
                        self.state = State::Frame;
                        Ok(true)
                    }
                    found => Err(ProtoError::BadFrameType {
                        at: self.consumed,
                        found,
                    }),
                }
            }
            State::FramePayload { session, remaining } => {
                if self.buf.is_empty() {
                    self.state = State::FramePayload { session, remaining };
                    return Ok(false);
                }
                let take = remaining.min(self.buf.len());
                let bytes: Vec<u8> = self.buf[..take].to_vec();
                self.drain(take);
                items.push(ProtoItem::Data {
                    session: session.clone(),
                    bytes,
                });
                if take == remaining {
                    self.state = State::Frame;
                    Ok(true)
                } else {
                    self.state = State::FramePayload {
                        session,
                        remaining: remaining - take,
                    };
                    Ok(false)
                }
            }
            State::Poisoned => panic!("ProtoReader used after a protocol error"),
        }
    }

    /// Validates and extracts a session id at `buf[start..start+len]`.
    fn take_id(&self, start: usize, len: usize) -> Result<String, ProtoError> {
        let raw = &self.buf[start..start + len];
        for (i, &b) in raw.iter().enumerate() {
            if !valid_id_byte(b) {
                return Err(ProtoError::BadSessionIdByte {
                    at: self.consumed + (start + i) as u64,
                    byte: b,
                });
            }
        }
        Ok(String::from_utf8(raw.to_vec()).expect("charset is ASCII"))
    }

    fn drain(&mut self, n: usize) {
        self.buf.drain(..n);
        self.consumed += n as u64;
    }
}

// ---- encoding helpers (clients, proxies, and the server's replies) ----

/// Encodes a `CAFS` handshake.
pub fn encode_handshake(mode: Mode, session: &str) -> Vec<u8> {
    assert!(validate_session_id(session), "invalid session id");
    let mut out = Vec::with_capacity(8 + session.len());
    out.extend_from_slice(&SESSION_MAGIC);
    out.push(PROTO_VERSION);
    out.push(match mode {
        Mode::Stream => 0,
        Mode::Framed => 1,
    });
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out
}

/// Encodes the server's durable-offset handshake reply.
pub fn encode_offset_reply(offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&OFFSET_MAGIC);
    out.extend_from_slice(&offset.to_be_bytes());
    out
}

/// Encodes a DATA frame.
pub fn encode_data_frame(session: &str, payload: &[u8]) -> Vec<u8> {
    assert!(validate_session_id(session), "invalid session id");
    assert!(payload.len() as u64 <= MAX_FRAME_LEN, "payload too long");
    let mut out = Vec::with_capacity(7 + session.len() + payload.len());
    out.push(frame::DATA);
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a REPORT / STATS_REPLY-style server frame.
pub fn encode_report_frame(session: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 + session.len() + payload.len());
    out.push(frame::REPORT);
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a per-session ERROR frame (server → client).
pub fn encode_error_frame(session: &str, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 + session.len() + message.len());
    out.push(frame::ERROR);
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out.extend_from_slice(&(message.len() as u32).to_be_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Encodes a STATS request frame.
pub fn encode_stats_frame() -> Vec<u8> {
    vec![frame::STATS]
}

/// Encodes a STATS_REPLY frame.
pub fn encode_stats_reply(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(frame::STATS_REPLY);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes an OFFSET query frame.
pub fn encode_offset_frame(session: &str) -> Vec<u8> {
    assert!(validate_session_id(session), "invalid session id");
    let mut out = Vec::with_capacity(3 + session.len());
    out.push(frame::OFFSET);
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out
}

/// Encodes an OFFSET_REPLY frame.
pub fn encode_offset_reply_frame(session: &str, offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(11 + session.len());
    out.push(frame::OFFSET_REPLY);
    out.extend_from_slice(&(session.len() as u16).to_be_bytes());
    out.extend_from_slice(session.as_bytes());
    out.extend_from_slice(&offset.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(bytes: &[u8], chunk: usize) -> Result<Vec<ProtoItem>, ProtoError> {
        let mut r = ProtoReader::new();
        let mut items = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            r.feed(c, &mut items)?;
        }
        r.eof(&mut items);
        Ok(items)
    }

    /// Collapses consecutive Data items of one session (chunking
    /// splits payloads arbitrarily).
    fn coalesce(items: Vec<ProtoItem>) -> Vec<ProtoItem> {
        let mut out: Vec<ProtoItem> = Vec::new();
        for item in items {
            match (out.last_mut(), item) {
                (
                    Some(ProtoItem::Data { session: s, bytes }),
                    ProtoItem::Data {
                        session,
                        bytes: more,
                    },
                ) if *s == session => bytes.extend_from_slice(&more),
                (Some(ProtoItem::Raw(bytes)), ProtoItem::Raw(more)) => {
                    bytes.extend_from_slice(&more)
                }
                (_, item) => out.push(item),
            }
        }
        out
    }

    #[test]
    fn stream_handshake_roundtrips_at_any_chunking() {
        let mut bytes = encode_handshake(Mode::Stream, "device-7");
        bytes.extend_from_slice(b"trace-payload");
        for chunk in [1, 2, 5, 64] {
            let items = coalesce(feed_all(&bytes, chunk).expect("valid"));
            assert_eq!(
                items,
                vec![
                    ProtoItem::Hello {
                        mode: Mode::Stream,
                        session: "device-7".into()
                    },
                    ProtoItem::Data {
                        session: "device-7".into(),
                        bytes: b"trace-payload".to_vec()
                    },
                ],
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn framed_frames_roundtrip_interleaved() {
        let mut bytes = encode_handshake(Mode::Framed, "proxy");
        bytes.extend_from_slice(&encode_data_frame("a", b"xx"));
        bytes.extend_from_slice(&encode_data_frame("b", b"yyy"));
        bytes.extend_from_slice(&encode_data_frame("a", b""));
        bytes.extend_from_slice(&encode_stats_frame());
        bytes.extend_from_slice(&encode_offset_frame("b"));
        for chunk in [1, 3, 7, 1024] {
            let items = coalesce(feed_all(&bytes, chunk).expect("valid"));
            assert_eq!(
                items,
                vec![
                    ProtoItem::Hello {
                        mode: Mode::Framed,
                        session: "proxy".into()
                    },
                    ProtoItem::Data {
                        session: "a".into(),
                        bytes: b"xx".to_vec()
                    },
                    ProtoItem::Data {
                        session: "b".into(),
                        bytes: b"yyy".to_vec()
                    },
                    ProtoItem::Data {
                        session: "a".into(),
                        bytes: Vec::new()
                    },
                    ProtoItem::StatsRequest,
                    ProtoItem::OffsetRequest {
                        session: "b".into()
                    },
                ],
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn non_handshake_bytes_pass_through_raw() {
        // A binary trace ("CAFT...") and arbitrary text both bypass
        // the handshake path untouched.
        for head in [&b"CAFT\x01rest"[..], b"# text trace", b"zz"] {
            let items = coalesce(feed_all(head, 3).expect("valid"));
            assert_eq!(items, vec![ProtoItem::Raw(head.to_vec())]);
        }
    }

    #[test]
    fn short_non_c_prefix_is_raw_immediately() {
        let mut r = ProtoReader::new();
        let mut items = Vec::new();
        r.feed(b"x", &mut items).expect("valid");
        assert_eq!(items, vec![ProtoItem::Raw(b"x".to_vec())]);
    }

    #[test]
    fn truncated_sniff_flushes_at_eof() {
        let mut r = ProtoReader::new();
        let mut items = Vec::new();
        r.feed(b"CA", &mut items).expect("valid");
        assert!(items.is_empty(), "undecided prefix is buffered");
        r.eof(&mut items);
        assert_eq!(items, vec![ProtoItem::Raw(b"CA".to_vec())]);
    }

    #[test]
    fn bad_version_is_rejected_at_offset_4() {
        let mut bytes = SESSION_MAGIC.to_vec();
        bytes.extend_from_slice(&[9, 0, 0, 1, b'a']);
        let err = feed_all(&bytes, 1).expect_err("rejects");
        assert!(
            matches!(err, ProtoError::BadVersion { at: 4, found: 9 }),
            "{err}"
        );
    }

    #[test]
    fn zero_and_oversized_id_lengths_are_rejected() {
        for len in [0u16, (MAX_SESSION_ID + 1) as u16, u16::MAX] {
            let mut bytes = SESSION_MAGIC.to_vec();
            bytes.push(PROTO_VERSION);
            bytes.push(0);
            bytes.extend_from_slice(&len.to_be_bytes());
            let err = feed_all(&bytes, 3).expect_err("rejects");
            assert!(
                matches!(err, ProtoError::BadSessionIdLength { at: 6, .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn hostile_frame_length_is_rejected_before_allocation() {
        let mut bytes = encode_handshake(Mode::Framed, "p");
        let at = bytes.len() as u64 + 1 + 2 + 1; // tag, id_len, id
        bytes.push(frame::DATA);
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.push(b'a');
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = feed_all(&bytes, 2).expect_err("rejects");
        match err {
            ProtoError::FrameTooLong { at: a, len } => {
                assert_eq!(a, at);
                assert_eq!(len, u64::from(u32::MAX));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bad_id_byte_is_rejected_at_its_exact_offset() {
        let mut bytes = SESSION_MAGIC.to_vec();
        bytes.extend_from_slice(&[PROTO_VERSION, 0]);
        bytes.extend_from_slice(&3u16.to_be_bytes());
        bytes.extend_from_slice(b"a b");
        let err = feed_all(&bytes, 1).expect_err("rejects");
        assert!(
            matches!(err, ProtoError::BadSessionIdByte { at: 9, byte: b' ' }),
            "{err}"
        );
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        let mut bytes = encode_handshake(Mode::Framed, "p");
        let at = bytes.len() as u64;
        bytes.push(0x7f);
        let err = feed_all(&bytes, 4).expect_err("rejects");
        assert!(
            matches!(err, ProtoError::BadFrameType { at: a, found: 0x7f } if a == at),
            "{err}"
        );
    }

    #[test]
    fn buffered_bytes_stay_bounded_by_one_header() {
        // Feeding a huge DATA payload byte-at-a-time never buffers it:
        // payload chunks are forwarded as they arrive.
        let mut bytes = encode_handshake(Mode::Framed, "p");
        bytes.extend_from_slice(&encode_data_frame("s", &vec![0u8; 4096]));
        let mut r = ProtoReader::new();
        let mut items = Vec::new();
        for &b in &bytes {
            r.feed(&[b], &mut items).expect("valid");
            assert!(r.buffered_bytes() <= 16, "header-sized buffer only");
        }
    }
}
