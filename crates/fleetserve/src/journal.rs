//! Versioned on-disk session snapshots.
//!
//! A session's snapshot is a **journal** of the exact byte chunks fed
//! to its [`IncrementalSession`](cafa_stream::IncrementalSession), in
//! order. Because streaming analysis is chunk-invariant and its state
//! is a pure function of the bytes ingested so far (pinned by the
//! stream crate's tests), replaying the journal through a fresh
//! session rebuilds state *equivalent* to what was dropped — so one
//! format powers both cold-session eviction and crash-safe restart.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic   "CFSJ"                      4 bytes
//! version u16  (currently 1)          2 bytes
//! flags   u16  (0; reserved)          2 bytes
//! frames  (u32 payload_len, payload)  repeated
//! ```
//!
//! Appends go straight to the file (page cache), so a journal survives
//! `kill -9` of the server process; it is not powerloss-durable (no
//! fsync on the hot path — a deliberate trade documented in
//! `docs/SERVE.md`). A frame torn by a crash mid-write is detected on
//! the next open and truncated away: the **durable offset** — the sum
//! of complete-frame payload lengths — is the contract with clients,
//! which re-send their trace from that offset.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"CFSJ";
/// Current journal format version.
pub const JOURNAL_VERSION: u16 = 1;
/// Bytes before the first frame.
pub const JOURNAL_HEADER_LEN: u64 = 8;
/// Upper bound on a single journal frame's payload. Server-side
/// chunks are read-buffer sized (tens of KiB), so a length beyond
/// this is corruption, not data.
pub const MAX_JOURNAL_FRAME: u32 = 1 << 24;
/// File extension for session journals.
pub const JOURNAL_EXT: &str = "cfsj";

/// A snapshot-layer failure, carrying the file it concerns.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem I/O failed.
    Io {
        /// The journal (or directory) involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not begin with [`JOURNAL_MAGIC`].
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file's version is not [`JOURNAL_VERSION`].
    BadVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found.
        found: u16,
    },
    /// A frame length exceeds [`MAX_JOURNAL_FRAME`].
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Offset of the bad length prefix.
        at: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "snapshot {}: {source}", path.display())
            }
            Self::BadMagic { path } => {
                write!(f, "snapshot {}: not a CFSJ journal", path.display())
            }
            Self::BadVersion { path, found } => {
                write!(
                    f,
                    "snapshot {}: journal version {found} (this build reads {JOURNAL_VERSION})",
                    path.display()
                )
            }
            Self::Corrupt { path, at } => {
                write!(
                    f,
                    "snapshot {}: corrupt frame length at byte {at}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The journal path for `session` under `dir`. Session ids are
/// restricted to `[A-Za-z0-9._:-]`, so the id is filesystem-safe
/// as-is.
pub fn journal_path(dir: &Path, session: &str) -> PathBuf {
    dir.join(format!("{session}.{JOURNAL_EXT}"))
}

/// Session ids with a journal under `dir`, sorted (deterministic).
///
/// # Errors
///
/// [`SnapshotError::Io`] if the directory cannot be read.
pub fn scan_dir(dir: &Path) -> Result<Vec<String>, SnapshotError> {
    let entries = std::fs::read_dir(dir).map_err(|source| SnapshotError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut ids = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| SnapshotError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_suffix(&format!(".{JOURNAL_EXT}")) {
            if crate::proto::validate_session_id(id) {
                ids.push(id.to_owned());
            }
        }
    }
    ids.sort();
    Ok(ids)
}

/// An open, append-position journal for one session.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    durable: u64,
}

impl Journal {
    /// Opens (or creates) the journal for `session` under `dir`,
    /// validating the header, truncating any crash-torn final frame,
    /// and positioning for append.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on I/O failure, foreign magic, or a version
    /// this build does not read.
    pub fn open(dir: &Path, session: &str) -> Result<Self, SnapshotError> {
        let path = journal_path(dir, session);
        let io = |source| SnapshotError::Io {
            path: path.clone(),
            source,
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_be_bytes());
            header.extend_from_slice(&0u16.to_be_bytes());
            file.write_all(&header).map_err(io)?;
            return Ok(Self {
                file,
                path,
                durable: 0,
            });
        }
        let (durable, end) = Self::scan(&mut file, &path, len)?;
        if end < len {
            // Crash-torn tail: drop the partial frame so appends
            // resume at a frame boundary.
            file.set_len(end).map_err(io)?;
        }
        file.seek(SeekFrom::Start(end)).map_err(io)?;
        Ok(Self {
            file,
            path,
            durable,
        })
    }

    /// Validates the header and walks complete frames, returning
    /// `(durable payload bytes, file offset after the last complete
    /// frame)`.
    fn scan(file: &mut File, path: &Path, len: u64) -> Result<(u64, u64), SnapshotError> {
        let io = |source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        };
        if len < JOURNAL_HEADER_LEN {
            return Err(SnapshotError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let mut header = [0u8; JOURNAL_HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0)).map_err(io)?;
        file.read_exact(&mut header).map_err(io)?;
        if header[..4] != JOURNAL_MAGIC {
            return Err(SnapshotError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version = u16::from_be_bytes([header[4], header[5]]);
        if version != JOURNAL_VERSION {
            return Err(SnapshotError::BadVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let mut pos = JOURNAL_HEADER_LEN;
        let mut durable = 0u64;
        let mut prefix = [0u8; 4];
        while pos + 4 <= len {
            file.seek(SeekFrom::Start(pos)).map_err(io)?;
            file.read_exact(&mut prefix).map_err(io)?;
            let flen = u32::from_be_bytes(prefix);
            if flen > MAX_JOURNAL_FRAME {
                return Err(SnapshotError::Corrupt {
                    path: path.to_path_buf(),
                    at: pos,
                });
            }
            if pos + 4 + u64::from(flen) > len {
                break; // torn tail
            }
            durable += u64::from(flen);
            pos += 4 + u64::from(flen);
        }
        Ok((durable, pos))
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Complete-frame payload bytes on disk — the offset clients
    /// resume from.
    pub fn durable_offset(&self) -> u64 {
        self.durable
    }

    /// Appends one chunk as a frame. The write lands in the page
    /// cache before this returns, so it survives abrupt process
    /// death.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the write fails.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), SnapshotError> {
        debug_assert!(payload.len() as u64 <= u64::from(MAX_JOURNAL_FRAME));
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|source| SnapshotError::Io {
                path: self.path.clone(),
                source,
            })?;
        self.durable += payload.len() as u64;
        Ok(())
    }

    /// Forces the journal to stable storage (used at graceful
    /// shutdown, not per-append).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the sync fails.
    pub fn sync(&mut self) -> Result<(), SnapshotError> {
        self.file.sync_data().map_err(|source| SnapshotError::Io {
            path: self.path.clone(),
            source,
        })
    }

    /// Deletes the journal (the session completed; its report has
    /// been delivered).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the unlink fails.
    pub fn delete(self) -> Result<(), SnapshotError> {
        std::fs::remove_file(&self.path).map_err(|source| SnapshotError::Io {
            path: self.path,
            source,
        })
    }
}

/// Reads every complete frame of `session`'s journal under `dir`, in
/// append order — the chunk sequence to replay through
/// [`IncrementalSession::restore`](cafa_stream::IncrementalSession::restore).
/// A crash-torn final frame is ignored, matching
/// [`Journal::open`]'s truncation.
///
/// # Errors
///
/// [`SnapshotError`] on I/O failure or a malformed journal.
pub fn read_frames(dir: &Path, session: &str) -> Result<Vec<Vec<u8>>, SnapshotError> {
    let path = journal_path(dir, session);
    let bytes = std::fs::read(&path).map_err(|source| SnapshotError::Io {
        path: path.clone(),
        source,
    })?;
    if bytes.len() < JOURNAL_HEADER_LEN as usize || bytes[..4] != JOURNAL_MAGIC {
        return Err(SnapshotError::BadMagic { path });
    }
    let version = u16::from_be_bytes([bytes[4], bytes[5]]);
    if version != JOURNAL_VERSION {
        return Err(SnapshotError::BadVersion {
            path,
            found: version,
        });
    }
    let mut frames = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN as usize;
    while pos + 4 <= bytes.len() {
        let flen = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if flen > MAX_JOURNAL_FRAME {
            return Err(SnapshotError::Corrupt {
                path,
                at: pos as u64,
            });
        }
        let flen = flen as usize;
        if pos + 4 + flen > bytes.len() {
            break; // torn tail
        }
        frames.push(bytes[pos + 4..pos + 4 + flen].to_vec());
        pos += 4 + flen;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cafa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_then_read_roundtrips_chunk_boundaries() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::open(&dir, "s1").expect("open");
        j.append(b"alpha").expect("append");
        j.append(b"").expect("append empty");
        j.append(b"beta-gamma").expect("append");
        assert_eq!(j.durable_offset(), 15);
        drop(j);
        let frames = read_frames(&dir, "s1").expect("read");
        assert_eq!(
            frames,
            vec![b"alpha".to_vec(), Vec::new(), b"beta-gamma".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_at_durable_offset() {
        let dir = tmp_dir("reopen");
        {
            let mut j = Journal::open(&dir, "s").expect("open");
            j.append(b"one").expect("append");
        }
        {
            let mut j = Journal::open(&dir, "s").expect("reopen");
            assert_eq!(j.durable_offset(), 3);
            j.append(b"two!").expect("append");
            assert_eq!(j.durable_offset(), 7);
        }
        assert_eq!(
            read_frames(&dir, "s").expect("read"),
            vec![b"one".to_vec(), b"two!".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut j = Journal::open(&dir, "s").expect("open");
            j.append(b"whole").expect("append");
        }
        // Simulate a crash mid-append: length prefix promises more
        // bytes than the file holds.
        let path = journal_path(&dir, "s");
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(&100u32.to_be_bytes()).expect("write");
        f.write_all(b"part").expect("write");
        drop(f);

        assert_eq!(
            read_frames(&dir, "s").expect("read"),
            vec![b"whole".to_vec()],
            "torn frame is invisible to readers"
        );
        let j = Journal::open(&dir, "s").expect("reopen");
        assert_eq!(j.durable_offset(), 5);
        let len = std::fs::metadata(&path).expect("meta").len();
        assert_eq!(len, JOURNAL_HEADER_LEN + 4 + 5, "tail truncated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_future_files_are_rejected_typed() {
        let dir = tmp_dir("reject");
        std::fs::write(journal_path(&dir, "alien"), b"NOPE....").expect("write");
        let err = Journal::open(&dir, "alien").expect_err("rejects");
        assert!(matches!(err, SnapshotError::BadMagic { .. }), "{err}");

        let mut future = JOURNAL_MAGIC.to_vec();
        future.extend_from_slice(&2u16.to_be_bytes());
        future.extend_from_slice(&0u16.to_be_bytes());
        std::fs::write(journal_path(&dir, "v2"), &future).expect("write");
        let err = Journal::open(&dir, "v2").expect_err("rejects");
        assert!(
            matches!(err, SnapshotError::BadVersion { found: 2, .. }),
            "{err}"
        );
        let err = read_frames(&dir, "v2").expect_err("rejects");
        assert!(
            matches!(err, SnapshotError::BadVersion { found: 2, .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_dir_lists_sessions_sorted() {
        let dir = tmp_dir("scan");
        for id in ["zeta", "alpha", "mid.dle"] {
            Journal::open(&dir, id).expect("open");
        }
        std::fs::write(dir.join("not-a-journal.txt"), b"x").expect("write");
        assert_eq!(
            scan_dir(&dir).expect("scan"),
            vec!["alpha".to_owned(), "mid.dle".to_owned(), "zeta".to_owned()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
