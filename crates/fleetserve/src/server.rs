//! The multi-tenant ingest server.
//!
//! Connections are accepted on one listener and parsed by the wire
//! protocol ([`crate::proto`]); every session id is routed through
//! [`cafa_engine::fleet::shard_of`] to one of N shard workers, so a
//! session's bytes are analyzed by a single worker, in arrival order
//! — per-session output is therefore byte-identical no matter how
//! many workers run or how connections interleave (the fleet
//! discipline applied to long-lived keyed streams).
//!
//! With a state directory, every accepted chunk is journaled
//! ([`crate::journal`]) *before* it is fed to analysis, which buys:
//!
//! * **Eviction** — under a memory budget, cold sessions drop their
//!   in-memory analysis state entirely; the journal *is* the
//!   snapshot, and the next byte restores transparently.
//! * **Crash-safe restart** — after `kill -9`, reopening the same
//!   state directory resumes every mid-trace session: clients learn
//!   the durable offset from the handshake reply and re-send from
//!   there.
//!
//! Shutdown of an in-process server is cooperative: flip the `stop`
//! flag passed to [`Server::run`]. The CLI's `cafa serve` simply
//! relies on journal durability and lets the process die.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use cafa_engine::fleet::shard_of;
use cafa_stream::{IncrementalSession, StreamOptions};

use crate::error::ServeError;
use crate::journal::{read_frames, Journal};
use crate::proto::{
    encode_error_frame, encode_offset_reply, encode_offset_reply_frame, encode_report_frame,
    encode_stats_reply, Mode, ProtoItem, ProtoReader,
};
use crate::registry::{Registry, SessionPhase};

/// Default per-connection read buffer (also the largest chunk a
/// stream-mode connection contributes per journal frame).
pub const DEFAULT_READ_CHUNK: usize = 64 << 10;

/// How a [`Server`] behaves.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Streaming-analysis options applied to every session. Keep
    /// `detector.threads` at 1: sessions already run on shard
    /// workers, and reports are thread-count invariant.
    pub opts: StreamOptions,
    /// Shard worker count; 0 means
    /// [`fleet::default_threads`](cafa_engine::fleet::default_threads).
    pub threads: usize,
    /// Journal directory. Enables eviction and crash-safe restart.
    pub state_dir: Option<PathBuf>,
    /// Global modeled-footprint budget in bytes. Requires
    /// [`state_dir`](ServerConfig::state_dir).
    pub memory_budget: Option<usize>,
    /// Per-connection read buffer size in bytes.
    pub read_chunk: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let mut opts = StreamOptions::default();
        opts.detector.threads = 1;
        Self {
            opts,
            threads: 0,
            state_dir: None,
            memory_budget: None,
            read_chunk: DEFAULT_READ_CHUNK,
        }
    }
}

/// Work routed to a shard worker. Jobs for one session always land on
/// one worker's queue, in connection order.
enum Job {
    /// Stream-mode handshake: reply with the session's durable offset.
    Attach {
        session: String,
        reply: mpsc::Sender<Reply>,
    },
    /// Trace bytes (empty = a poke: restore / completion check only).
    Data {
        session: String,
        bytes: Vec<u8>,
        reply: mpsc::Sender<Reply>,
    },
    /// The feeding connection reached end of stream.
    Eof {
        session: String,
        /// Finish even if the trace has no end marker (anonymous raw
        /// connections keep the batch `serve` semantics: truncation
        /// surfaces as an analysis error).
        finish_incomplete: bool,
        reply: mpsc::Sender<Reply>,
    },
    /// Framed-mode durable-offset query.
    Offset {
        session: String,
        reply: mpsc::Sender<Reply>,
    },
    /// Ordering barrier: acks once every earlier job on this shard
    /// has been handled (framed connections drain replies at close).
    Barrier { reply: mpsc::Sender<Reply> },
}

/// A worker's answer, delivered to the connection that sent the job.
enum Reply {
    /// Durable offset (handshake reply or OFFSET query).
    Offset { session: String, durable: u64 },
    /// The session completed: its final report JSON.
    Report { session: String, json: String },
    /// The session failed (analysis or snapshot error).
    Error { session: String, message: String },
    /// EOF on an incomplete session: state kept for resume.
    Detached { durable: u64 },
    /// Barrier ack.
    Flushed,
}

/// Per-session state owned by one shard worker.
struct Slot {
    /// In-memory analysis state; `None` while evicted (or before the
    /// first byte of a restored session arrives).
    session: Option<IncrementalSession>,
    /// The session's journal, when a state directory is configured.
    journal: Option<Journal>,
    /// Trace bytes represented by `session` (== journaled payload
    /// bytes when a journal exists).
    processed: u64,
    /// Recency tick for LRU eviction.
    last_touch: u64,
    /// Last accounted footprint.
    footprint: usize,
}

/// A bound, ready-to-run ingest server.
pub struct Server {
    listener: TcpListener,
    admin: Option<TcpListener>,
    config: ServerConfig,
    threads: usize,
    registry: Registry,
    anon: AtomicU64,
}

impl Server {
    /// Binds the ingest listener (and optionally an admin listener),
    /// validates the configuration, and prepares the state directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] with the failing address;
    /// [`ServeError::BudgetNeedsStateDir`] if a memory budget is set
    /// without a state directory; [`ServeError::StateDir`] if the
    /// state directory cannot be created or scanned.
    pub fn bind(
        addr: &str,
        admin_addr: Option<&str>,
        mut config: ServerConfig,
    ) -> Result<Self, ServeError> {
        if config.memory_budget.is_some() && config.state_dir.is_none() {
            return Err(ServeError::BudgetNeedsStateDir);
        }
        config.read_chunk = config.read_chunk.max(1);
        if let Some(dir) = &config.state_dir {
            std::fs::create_dir_all(dir).map_err(|source| ServeError::StateDir {
                path: dir.clone(),
                source,
            })?;
            // Anonymous sessions cannot reconnect after a restart, so
            // their journals are unreachable; drop them before the
            // per-process anon counter restarts from zero.
            let entries = std::fs::read_dir(dir).map_err(|source| ServeError::StateDir {
                path: dir.clone(),
                source,
            })?;
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if name.starts_with("anon-") && name.ends_with(".cfsj") {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_owned(),
            source,
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|source| ServeError::Bind {
                addr: addr.to_owned(),
                source,
            })?;
        let admin = match admin_addr {
            Some(a) => {
                let l = TcpListener::bind(a).map_err(|source| ServeError::Bind {
                    addr: a.to_owned(),
                    source,
                })?;
                l.set_nonblocking(true).map_err(|source| ServeError::Bind {
                    addr: a.to_owned(),
                    source,
                })?;
                Some(l)
            }
            None => None,
        };
        let threads = if config.threads == 0 {
            cafa_engine::fleet::default_threads()
        } else {
            config.threads
        };
        let registry = Registry::new(threads, config.memory_budget);
        Ok(Self {
            listener,
            admin,
            config,
            threads,
            registry,
            anon: AtomicU64::new(0),
        })
    }

    /// The ingest listener's bound address (useful after binding
    /// port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|source| ServeError::Io {
            peer: "listener".to_owned(),
            source,
        })
    }

    /// The admin listener's bound address, if one was configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket address cannot be read.
    pub fn admin_addr(&self) -> Result<Option<std::net::SocketAddr>, ServeError> {
        match &self.admin {
            Some(l) => l.local_addr().map(Some).map_err(|source| ServeError::Io {
                peer: "admin listener".to_owned(),
                source,
            }),
            None => Ok(None),
        }
    }

    /// The shared registry (metrics; live while and after `run`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The effective shard worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves until `stop` is set. Accepts any number of connections
    /// concurrently; sessions shard deterministically across the
    /// worker pool. Returns after every connection handler and worker
    /// has drained.
    pub fn run(&self, stop: &AtomicBool) {
        let shards = self.threads;
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(256);
            txs.push(tx);
            rxs.push(rx);
        }

        std::thread::scope(|scope| {
            for (shard, rx) in rxs.into_iter().enumerate() {
                let registry = &self.registry;
                let config = &self.config;
                scope.spawn(move || worker_loop(shard, &rx, registry, config));
            }
            if let Some(admin) = &self.admin {
                let registry = &self.registry;
                scope.spawn(move || admin_loop(admin, registry, stop));
            }

            while !stop.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((conn, peer)) => {
                        let txs = txs.clone();
                        let registry = &self.registry;
                        let config = &self.config;
                        let anon = &self.anon;
                        scope.spawn(move || {
                            let peer = peer.to_string();
                            if let Err(e) =
                                handle_conn(conn, &peer, &txs, registry, config, anon, stop)
                            {
                                eprintln!("serve: {e}");
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        eprintln!(
                            "serve: {}",
                            ServeError::Io {
                                peer: "accept".to_owned(),
                                source: e
                            }
                        );
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            drop(txs); // workers exit once every connection's clone is gone
        });
    }
}

/// The admin surface: every connection receives the current metrics
/// document and is closed — same shape as `cafa stats --format json`.
fn admin_loop(listener: &TcpListener, registry: &Registry, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut conn, _)) => {
                let _ = conn.write_all(registry.render_json().as_bytes());
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One connection, handshake to close. Parses protocol items, routes
/// jobs to shard workers, and writes replies back to the peer.
fn handle_conn(
    mut conn: TcpStream,
    peer: &str,
    txs: &[mpsc::SyncSender<Job>],
    registry: &Registry,
    config: &ServerConfig,
    anon: &AtomicU64,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    conn.set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|source| ServeError::Io {
            peer: peer.to_owned(),
            source,
        })?;
    // Replies interleave with ingest on the same socket; Nagle would
    // stall each small frame behind the peer's delayed ACK.
    let _ = conn.set_nodelay(true);
    let shards = txs.len();
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let mut reader = ProtoReader::new();
    let mut buf = vec![0u8; config.read_chunk];
    let mut items: Vec<ProtoItem> = Vec::new();
    // Sessions this connection holds the attach guard for.
    let mut attached: Vec<String> = Vec::new();
    // Shards this connection has sent jobs to (barrier targets).
    let mut used = vec![false; shards];
    let mut mode: Option<Mode> = None;
    let mut anon_id: Option<String> = None;
    let mut eof = false;

    let result = (|| -> Result<(), ServeError> {
        'conn: loop {
            // Deliver pending worker replies first.
            while let Ok(reply) = reply_rx.try_recv() {
                if write_reply(&mut conn, peer, mode, reply)? {
                    break 'conn; // terminal in stream/raw mode
                }
            }
            if eof {
                break;
            }
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match conn.read(&mut buf) {
                Ok(0) => {
                    reader.eof(&mut items);
                    eof = true;
                }
                Ok(n) => {
                    items.clear();
                    reader
                        .feed(&buf[..n], &mut items)
                        .map_err(|source| ServeError::Proto {
                            peer: peer.to_owned(),
                            source,
                        })?;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(source) => {
                    return Err(ServeError::Io {
                        peer: peer.to_owned(),
                        source,
                    })
                }
            }

            for item in items.drain(..) {
                match item {
                    ProtoItem::Hello { mode: m, session } => {
                        mode = Some(m);
                        if m == Mode::Stream {
                            let shard = shard_of(&session, shards);
                            if let Err(e) = registry.attach(&session, shard) {
                                // Tell the client why before closing —
                                // an ERROR frame instead of the CAFO
                                // handshake reply.
                                let _ =
                                    conn.write_all(&encode_error_frame(&session, &e.to_string()));
                                return Err(e);
                            }
                            attached.push(session.clone());
                            used[shard] = true;
                            send_job(
                                &txs[shard],
                                Job::Attach {
                                    session,
                                    reply: reply_tx.clone(),
                                },
                            );
                            // Await the durable offset and complete
                            // the handshake before reading payload.
                            let durable = loop {
                                match reply_rx.recv_timeout(Duration::from_millis(50)) {
                                    Ok(Reply::Offset { durable, .. }) => break durable,
                                    Ok(other) => {
                                        if write_reply(&mut conn, peer, mode, other)? {
                                            break 'conn;
                                        }
                                    }
                                    Err(mpsc::RecvTimeoutError::Timeout) => {
                                        if stop.load(Ordering::Relaxed) {
                                            break 'conn;
                                        }
                                    }
                                    Err(mpsc::RecvTimeoutError::Disconnected) => break 'conn,
                                }
                            };
                            conn.write_all(&encode_offset_reply(durable))
                                .map_err(|source| ServeError::Io {
                                    peer: peer.to_owned(),
                                    source,
                                })?;
                        }
                    }
                    ProtoItem::Raw(bytes) => {
                        let session = match &anon_id {
                            Some(id) => id.clone(),
                            None => {
                                let id =
                                    format!("anon-{}", anon.fetch_add(1, Ordering::Relaxed) + 1);
                                let shard = shard_of(&id, shards);
                                registry.attach(&id, shard)?;
                                attached.push(id.clone());
                                anon_id = Some(id.clone());
                                id
                            }
                        };
                        let shard = shard_of(&session, shards);
                        used[shard] = true;
                        send_job(
                            &txs[shard],
                            Job::Data {
                                session,
                                bytes,
                                reply: reply_tx.clone(),
                            },
                        );
                    }
                    ProtoItem::Data { session, bytes } => {
                        let shard = shard_of(&session, shards);
                        if !attached.contains(&session) {
                            match registry.attach(&session, shard) {
                                Ok(()) => attached.push(session.clone()),
                                Err(e) => {
                                    // Scoped rejection: this session is
                                    // busy; the connection (and its
                                    // other sessions) continue.
                                    conn.write_all(&encode_error_frame(&session, &e.to_string()))
                                        .map_err(|source| ServeError::Io {
                                            peer: peer.to_owned(),
                                            source,
                                        })?;
                                    continue;
                                }
                            }
                        }
                        used[shard] = true;
                        send_job(
                            &txs[shard],
                            Job::Data {
                                session,
                                bytes,
                                reply: reply_tx.clone(),
                            },
                        );
                    }
                    ProtoItem::StatsRequest => {
                        conn.write_all(&encode_stats_reply(registry.render_json().as_bytes()))
                            .map_err(|source| ServeError::Io {
                                peer: peer.to_owned(),
                                source,
                            })?;
                    }
                    ProtoItem::OffsetRequest { session } => {
                        let shard = shard_of(&session, shards);
                        used[shard] = true;
                        send_job(
                            &txs[shard],
                            Job::Offset {
                                session,
                                reply: reply_tx.clone(),
                            },
                        );
                    }
                }
            }

            if eof {
                match mode {
                    // Stream / raw: end of stream ends the session's
                    // input — finish (raw finishes even when
                    // truncated, matching stdin serve) or detach.
                    Some(Mode::Stream) | None => {
                        let (session, finish_incomplete) = match (&anon_id, attached.first()) {
                            (Some(id), _) => (Some(id.clone()), true),
                            (None, Some(id)) => (Some(id.clone()), false),
                            (None, None) => (None, false),
                        };
                        if let Some(session) = session {
                            let shard = shard_of(&session, shards);
                            send_job(
                                &txs[shard],
                                Job::Eof {
                                    session,
                                    finish_incomplete,
                                    reply: reply_tx.clone(),
                                },
                            );
                            loop {
                                match reply_rx.recv_timeout(Duration::from_millis(50)) {
                                    Ok(reply) => {
                                        if write_reply(&mut conn, peer, mode, reply)? {
                                            break;
                                        }
                                    }
                                    Err(mpsc::RecvTimeoutError::Timeout) => {
                                        if stop.load(Ordering::Relaxed) {
                                            break;
                                        }
                                    }
                                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                                }
                            }
                        }
                        break 'conn;
                    }
                    // Framed: barrier every shard we touched so
                    // pending REPORT / OFFSET_REPLY frames drain, then
                    // detach (sessions keep their state for resume).
                    Some(Mode::Framed) => {
                        let mut pending = 0usize;
                        for (shard, was_used) in used.iter().enumerate() {
                            if *was_used {
                                send_job(
                                    &txs[shard],
                                    Job::Barrier {
                                        reply: reply_tx.clone(),
                                    },
                                );
                                pending += 1;
                            }
                        }
                        while pending > 0 {
                            match reply_rx.recv_timeout(Duration::from_millis(50)) {
                                Ok(Reply::Flushed) => pending -= 1,
                                Ok(reply) => {
                                    let _ = write_reply(&mut conn, peer, mode, reply);
                                }
                                Err(mpsc::RecvTimeoutError::Timeout) => {
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                }
                                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        break 'conn;
                    }
                }
            }
        }
        Ok(())
    })();

    for session in &attached {
        registry.detach(session);
    }
    result
}

/// Sends a job, tolerating a worker pool that is shutting down.
fn send_job(tx: &mpsc::SyncSender<Job>, job: Job) {
    let _ = tx.send(job);
}

/// Writes one worker reply to the peer. Returns `true` when the reply
/// is terminal for a stream/raw connection (report or error
/// delivered; close).
fn write_reply(
    conn: &mut TcpStream,
    peer: &str,
    mode: Option<Mode>,
    reply: Reply,
) -> Result<bool, ServeError> {
    let io = |source| ServeError::Io {
        peer: peer.to_owned(),
        source,
    };
    let framed = mode == Some(Mode::Framed);
    match reply {
        Reply::Report { session, json } => {
            if framed {
                conn.write_all(&encode_report_frame(&session, json.as_bytes()))
                    .map_err(io)?;
                Ok(false)
            } else {
                // Stream/raw reply body is the raw report JSON —
                // byte-identical to `cafa analyze --format json`.
                conn.write_all(json.as_bytes()).map_err(io)?;
                conn.flush().map_err(io)?;
                Ok(true)
            }
        }
        Reply::Error { session, message } => {
            conn.write_all(&encode_error_frame(&session, &message))
                .map_err(io)?;
            Ok(!framed)
        }
        Reply::Detached { durable } => {
            if framed {
                Ok(false)
            } else {
                // Tell the client where to resume: a second CAFO
                // frame instead of a report.
                conn.write_all(&encode_offset_reply(durable)).map_err(io)?;
                Ok(true)
            }
        }
        Reply::Offset { session, durable } => {
            if framed {
                conn.write_all(&encode_offset_reply_frame(&session, durable))
                    .map_err(io)?;
            }
            Ok(false)
        }
        Reply::Flushed => Ok(false),
    }
}

/// One shard worker: owns the analysis state and journals of every
/// session hashed to it, processes jobs in arrival order, and
/// enforces the memory budget at job boundaries.
fn worker_loop(shard: usize, rx: &mpsc::Receiver<Job>, registry: &Registry, config: &ServerConfig) {
    let mut slots: HashMap<String, Slot> = HashMap::new();
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => handle_job(shard, job, &mut slots, registry, config),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        enforce_budget(shard, &mut slots, registry);
    }
}

fn handle_job(
    shard: usize,
    job: Job,
    slots: &mut HashMap<String, Slot>,
    registry: &Registry,
    config: &ServerConfig,
) {
    match job {
        Job::Attach { session, reply } => {
            let durable = match ensure_slot(shard, &session, slots, registry, config) {
                Ok(slot) => slot.processed,
                Err(e) => {
                    let _ = reply.send(Reply::Error {
                        session: session.clone(),
                        message: e.to_string(),
                    });
                    return;
                }
            };
            let _ = reply.send(Reply::Offset { session, durable });
        }
        Job::Data {
            session,
            bytes,
            reply,
        } => {
            if let Err(e) = ingest(shard, &session, &bytes, slots, registry, config, &reply) {
                fail_session(&session, &e, slots, registry, &reply);
            }
        }
        Job::Eof {
            session,
            finish_incomplete,
            reply,
        } => {
            let complete = match restore_if_needed(shard, &session, slots, registry, config) {
                Ok(slot) => slot
                    .session
                    .as_ref()
                    .is_some_and(IncrementalSession::is_complete),
                Err(e) => {
                    fail_session(&session, &e, slots, registry, &reply);
                    return;
                }
            };
            if complete || finish_incomplete {
                finish_session(&session, slots, registry, &reply);
            } else {
                let durable = slots.get(&session).map_or(0, |s| s.processed);
                let _ = reply.send(Reply::Detached { durable });
            }
        }
        Job::Offset { session, reply } => {
            let durable = match ensure_slot(shard, &session, slots, registry, config) {
                Ok(slot) => slot.processed,
                Err(e) => {
                    fail_session(&session, &e, slots, registry, &reply);
                    return;
                }
            };
            let _ = reply.send(Reply::Offset { session, durable });
        }
        Job::Barrier { reply } => {
            let _ = reply.send(Reply::Flushed);
        }
    }
}

/// Journals and analyzes one chunk; emits the final report if the
/// chunk completes the trace.
fn ingest(
    shard: usize,
    session_id: &str,
    bytes: &[u8],
    slots: &mut HashMap<String, Slot>,
    registry: &Registry,
    config: &ServerConfig,
    reply: &mpsc::Sender<Reply>,
) -> Result<(), ServeError> {
    let slot = restore_if_needed(shard, session_id, slots, registry, config)?;
    if !bytes.is_empty() {
        // Journal first: once this returns, the bytes are durable and
        // count toward the offset clients resume from.
        if let Some(journal) = &mut slot.journal {
            journal
                .append(bytes)
                .map_err(|source| ServeError::Snapshot {
                    session: session_id.to_owned(),
                    source,
                })?;
            registry.on_durable(session_id, shard, journal.durable_offset());
        }
        let sess = slot.session.as_mut().expect("restored above");
        // Provisional candidates are a stdin-mode affordance; the
        // server's contract is the final (batch-identical) report.
        let _ = sess.push(bytes).map_err(|source| ServeError::Session {
            session: session_id.to_owned(),
            source,
        })?;
        slot.processed += bytes.len() as u64;
        slot.footprint = sess.footprint_bytes();
        registry.on_push(session_id, shard, bytes.len(), slot.footprint);
    }
    slot.last_touch = registry.tick();
    let complete = slot
        .session
        .as_ref()
        .is_some_and(IncrementalSession::is_complete);
    if complete {
        finish_session(session_id, slots, registry, reply);
    }
    Ok(())
}

/// Looks up (or creates) the session's slot, opening its journal when
/// a state directory is configured. Does *not* replay the journal —
/// restore is deferred to the first byte.
fn ensure_slot<'a>(
    shard: usize,
    session_id: &str,
    slots: &'a mut HashMap<String, Slot>,
    registry: &Registry,
    config: &ServerConfig,
) -> Result<&'a mut Slot, ServeError> {
    if !slots.contains_key(session_id) {
        let journal = match &config.state_dir {
            Some(dir) => {
                Some(
                    Journal::open(dir, session_id).map_err(|source| ServeError::Snapshot {
                        session: session_id.to_owned(),
                        source,
                    })?,
                )
            }
            None => None,
        };
        let processed = journal.as_ref().map_or(0, Journal::durable_offset);
        if let Some(j) = &journal {
            registry.on_durable(session_id, shard, j.durable_offset());
        }
        let session = if processed == 0 {
            Some(IncrementalSession::new(config.opts))
        } else {
            None // cold: restore on first byte
        };
        slots.insert(
            session_id.to_owned(),
            Slot {
                session,
                journal,
                processed,
                last_touch: registry.tick(),
                footprint: 0,
            },
        );
    }
    Ok(slots.get_mut(session_id).expect("just inserted"))
}

/// Ensures the session's analysis state is resident, replaying its
/// journal if it was evicted (or is being resumed after a restart).
fn restore_if_needed<'a>(
    shard: usize,
    session_id: &str,
    slots: &'a mut HashMap<String, Slot>,
    registry: &Registry,
    config: &ServerConfig,
) -> Result<&'a mut Slot, ServeError> {
    let slot = ensure_slot(shard, session_id, slots, registry, config)?;
    if slot.session.is_none() {
        let dir = config
            .state_dir
            .as_deref()
            .expect("cold slots only exist with a state dir");
        let frames = read_frames(dir, session_id).map_err(|source| ServeError::Snapshot {
            session: session_id.to_owned(),
            source,
        })?;
        let sess = IncrementalSession::restore(config.opts, frames.iter().map(Vec::as_slice))
            .map_err(|source| ServeError::Session {
                session: session_id.to_owned(),
                source,
            })?;
        slot.footprint = sess.footprint_bytes();
        slot.processed = frames.iter().map(|f| f.len() as u64).sum();
        registry.on_restore(session_id, shard, slot.footprint);
        slot.session = Some(sess);
    }
    Ok(slot)
}

/// Finalizes a session: renders the report (byte-identical to batch
/// `analyze --format json`), frees its state, and deletes its journal.
fn finish_session(
    session_id: &str,
    slots: &mut HashMap<String, Slot>,
    registry: &Registry,
    reply: &mpsc::Sender<Reply>,
) {
    let Some(slot) = slots.remove(session_id) else {
        let _ = reply.send(Reply::Detached { durable: 0 });
        return;
    };
    let Some(sess) = slot.session else {
        let _ = reply.send(Reply::Detached {
            durable: slot.processed,
        });
        return;
    };
    match sess.finish() {
        Ok(outcome) => {
            let json = cafa_core::json::render_json(&outcome.report, &outcome.trace);
            registry.on_terminal(session_id, SessionPhase::Completed);
            if let Some(journal) = slot.journal {
                let _ = journal.delete();
            }
            let _ = reply.send(Reply::Report {
                session: session_id.to_owned(),
                json,
            });
        }
        Err(source) => {
            let e = ServeError::Session {
                session: session_id.to_owned(),
                source,
            };
            registry.on_terminal(session_id, SessionPhase::Failed);
            let _ = reply.send(Reply::Error {
                session: session_id.to_owned(),
                message: e.to_string(),
            });
        }
    }
}

/// Marks a session failed after an ingest error; its journal (if any)
/// is kept on disk for diagnosis.
fn fail_session(
    session_id: &str,
    error: &ServeError,
    slots: &mut HashMap<String, Slot>,
    registry: &Registry,
    reply: &mpsc::Sender<Reply>,
) {
    eprintln!("serve: {error}");
    slots.remove(session_id);
    registry.on_terminal(session_id, SessionPhase::Failed);
    let _ = reply.send(Reply::Error {
        session: session_id.to_owned(),
        message: error.to_string(),
    });
}

/// LRU eviction under the worker's budget share: while this shard's
/// resident modeled footprint exceeds `budget / shards`, snapshot the
/// coldest resident session to its journal (already durable —
/// eviction just drops memory). Runs at every job boundary and on
/// idle ticks; the post-enforcement resident figure feeds the
/// registry's settled gauge, which is therefore bounded by the
/// budget whenever one is configured.
fn enforce_budget(shard: usize, slots: &mut HashMap<String, Slot>, registry: &Registry) {
    let mut resident: usize = slots
        .values()
        .map(|s| if s.session.is_some() { s.footprint } else { 0 })
        .sum();
    if let Some(share) = registry.shard_share() {
        while resident > share {
            let victim = slots
                .iter()
                .filter(|(_, s)| s.session.is_some() && s.journal.is_some())
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(id, _)| id.clone());
            let Some(id) = victim else { break };
            let slot = slots.get_mut(&id).expect("victim exists");
            slot.session = None;
            resident -= slot.footprint;
            slot.footprint = 0;
            registry.on_evict(&id);
        }
    }
    registry.settle_shard(shard, resident);
}
