//! Shared session registry: attach guard, memory accounting, and the
//! admin metrics surface.
//!
//! One [`Registry`] is shared by every connection handler and shard
//! worker. It owns three concerns:
//!
//! * **Attach guard** — at most one connection may feed a session at
//!   a time ([`Registry::attach`] / [`Registry::detach`]); a second
//!   attach is refused with [`ServeError::SessionBusy`], so a
//!   session's journal and analysis see one totally-ordered byte
//!   stream.
//! * **Memory accounting** — the modeled resident footprint of every
//!   live session (as reported by
//!   [`IncrementalSession::footprint_bytes`](cafa_stream::IncrementalSession::footprint_bytes)),
//!   summed globally, with both a raw peak and a *settled* peak
//!   (sampled at job boundaries, after budget enforcement — the
//!   number the eviction policy bounds).
//! * **Metrics** — per-session counters and aggregate totals,
//!   rendered as the same flat snake_case JSON shape `cafa stats
//!   --format json` uses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::ServeError;

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPhase {
    /// Analysis state resident in memory.
    Live,
    /// Cold: state evicted to its snapshot journal; restored
    /// transparently on the next byte.
    Evicted,
    /// Trace complete; report delivered; journal deleted.
    Completed,
    /// The session's bytes failed analysis (or its journal failed).
    Failed,
}

impl SessionPhase {
    fn as_str(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Evicted => "evicted",
            Self::Completed => "completed",
            Self::Failed => "failed",
        }
    }
}

/// Per-session counters, as exposed on the admin surface.
#[derive(Clone, Debug)]
pub struct SessionMetrics {
    /// The shard (worker) the session is pinned to.
    pub shard: usize,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Trace bytes ingested (analysis-side).
    pub bytes: u64,
    /// Chunks ingested.
    pub chunks: u64,
    /// Journaled payload bytes on disk.
    pub durable_bytes: u64,
    /// Current modeled resident footprint.
    pub footprint_bytes: usize,
    /// Times this session's cold state was rebuilt from its journal.
    pub restores: u64,
    /// Times this session was evicted.
    pub evictions: u64,
    /// Whether a connection is currently feeding it.
    pub attached: bool,
}

impl SessionMetrics {
    fn new(shard: usize) -> Self {
        Self {
            shard,
            phase: SessionPhase::Live,
            bytes: 0,
            chunks: 0,
            durable_bytes: 0,
            footprint_bytes: 0,
            restores: 0,
            evictions: 0,
            attached: false,
        }
    }
}

/// Aggregate totals, for the bench harness and the admin surface.
#[derive(Clone, Copy, Debug, Default)]
pub struct Totals {
    /// Sessions ever seen.
    pub sessions: usize,
    /// Sessions currently live in memory.
    pub live: usize,
    /// Sessions currently evicted to disk.
    pub evicted: usize,
    /// Sessions completed.
    pub completed: usize,
    /// Sessions failed.
    pub failed: usize,
    /// Trace bytes ingested across all sessions.
    pub bytes: u64,
    /// Eviction events across all sessions.
    pub evictions: u64,
    /// Restore events across all sessions.
    pub restores: u64,
    /// Current summed resident footprint.
    pub footprint_bytes: usize,
    /// Raw high-water mark of the summed footprint.
    pub peak_bytes: usize,
    /// High-water mark sampled at job boundaries after budget
    /// enforcement — what the eviction policy bounds.
    pub settled_peak_bytes: usize,
}

/// The shared registry. Cheap to reference from scoped threads.
#[derive(Debug)]
pub struct Registry {
    sessions: Mutex<HashMap<String, SessionMetrics>>,
    /// Summed modeled footprint of live sessions.
    total: AtomicUsize,
    /// Raw footprint high-water mark (includes the transient between
    /// a push and the eviction it triggers).
    peak: AtomicUsize,
    /// Footprint high-water mark at settled points.
    settled_peak: AtomicUsize,
    /// Each shard's resident footprint as of its last
    /// post-enforcement settle.
    shard_resident: Vec<AtomicUsize>,
    /// Monotonic recency clock for eviction (LRU) ordering.
    clock: AtomicU64,
    /// Configured memory budget, if any.
    budget: Option<usize>,
    /// Shard worker count (reported on the admin surface).
    threads: usize,
}

impl Registry {
    /// A registry for a server with `threads` shard workers and an
    /// optional memory budget.
    pub fn new(threads: usize, budget: Option<usize>) -> Self {
        Self {
            sessions: Mutex::new(HashMap::new()),
            total: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            settled_peak: AtomicUsize::new(0),
            shard_resident: (0..threads.max(1)).map(|_| AtomicUsize::new(0)).collect(),
            clock: AtomicU64::new(0),
            budget,
            threads,
        }
    }

    /// The configured memory budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Next recency tick (strictly increasing across all workers).
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Claims `session` for one connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionBusy`] if another connection holds it.
    pub fn attach(&self, session: &str, shard: usize) -> Result<(), ServeError> {
        let mut map = self.sessions.lock().expect("registry poisoned");
        let m = map
            .entry(session.to_owned())
            .or_insert_with(|| SessionMetrics::new(shard));
        if m.attached {
            return Err(ServeError::SessionBusy {
                session: session.to_owned(),
            });
        }
        m.attached = true;
        Ok(())
    }

    /// Releases `session` at connection close.
    pub fn detach(&self, session: &str) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        if let Some(m) = map.get_mut(session) {
            m.attached = false;
        }
    }

    /// Records a processed chunk and the session's new footprint.
    pub fn on_push(&self, session: &str, shard: usize, bytes: usize, footprint: usize) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        let m = map
            .entry(session.to_owned())
            .or_insert_with(|| SessionMetrics::new(shard));
        m.bytes += bytes as u64;
        m.chunks += 1;
        let old = m.footprint_bytes;
        m.footprint_bytes = footprint;
        m.phase = SessionPhase::Live;
        drop(map);
        self.adjust_total(old, footprint);
    }

    /// Records journaled payload bytes for `session`.
    pub fn on_durable(&self, session: &str, shard: usize, durable: u64) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        map.entry(session.to_owned())
            .or_insert_with(|| SessionMetrics::new(shard))
            .durable_bytes = durable;
    }

    /// Records an eviction: the session's resident footprint drops to
    /// zero and its phase flips to [`SessionPhase::Evicted`].
    pub fn on_evict(&self, session: &str) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        if let Some(m) = map.get_mut(session) {
            let old = m.footprint_bytes;
            m.footprint_bytes = 0;
            m.evictions += 1;
            m.phase = SessionPhase::Evicted;
            drop(map);
            self.adjust_total(old, 0);
        }
    }

    /// Records a restore from journal: footprint returns, phase flips
    /// back to [`SessionPhase::Live`].
    pub fn on_restore(&self, session: &str, shard: usize, footprint: usize) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        let m = map
            .entry(session.to_owned())
            .or_insert_with(|| SessionMetrics::new(shard));
        let old = m.footprint_bytes;
        m.footprint_bytes = footprint;
        m.restores += 1;
        m.phase = SessionPhase::Live;
        drop(map);
        self.adjust_total(old, footprint);
    }

    /// Records a terminal phase ([`Completed`](SessionPhase::Completed)
    /// or [`Failed`](SessionPhase::Failed)); frees its footprint.
    pub fn on_terminal(&self, session: &str, phase: SessionPhase) {
        let mut map = self.sessions.lock().expect("registry poisoned");
        if let Some(m) = map.get_mut(session) {
            let old = m.footprint_bytes;
            m.footprint_bytes = 0;
            m.phase = phase;
            drop(map);
            self.adjust_total(old, 0);
        }
    }

    /// Current summed resident footprint.
    pub fn footprint_total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// A worker's per-session budget share: the global budget divided
    /// evenly across shards (each worker bounds its own residents to
    /// this, so the settled sum is bounded by the whole budget).
    pub fn shard_share(&self) -> Option<usize> {
        self.budget
            .map(|b| (b / self.shard_resident.len().max(1)).max(1))
    }

    /// Called by a worker at a job boundary *after* enforcing its
    /// budget share: records the shard's post-enforcement resident
    /// footprint and samples the settled high-water mark from the sum
    /// of all shards' settled figures. Transients inside a push never
    /// enter this gauge, so with a budget configured the settled peak
    /// is bounded by it.
    pub fn settle_shard(&self, shard: usize, resident: usize) {
        if let Some(slot) = self.shard_resident.get(shard) {
            slot.store(resident, Ordering::Relaxed);
        }
        let settled: usize = self
            .shard_resident
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .sum();
        self.settled_peak.fetch_max(settled, Ordering::Relaxed);
    }

    fn adjust_total(&self, old: usize, new: usize) {
        let total = if new >= old {
            self.total.fetch_add(new - old, Ordering::Relaxed) + (new - old)
        } else {
            self.total.fetch_sub(old - new, Ordering::Relaxed) - (old - new)
        };
        self.peak.fetch_max(total, Ordering::Relaxed);
    }

    /// Aggregate counters.
    pub fn totals(&self) -> Totals {
        let map = self.sessions.lock().expect("registry poisoned");
        let mut t = Totals {
            sessions: map.len(),
            footprint_bytes: self.total.load(Ordering::Relaxed),
            peak_bytes: self.peak.load(Ordering::Relaxed),
            settled_peak_bytes: self.settled_peak.load(Ordering::Relaxed),
            ..Totals::default()
        };
        for m in map.values() {
            t.bytes += m.bytes;
            t.evictions += m.evictions;
            t.restores += m.restores;
            match m.phase {
                SessionPhase::Live => t.live += 1,
                SessionPhase::Evicted => t.evicted += 1,
                SessionPhase::Completed => t.completed += 1,
                SessionPhase::Failed => t.failed += 1,
            }
        }
        t
    }

    /// One session's counters, if known.
    pub fn session(&self, session: &str) -> Option<SessionMetrics> {
        self.sessions
            .lock()
            .expect("registry poisoned")
            .get(session)
            .cloned()
    }

    /// The admin metrics document: aggregate totals plus a
    /// `per_session` array sorted by session id (deterministic), in
    /// the flat snake_case shape of `cafa stats --format json`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let t = self.totals();
        let map = self.sessions.lock().expect("registry poisoned");
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();

        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            out,
            "  \"memory_budget_bytes\": {},",
            self.budget.unwrap_or(0)
        );
        let _ = writeln!(out, "  \"sessions\": {},", t.sessions);
        let _ = writeln!(out, "  \"live\": {},", t.live);
        let _ = writeln!(out, "  \"evicted\": {},", t.evicted);
        let _ = writeln!(out, "  \"completed\": {},", t.completed);
        let _ = writeln!(out, "  \"failed\": {},", t.failed);
        let _ = writeln!(out, "  \"bytes_total\": {},", t.bytes);
        let _ = writeln!(out, "  \"evictions\": {},", t.evictions);
        let _ = writeln!(out, "  \"restores\": {},", t.restores);
        let _ = writeln!(out, "  \"footprint_bytes\": {},", t.footprint_bytes);
        let _ = writeln!(out, "  \"footprint_peak_bytes\": {},", t.peak_bytes);
        let _ = writeln!(out, "  \"settled_peak_bytes\": {},", t.settled_peak_bytes);
        out.push_str("  \"per_session\": [\n");
        for (i, id) in ids.iter().enumerate() {
            let m = &map[*id];
            let comma = if i + 1 < ids.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"session\": \"{id}\", \"shard\": {}, \"phase\": \"{}\", \
                 \"attached\": {}, \"bytes\": {}, \"chunks\": {}, \"durable_bytes\": {}, \
                 \"footprint_bytes\": {}, \"restores\": {}, \"evictions\": {}}}{comma}",
                m.shard,
                m.phase.as_str(),
                m.attached,
                m.bytes,
                m.chunks,
                m.durable_bytes,
                m.footprint_bytes,
                m.restores,
                m.evictions,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_is_exclusive_until_detach() {
        let r = Registry::new(2, None);
        r.attach("s", 0).expect("first attach");
        let err = r.attach("s", 0).expect_err("second refused");
        assert!(matches!(err, ServeError::SessionBusy { session } if session == "s"));
        r.detach("s");
        r.attach("s", 0).expect("re-attach after detach");
    }

    #[test]
    fn accounting_tracks_total_peak_and_settled_peak() {
        let r = Registry::new(1, Some(1000));
        r.on_push("a", 0, 10, 600);
        r.on_push("b", 0, 10, 600);
        assert_eq!(r.footprint_total(), 1200);
        assert_eq!(
            r.shard_share(),
            Some(1000),
            "one shard owns the whole budget"
        );
        // Worker enforces the budget: evicts `a`, then settles.
        r.on_evict("a");
        r.settle_shard(0, 600);
        assert_eq!(r.footprint_total(), 600);
        let t = r.totals();
        assert_eq!(t.peak_bytes, 1200, "raw peak saw the transient");
        assert_eq!(
            t.settled_peak_bytes, 600,
            "settled peak respects the budget"
        );
        assert_eq!(t.evictions, 1);
        // Restore brings the footprint (and a counter) back.
        r.on_restore("a", 0, 580);
        assert_eq!(r.footprint_total(), 1180);
        assert_eq!(r.totals().restores, 1);
    }

    #[test]
    fn terminal_sessions_free_their_footprint() {
        let r = Registry::new(1, None);
        r.on_push("done", 0, 5, 300);
        r.on_terminal("done", SessionPhase::Completed);
        assert_eq!(r.footprint_total(), 0);
        let t = r.totals();
        assert_eq!((t.completed, t.live), (1, 0));
    }

    #[test]
    fn metrics_json_is_sorted_and_flat() {
        let r = Registry::new(4, Some(1 << 20));
        r.on_push("zeta", 1, 7, 100);
        r.on_push("alpha", 0, 9, 200);
        let json = r.render_json();
        let zeta = json.find("\"zeta\"").expect("zeta present");
        let alpha = json.find("\"alpha\"").expect("alpha present");
        assert!(alpha < zeta, "per_session sorted by id");
        assert!(json.contains("\"memory_budget_bytes\": 1048576"));
        assert!(json.contains("\"bytes_total\": 16"));
    }
}
