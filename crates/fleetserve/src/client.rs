//! Client side of the ingest protocol: `cafa push`, the ci.sh serve
//! gate, and the integration tests all drive the server through this
//! module.
//!
//! The core call is [`push_trace`]: open a stream-mode session, learn
//! the server's durable offset from the handshake reply, send the
//! trace **from that offset**, and read back either the final report
//! (trace complete — byte-identical to `cafa analyze --format json`)
//! or the new durable offset (trace still incomplete; resume later).
//! Calling it again after a disconnect — or after the server was
//! killed and restarted on the same state directory — continues the
//! session instead of starting over.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;

use crate::proto::{encode_handshake, frame, Mode, OFFSET_MAGIC};

/// A client-side failure, carrying the address or session involved.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to the server failed.
    Connect {
        /// The address dialed.
        addr: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Socket I/O failed mid-conversation.
    Io {
        /// The server address.
        addr: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The server's handshake reply was not `CAFO` + offset.
    BadHandshakeReply {
        /// The server address.
        addr: String,
    },
    /// The durable offset the server reported exceeds the bytes we
    /// hold — the journal belongs to a longer trace than ours.
    OffsetBeyondTrace {
        /// The session id.
        session: String,
        /// The server's durable offset.
        durable: u64,
        /// The trace length we were asked to push.
        have: u64,
    },
    /// The server rejected the session with a typed error.
    Rejected {
        /// The session id.
        session: String,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Connect { addr, source } => write!(f, "connect {addr}: {source}"),
            Self::Io { addr, source } => write!(f, "server {addr}: {source}"),
            Self::BadHandshakeReply { addr } => {
                write!(f, "server {addr}: malformed handshake reply")
            }
            Self::OffsetBeyondTrace {
                session,
                durable,
                have,
            } => write!(
                f,
                "session {session}: server already holds {durable} bytes but the local trace has {have}"
            ),
            Self::Rejected { session, message } => {
                write!(f, "session {session}: server rejected: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Connect { source, .. } | Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What one [`push_trace`] call achieved.
#[derive(Clone, Debug)]
pub struct PushOutcome {
    /// The durable offset the server reported at handshake — the
    /// number of trace bytes it already held.
    pub resumed_at: u64,
    /// The final report JSON, if the trace completed on this push.
    /// `None` means the session detached mid-trace;
    /// [`durable`](PushOutcome::durable) says where to resume.
    pub report: Option<String>,
    /// The server's durable offset when the connection closed.
    pub durable: u64,
}

/// Pushes `trace` bytes for `session` to the server at `addr`,
/// resuming from the server's durable offset, in writes of at most
/// `chunk` bytes.
///
/// # Errors
///
/// [`ClientError`] on connection, I/O, or server-side rejection.
pub fn push_trace(
    addr: &str,
    session: &str,
    trace: &[u8],
    chunk: usize,
) -> Result<PushOutcome, ClientError> {
    let chunk = chunk.max(1);
    let mut conn = TcpStream::connect(addr).map_err(|source| ClientError::Connect {
        addr: addr.to_owned(),
        source,
    })?;
    let _ = conn.set_nodelay(true);
    let io = |source| ClientError::Io {
        addr: addr.to_owned(),
        source,
    };
    conn.write_all(&encode_handshake(Mode::Stream, session))
        .map_err(io)?;
    let mut reply = [0u8; 12];
    conn.read_exact(&mut reply).map_err(io)?;
    if reply[0] == frame::ERROR {
        // The server refused the handshake (e.g. session busy): an
        // ERROR frame arrives in place of the CAFO offset reply.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).map_err(io)?;
        let mut body = reply[1..].to_vec();
        body.extend_from_slice(&rest);
        let (sess, message) = parse_error_frame(&body);
        return Err(ClientError::Rejected {
            session: if sess.is_empty() {
                session.to_owned()
            } else {
                sess
            },
            message,
        });
    }
    if reply[..4] != OFFSET_MAGIC {
        return Err(ClientError::BadHandshakeReply {
            addr: addr.to_owned(),
        });
    }
    let resumed_at = u64::from_be_bytes(reply[4..12].try_into().expect("8 bytes"));
    if resumed_at > trace.len() as u64 {
        return Err(ClientError::OffsetBeyondTrace {
            session: session.to_owned(),
            durable: resumed_at,
            have: trace.len() as u64,
        });
    }
    for part in trace[resumed_at as usize..].chunks(chunk) {
        conn.write_all(part).map_err(io)?;
    }
    conn.shutdown(std::net::Shutdown::Write).map_err(io)?;

    // The reply body is either the raw report JSON, a second CAFO
    // frame (detached: resume from its offset), or an ERROR frame.
    let mut body = Vec::new();
    conn.read_to_end(&mut body).map_err(io)?;
    match body.first() {
        Some(b'{') => Ok(PushOutcome {
            resumed_at,
            durable: trace.len() as u64,
            report: Some(String::from_utf8_lossy(&body).into_owned()),
        }),
        Some(b'C') if body.len() >= 12 && body[..4] == OFFSET_MAGIC => {
            let durable = u64::from_be_bytes(body[4..12].try_into().expect("8 bytes"));
            Ok(PushOutcome {
                resumed_at,
                durable,
                report: None,
            })
        }
        Some(&t) if t == frame::ERROR => {
            let (sess, message) = parse_error_frame(&body[1..]);
            Err(ClientError::Rejected {
                session: if sess.is_empty() {
                    session.to_owned()
                } else {
                    sess
                },
                message,
            })
        }
        _ => Err(ClientError::Rejected {
            session: session.to_owned(),
            message: "connection closed without a report".to_owned(),
        }),
    }
}

/// Best-effort decode of an ERROR frame body (after the tag byte).
fn parse_error_frame(body: &[u8]) -> (String, String) {
    if body.len() < 2 {
        return (String::new(), String::from_utf8_lossy(body).into_owned());
    }
    let id_len = u16::from_be_bytes([body[0], body[1]]) as usize;
    if body.len() < 2 + id_len + 4 {
        return (String::new(), String::from_utf8_lossy(body).into_owned());
    }
    let session = String::from_utf8_lossy(&body[2..2 + id_len]).into_owned();
    let msg_start = 2 + id_len + 4;
    let message = String::from_utf8_lossy(&body[msg_start..]).into_owned();
    (session, message)
}

/// A server-to-client frame, as read by [`FramedClient`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerFrame {
    /// A session's final report JSON.
    Report {
        /// The completed session.
        session: String,
        /// The report bytes (JSON).
        payload: Vec<u8>,
    },
    /// The admin metrics document.
    StatsReply {
        /// The metrics JSON.
        payload: Vec<u8>,
    },
    /// A durable-offset answer.
    OffsetReply {
        /// The queried session.
        session: String,
        /// Its durable offset.
        durable: u64,
    },
    /// A per-session error.
    Error {
        /// The failed session.
        session: String,
        /// The server's message.
        message: String,
    },
}

/// A framed-mode (multiplexing) connection: one socket carrying many
/// sessions, as a fleet proxy would hold.
#[derive(Debug)]
pub struct FramedClient {
    conn: TcpStream,
    addr: String,
}

impl FramedClient {
    /// Opens a framed connection named `name` to the server at `addr`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] if the dial or handshake write fails.
    pub fn connect(addr: &str, name: &str) -> Result<Self, ClientError> {
        let mut conn = TcpStream::connect(addr).map_err(|source| ClientError::Connect {
            addr: addr.to_owned(),
            source,
        })?;
        let _ = conn.set_nodelay(true);
        conn.write_all(&encode_handshake(Mode::Framed, name))
            .map_err(|source| ClientError::Io {
                addr: addr.to_owned(),
                source,
            })?;
        Ok(Self {
            conn,
            addr: addr.to_owned(),
        })
    }

    fn io(&self, source: std::io::Error) -> ClientError {
        ClientError::Io {
            addr: self.addr.clone(),
            source,
        }
    }

    /// Sends trace bytes for `session` (empty = poke).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn send_data(&mut self, session: &str, payload: &[u8]) -> Result<(), ClientError> {
        let frame = crate::proto::encode_data_frame(session, payload);
        self.conn.write_all(&frame).map_err(|e| self.io(e))
    }

    /// Requests the metrics document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn request_stats(&mut self) -> Result<(), ClientError> {
        let frame = crate::proto::encode_stats_frame();
        self.conn.write_all(&frame).map_err(|e| self.io(e))
    }

    /// Queries `session`'s durable offset.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn request_offset(&mut self, session: &str) -> Result<(), ClientError> {
        let frame = crate::proto::encode_offset_frame(session);
        self.conn.write_all(&frame).map_err(|e| self.io(e))
    }

    /// Half-closes the write side, so the server flushes pending
    /// replies and closes once drained.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the shutdown fails.
    pub fn finish_writes(&mut self) -> Result<(), ClientError> {
        self.conn
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| self.io(e))
    }

    /// Reads one server frame; `None` at end of stream.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on I/O failure or a malformed frame.
    pub fn read_frame(&mut self) -> Result<Option<ServerFrame>, ClientError> {
        let mut tag = [0u8; 1];
        match self.conn.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(self.io(e)),
        }
        let frame = match tag[0] {
            frame::REPORT => {
                let session = self.read_id()?;
                let payload = self.read_payload()?;
                ServerFrame::Report { session, payload }
            }
            frame::STATS_REPLY => ServerFrame::StatsReply {
                payload: self.read_payload()?,
            },
            frame::OFFSET_REPLY => {
                let session = self.read_id()?;
                let mut off = [0u8; 8];
                self.conn.read_exact(&mut off).map_err(|e| self.io(e))?;
                ServerFrame::OffsetReply {
                    session,
                    durable: u64::from_be_bytes(off),
                }
            }
            frame::ERROR => {
                let session = self.read_id()?;
                let payload = self.read_payload()?;
                ServerFrame::Error {
                    session,
                    message: String::from_utf8_lossy(&payload).into_owned(),
                }
            }
            other => {
                return Err(ClientError::Rejected {
                    session: String::new(),
                    message: format!("unexpected server frame type {other}"),
                })
            }
        };
        Ok(Some(frame))
    }

    /// Drains all remaining server frames until the stream closes.
    ///
    /// # Errors
    ///
    /// As for [`read_frame`](FramedClient::read_frame).
    pub fn drain(&mut self) -> Result<Vec<ServerFrame>, ClientError> {
        let mut frames = Vec::new();
        while let Some(f) = self.read_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }

    fn read_id(&mut self) -> Result<String, ClientError> {
        let mut len = [0u8; 2];
        self.conn.read_exact(&mut len).map_err(|e| self.io(e))?;
        let mut id = vec![0u8; u16::from_be_bytes(len) as usize];
        self.conn.read_exact(&mut id).map_err(|e| self.io(e))?;
        Ok(String::from_utf8_lossy(&id).into_owned())
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut len = [0u8; 4];
        self.conn.read_exact(&mut len).map_err(|e| self.io(e))?;
        let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
        self.conn.read_exact(&mut payload).map_err(|e| self.io(e))?;
        Ok(payload)
    }
}

/// Fetches the admin metrics document from a server's `--admin`
/// listener (connect, read to close).
///
/// # Errors
///
/// [`ClientError`] if the dial or read fails.
pub fn fetch_admin_metrics(addr: &str) -> Result<String, ClientError> {
    let mut conn = TcpStream::connect(addr).map_err(|source| ClientError::Connect {
        addr: addr.to_owned(),
        source,
    })?;
    let mut body = String::new();
    conn.read_to_string(&mut body)
        .map_err(|source| ClientError::Io {
            addr: addr.to_owned(),
            source,
        })?;
    Ok(body)
}
