//! Fleet-scale multi-tenant ingest server for streaming race
//! analysis.
//!
//! A production fleet does not hand the analyzer one trace at a time:
//! thousands of devices stream event/operation logs concurrently, in
//! arbitrary chunk sizes, over connections that drop and resume, on a
//! collector whose memory is finite. This crate turns the
//! chunk-invariant [`cafa_stream::IncrementalSession`] into that
//! collector:
//!
//! * **Sessions** — every connection (or frame, in multiplexed proxy
//!   mode) names a session id; each session is one device's trace and
//!   yields exactly the report batch `cafa analyze --format json`
//!   would produce, byte for byte.
//! * **Deterministic sharding** — session ids route through
//!   [`cafa_engine::fleet::shard_of`] to a fixed worker, so a
//!   session's bytes are analyzed single-threaded in arrival order:
//!   output is independent of worker count and connection
//!   interleaving (the `fleet` discipline extended from batch jobs to
//!   long-lived keyed streams).
//! * **Bounded memory** — sessions account their modeled footprint
//!   ([`cafa_stream::IncrementalSession::footprint_bytes`]); under a
//!   budget, cold sessions are evicted LRU by snapshotting to a
//!   versioned on-disk journal and restored transparently on their
//!   next byte.
//! * **Crash-safe restart** — the same journal format survives
//!   `kill -9`: reopening the state directory resumes every mid-trace
//!   session, and clients re-send from the durable offset the
//!   handshake reply reports.
//! * **Observability** — an admin listener (and the in-band STATS
//!   frame) serves per-session and aggregate metrics as the same flat
//!   JSON shape `cafa stats --format json` uses.
//!
//! Module map: [`proto`] (wire grammar + incremental parser),
//! [`server`] (shard workers, eviction, restart), [`journal`]
//! (snapshot format), [`registry`] (attach guard, accounting,
//! metrics), [`client`] (`cafa push` and test drivers), [`error`]
//! (typed, context-carrying failures).

pub mod client;
pub mod error;
pub mod journal;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::{
    fetch_admin_metrics, push_trace, ClientError, FramedClient, PushOutcome, ServerFrame,
};
pub use error::ServeError;
pub use journal::{Journal, SnapshotError, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use proto::{Mode, ProtoError, ProtoItem, ProtoReader};
pub use registry::{Registry, SessionMetrics, SessionPhase, Totals};
pub use server::{Server, ServerConfig};
