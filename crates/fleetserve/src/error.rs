//! Typed server-path errors.
//!
//! Every failure carries its context — the listen address, the peer,
//! the session id — so an operator reading one line knows *which*
//! connection or tenant it concerns. The CLI surfaces these verbatim
//! (and exits nonzero); the old stringly `map_err(|e| format!(...))`
//! serve path is gone.

use std::fmt;
use std::path::PathBuf;

use crate::journal::SnapshotError;
use crate::proto::ProtoError;
use cafa_stream::StreamError;

/// A failure in the ingest server, with the context it occurred in.
#[derive(Debug)]
pub enum ServeError {
    /// Binding a listen or admin address failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Creating or scanning the state directory failed.
    StateDir {
        /// The directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `--memory-budget` was configured without `--state-dir`:
    /// eviction snapshots cold sessions to disk, so a budget without
    /// a state directory could only enforce itself by dropping data.
    BudgetNeedsStateDir,
    /// Socket I/O with a peer failed.
    Io {
        /// The peer's address (or `stdin`).
        peer: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A peer violated the wire protocol.
    Proto {
        /// The offending peer.
        peer: String,
        /// The typed violation, positioned at its exact byte offset.
        source: ProtoError,
    },
    /// A second connection tried to attach a session already being
    /// fed by another connection.
    SessionBusy {
        /// The contested session id.
        session: String,
    },
    /// A session's trace bytes failed streaming analysis.
    Session {
        /// The session the bytes belong to.
        session: String,
        /// The underlying analysis error.
        source: StreamError,
    },
    /// A session's snapshot journal failed.
    Snapshot {
        /// The session the journal belongs to.
        session: String,
        /// The underlying snapshot error.
        source: SnapshotError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bind { addr, source } => write!(f, "cannot listen on {addr}: {source}"),
            Self::StateDir { path, source } => {
                write!(f, "state dir {}: {source}", path.display())
            }
            Self::BudgetNeedsStateDir => {
                write!(f, "--memory-budget requires --state-dir (eviction snapshots cold sessions to disk)")
            }
            Self::Io { peer, source } => write!(f, "peer {peer}: {source}"),
            Self::Proto { peer, source } => write!(f, "peer {peer}: protocol: {source}"),
            Self::SessionBusy { session } => {
                write!(
                    f,
                    "session {session}: already attached to another connection"
                )
            }
            Self::Session { session, source } => write!(f, "session {session}: {source}"),
            Self::Snapshot { session, source } => write!(f, "session {session}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Bind { source, .. } | Self::StateDir { source, .. } | Self::Io { source, .. } => {
                Some(source)
            }
            Self::Proto { source, .. } => Some(source),
            Self::Session { source, .. } => Some(source),
            Self::Snapshot { source, .. } => Some(source),
            Self::BudgetNeedsStateDir | Self::SessionBusy { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_their_context() {
        let e = ServeError::Bind {
            addr: "127.0.0.1:1".into(),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        let msg = e.to_string();
        assert!(msg.contains("127.0.0.1:1"), "{msg}");

        let e = ServeError::SessionBusy {
            session: "device-3".into(),
        };
        assert!(e.to_string().contains("device-3"));

        let e = ServeError::Proto {
            peer: "10.0.0.7:999".into(),
            source: ProtoError::BadVersion { at: 4, found: 9 },
        };
        let msg = e.to_string();
        assert!(
            msg.contains("10.0.0.7:999") && msg.contains("byte 4"),
            "{msg}"
        );
    }
}
