//! End-to-end replay guarantees, pinned against the bundled catalog:
//! byte-identical deterministic replay, typed divergence at the exact
//! script step, and the full validation sweep (every oracle-true race
//! machine-confirms, no benign report ever fires).

use cafa_apps::all_apps;
use cafa_replay::{validate_apps, ReplayConfig};
use cafa_sim::{run, Choice, InstrumentConfig, SchedulePolicy, SimConfig, SimError};
use cafa_trace::to_binary_vec;

/// A recorded stress run of the first catalog app, instrumentation on
/// so the trace can be byte-compared.
fn recorded_stress(policy: SchedulePolicy, seed: u64) -> cafa_sim::RunOutcome {
    let app = &all_apps()[0];
    let config = SimConfig {
        seed,
        instrument: InstrumentConfig::paper_packages(),
        policy,
        record_schedule: true,
        ..SimConfig::default()
    };
    run(&app.stress_program, &config).expect("catalog programs run clean")
}

#[test]
fn replaying_a_recorded_schedule_reproduces_the_trace_byte_for_byte() {
    let original = recorded_stress(SchedulePolicy::Random, 7);
    let schedule = original.schedule.clone().expect("record_schedule was set");
    let original_bytes = to_binary_vec(original.trace.as_ref().expect("instrumented"));

    for _ in 0..2 {
        let replayed =
            recorded_stress(SchedulePolicy::Script(schedule.clone()), schedule.tail_seed);
        let replay_bytes = to_binary_vec(replayed.trace.as_ref().expect("instrumented"));
        assert_eq!(
            original_bytes, replay_bytes,
            "script replay must reproduce the recorded trace byte-for-byte"
        );
        // The re-recorded script is the one we fed in: replay of the
        // replay stays on the same schedule.
        assert_eq!(replayed.schedule.as_ref(), Some(&schedule));
    }
}

#[test]
fn a_corrupted_script_diverges_at_the_exact_choice() {
    let original = recorded_stress(SchedulePolicy::Random, 7);
    let mut schedule = original.schedule.expect("record_schedule was set");
    assert!(schedule.len() > 8, "stress run makes many decisions");

    let corrupt_at = schedule.len() / 2;
    schedule.choices[corrupt_at] = Choice::Step(u32::MAX);

    let app = &all_apps()[0];
    let config = SimConfig {
        seed: schedule.tail_seed,
        instrument: InstrumentConfig::off(),
        policy: SchedulePolicy::Script(schedule),
        ..SimConfig::default()
    };
    let err = run(&app.stress_program, &config).expect_err("corrupt script must diverge");
    match err {
        SimError::ReplayDivergence {
            choice, offered, ..
        } => {
            assert_eq!(choice, corrupt_at, "divergence names the corrupted choice");
            assert!(!offered.is_empty(), "divergence lists the offered entities");
        }
        other => panic!("expected ReplayDivergence, got {other:?}"),
    }
}

#[test]
fn catalog_sweep_confirms_every_oracle_true_race_and_no_benign_one() {
    // A deliberately tight budget: directed synthesis is expected to
    // confirm real races in a handful of runs, and benign reports burn
    // the whole budget, so a small one keeps the sweep fast without
    // weakening the assertion.
    let cfg = ReplayConfig {
        budget: 16,
        directed_attempts: 4,
        guided_attempts: 4,
        minimize: false,
    };
    let validations = validate_apps(&cfg, cafa_engine::fleet::default_threads())
        .expect("catalog validates clean");
    for validation in &validations {
        for race in &validation.races {
            let v = &race.validation;
            if race.harmful {
                assert!(
                    v.confirmed() && v.replay_verified,
                    "{}: oracle-true race on {} must confirm with a replayable witness \
                     (method {:?}, {} runs)",
                    validation.app,
                    v.var,
                    v.method,
                    v.total_runs,
                );
                assert!(
                    v.runs_to_witness <= cfg.budget,
                    "{}: witness for {} must fit the budget",
                    validation.app,
                    v.var,
                );
            } else {
                assert!(
                    !v.confirmed(),
                    "{}: benign report on {} must never fire a violation",
                    validation.app,
                    v.var,
                );
            }
        }
    }
}

#[test]
fn minimized_witnesses_still_replay_and_never_grow() {
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name == "MyTracks")
        .expect("MyTracks is in the catalog");
    let cfg = ReplayConfig {
        minimize: true,
        ..ReplayConfig::default()
    };
    let validation = cafa_replay::validate_app(app, &cfg).expect("MyTracks validates clean");
    let mut minimized_any = false;
    for race in &validation.races {
        let v = &race.validation;
        if !race.harmful || !v.confirmed() {
            continue;
        }
        let witness = v.witness.as_ref().expect("confirmed race has a witness");
        assert!(
            witness.len() <= v.full_len,
            "minimization never grows the script (got {} from {})",
            witness.len(),
            v.full_len,
        );
        assert!(v.replay_verified, "the minimized witness still fires");
        minimized_any |= witness.len() < v.full_len;
    }
    assert!(
        minimized_any,
        "at least one witness shrinks below the full recorded script"
    );
}
