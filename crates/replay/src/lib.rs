//! Directed schedule synthesis and deterministic replay validation of
//! reported races.
//!
//! CAFA is *predictive*: it reports use-free races from executions in
//! which nothing went wrong, accepting false positives for coverage
//! (§7.1.3). The paper's authors closed the loop by hand, re-running
//! each application until the report either fired or was argued
//! benign (§6.2). This crate mechanizes that step with three layers on
//! top of `cafa-sim`'s controlled scheduler:
//!
//! * **synthesis** ([`synth`]) — for a reported race `(use u, free f)`,
//!   derive [`DeferRule`](cafa_sim::DeferRule)s from the instrumented
//!   stress trace and its happens-before model that *flip the racing
//!   pair* (force `f` before `u`) while leaving every derived HB edge
//!   intact: the rules only hold back `u`'s posting chain (and any
//!   re-allocating protector task), never anything `f` depends on, so
//!   every run they bias is still a legal linearization of the HB
//!   graph with the pair reversed;
//! * **search** ([`driver`]) — a fallback ladder: a handful of
//!   directed runs, then HB-bounded guided search (a weaker defer
//!   spec that still prefers flipped-pair-consistent schedules), then
//!   the pre-existing blind random probing of `cafa_apps::prober`;
//! * **witnessing** ([`minimize`], [`validate`]) — every hit is
//!   re-recorded as a [`Schedule`](cafa_sim::Schedule) script, replay
//!   is verified (same script ⇒ identical outcome, divergence is a
//!   typed error), and the script can be delta-debugged down to a
//!   minimal crashing prefix.
//!
//! The result: every oracle-true race in the bundled ten-app catalog
//! machine-confirms with a replayable, minimized witness schedule in
//! far fewer simulator runs than random probing needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjudicate;
pub mod driver;
pub mod minimize;
pub mod synth;
pub mod validate;

pub use adjudicate::{adjudicate_races, Adjudication, AppAdjudication};
pub use driver::{search_witness, validate_race, Method, RaceValidation, ReplayConfig};
pub use minimize::minimize_witness;
pub use synth::{dispatch_chain, synthesize, synthesize_guided, Infeasible};
pub use validate::{validate_app, validate_apps, AppValidation};

use std::fmt;

/// A failure while validating an app's report.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplayError {
    /// A simulator run failed (the bundled workloads run clean, so
    /// this indicates a driver bug or a bad schedule script).
    Sim(cafa_sim::SimError),
    /// The happens-before model could not be built.
    Hb(cafa_hb::HbError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Sim(e) => write!(f, "simulator failure: {e}"),
            ReplayError::Hb(e) => write!(f, "happens-before model failure: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Sim(e) => Some(e),
            ReplayError::Hb(e) => Some(e),
        }
    }
}

impl From<cafa_sim::SimError> for ReplayError {
    fn from(e: cafa_sim::SimError) -> Self {
        ReplayError::Sim(e)
    }
}

impl From<cafa_hb::HbError> for ReplayError {
    fn from(e: cafa_hb::HbError) -> Self {
        ReplayError::Hb(e)
    }
}
