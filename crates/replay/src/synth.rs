//! Directed-schedule synthesis: from a reported race to a set of
//! defer rules that force the free before the use.
//!
//! The synthesis works on the *instrumented stress trace* — a recorded
//! run of the stress variant under a known seed — and its
//! happens-before model. Conceptually it builds a topological
//! linearization of the HB graph with the racing pair flipped: since a
//! reported race is HB-*concurrent*, flipping `(use, free)` to
//! `free ≺ use` contradicts no derived edge, so a legal schedule with
//! that order exists whenever the pair is concurrent and the two
//! endpoints are reached by disjoint dispatch chains. Rather than
//! emitting every decision of that linearization (which would be
//! brittle against the runtime's timer jitter), the synthesis emits
//! the *binding* constraints only, as [`DeferRule`]s:
//!
//! * hold back every task on the use's **dispatch chain** (the use
//!   event, whoever posted it, whoever forked *that*, …) that is not
//!   also on the free's chain, until the free's task has completed —
//!   deferring posting chains rather than queue positions is what
//!   respects Android's FIFO queue discipline: once both events are
//!   enqueued their relative order is fixed, so the flip must happen
//!   at post time;
//! * hold back **protector** tasks — tasks that re-allocate the raced
//!   variable and are not already ordered before the free — until the
//!   use's task has completed, so a fresh allocation cannot paper over
//!   the hazard window the flip opens.
//!
//! Everything not named by a rule schedules freely, and deferral is a
//! bias rather than a block, so the directed run remains a legal run
//! of the program under every derived HB edge.

use std::collections::HashSet;
use std::fmt;

use cafa_engine::MemoryOps;
use cafa_hb::{HbModel, OpOrder};
use cafa_sim::{DeferRule, DirectedSpec};
use cafa_trace::{TaskId, TaskKind, Trace, VarId};

/// Why no directed schedule could be synthesized for a race. The
/// driver falls back to guided search, then random probing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Infeasible {
    /// The variable has no (use, free) pair in the stress trace — for
    /// example the reference run already crashed on it, so the
    /// dereference never executed.
    NotInTrace,
    /// Every (use, free) pair lives in a single task; no schedule can
    /// reorder within a task.
    SameTask,
    /// Every cross-task pair is ordered by derived happens-before
    /// edges: the flipped linearization would violate them.
    AlwaysOrdered,
    /// After removing the free's own dispatch chain, nothing is left
    /// to defer — both endpoints are reached through the same chain.
    SharedChain,
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasible::NotInTrace => write!(f, "no use/free pair for the variable in the trace"),
            Infeasible::SameTask => write!(f, "use and free always share a task"),
            Infeasible::AlwaysOrdered => {
                write!(f, "every use/free pair is ordered by happens-before edges")
            }
            Infeasible::SharedChain => {
                write!(
                    f,
                    "use and free are reached through the same dispatch chain"
                )
            }
        }
    }
}

/// The causal dispatch chain of a task, starting at the task itself:
/// an event is preceded by the task that posted it, a forked thread by
/// the task that forked it. Stops at external events and initial
/// threads. Cycle-safe (trace corruption cannot loop it).
pub fn dispatch_chain(trace: &Trace, start: TaskId) -> Vec<TaskId> {
    let mut chain = vec![start];
    let mut cur = start;
    loop {
        let parent = match &trace.task(cur).kind {
            TaskKind::Event { origin, .. } => origin.send_site().map(|s| s.task),
            TaskKind::Thread { forked_at, .. } => forked_at.map(|s| s.task),
        };
        match parent {
            Some(p) if !chain.contains(&p) => {
                chain.push(p);
                cur = p;
            }
            _ => break,
        }
    }
    chain
}

/// Synthesizes a [`DirectedSpec`] forcing the reported race on `var`
/// to fire: the free before the use, protectors held off.
///
/// # Errors
///
/// Returns [`Infeasible`] when no HB-consistent flipped linearization
/// exists (see the variants); the caller then falls back to
/// [`synthesize_guided`] and random probing.
pub fn synthesize(
    trace: &Trace,
    model: &HbModel<'_>,
    ops: &MemoryOps,
    var: VarId,
) -> Result<DirectedSpec, Infeasible> {
    let vops = ops.var_ops(var).ok_or(Infeasible::NotInTrace)?;
    if vops.uses.is_empty() || vops.frees.is_empty() {
        return Err(Infeasible::NotInTrace);
    }

    // The racing pair: the first HB-concurrent cross-task (use, free).
    let mut cross_task = false;
    let mut pair = None;
    'outer: for &ui in &vops.uses {
        for &fi in &vops.frees {
            let u = ops.uses[ui];
            let f = ops.frees[fi];
            if u.at.task == f.at.task {
                continue;
            }
            cross_task = true;
            if model.order(u.at, f.at) == OpOrder::Concurrent {
                pair = Some((u, f));
                break 'outer;
            }
        }
    }
    let (u, f) = pair.ok_or(if cross_task {
        Infeasible::AlwaysOrdered
    } else {
        Infeasible::SameTask
    })?;

    // Hold the use's dispatch chain until the free's task completes.
    let use_chain = dispatch_chain(trace, u.at.task);
    let free_chain: HashSet<&str> = dispatch_chain(trace, f.at.task)
        .iter()
        .map(|&t| trace.task_name(t))
        .collect();
    let until_free = trace.task_name(f.at.task).to_owned();
    let mut defer: Vec<String> = Vec::new();
    for &t in &use_chain {
        let n = trace.task_name(t);
        if !free_chain.contains(n) && n != until_free && !defer.iter().any(|d| d == n) {
            defer.push(n.to_owned());
        }
    }
    if defer.is_empty() {
        return Err(Infeasible::SharedChain);
    }
    let flip = DeferRule {
        defer: defer.clone(),
        until: until_free,
        until_count: 1,
    };

    // Protectors: tasks that re-allocate the variable inside the
    // hazard window must wait until the use has run into it.
    let use_name = trace.task_name(u.at.task).to_owned();
    let mut protect: Vec<String> = Vec::new();
    for &ai in &vops.allocs {
        let a = ops.allocs[ai];
        if a.at.task == u.at.task || a.at.task == f.at.task {
            continue;
        }
        let n = trace.task_name(a.at.task);
        if free_chain.contains(n) || n == use_name {
            continue;
        }
        // An allocation already ordered before the free cannot close
        // the window the flip opens.
        if model.happens_before(a.at, f.at) {
            continue;
        }
        // Names on the use chain are already held (until the free);
        // extending their hold past the use would defer the use itself.
        if defer.iter().any(|d| d == n) {
            continue;
        }
        if !protect.iter().any(|p| p == n) {
            protect.push(n.to_owned());
        }
    }

    let mut rules = vec![flip];
    if !protect.is_empty() {
        rules.push(DeferRule {
            defer: protect,
            until: use_name,
            until_count: 1,
        });
    }
    Ok(DirectedSpec { rules })
}

/// The HB-bounded guided fallback: a weaker spec that only prefers
/// schedules consistent with the flipped pair — defer the use's own
/// task until the free's task completes — without requiring disjoint
/// dispatch chains or a feasibility proof. Returns `None` when the
/// trace offers nothing to bias (no use/free, or both share a name).
pub fn synthesize_guided(trace: &Trace, ops: &MemoryOps, var: VarId) -> Option<DirectedSpec> {
    let vops = ops.var_ops(var)?;
    let u = ops.uses[*vops.uses.first()?];
    let f = ops.frees[*vops.frees.first()?];
    let use_name = trace.task_name(u.at.task).to_owned();
    let until = trace.task_name(f.at.task).to_owned();
    if use_name == until {
        return None;
    }
    Some(DirectedSpec {
        rules: vec![DeferRule {
            defer: vec![use_name],
            until,
            until_count: 1,
        }],
    })
}
