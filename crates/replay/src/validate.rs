//! End-to-end validation: from an app's Table 1 race report to a
//! replayable witness (or an exhausted budget) per reported race.
//!
//! The pipeline per app: record the reference trace and analyze it
//! (exactly the Table 1 configuration); record the reference program
//! again under **full** coverage and build its happens-before model —
//! the view schedule synthesis works from (see [`validate_app`] for
//! why it must differ from the detector's); then for every reported
//! race synthesize a directed spec and run the
//! [`driver`](crate::driver) search ladder against the uninstrumented
//! *stress* variant, whose task names match the reference program's.

use cafa_apps::{all_apps, AppSpec, Label};
use cafa_core::{AnalysisSession, Analyzer, PassStats};
use cafa_engine::fleet;
use cafa_hb::CausalityConfig;

use crate::driver::{validate_race, RaceValidation, ReplayConfig};
use crate::synth::{synthesize, synthesize_guided};
use crate::ReplayError;

/// One reported race joined with its oracle label.
#[derive(Clone, Debug)]
pub struct ValidatedRace {
    /// The search outcome.
    pub validation: RaceValidation,
    /// Oracle says the race is a real use-after-free hazard.
    pub harmful: bool,
}

/// The validation outcome for one catalog app.
#[derive(Debug)]
pub struct AppValidation {
    /// Application name as it appears in Table 1.
    pub app: String,
    /// One entry per reported race, report order.
    pub races: Vec<ValidatedRace>,
    /// Wall-clock accounting per pipeline pass.
    pub stats: PassStats,
}

impl AppValidation {
    /// Reported races the oracle labels harmful.
    pub fn oracle_true(&self) -> usize {
        self.races.iter().filter(|r| r.harmful).count()
    }

    /// Harmful races confirmed with a replay-verified witness.
    pub fn confirmed_true(&self) -> usize {
        self.races
            .iter()
            .filter(|r| r.harmful && r.validation.confirmed() && r.validation.replay_verified)
            .count()
    }

    /// Benign reports where the search nonetheless fired a violation
    /// (should stay zero: benign patterns guard or re-check).
    pub fn benign_fired(&self) -> usize {
        self.races
            .iter()
            .filter(|r| !r.harmful && r.validation.confirmed())
            .count()
    }

    /// Total stress runs across all races, probes included.
    pub fn total_runs(&self) -> u64 {
        self.races.iter().map(|r| r.validation.total_runs).sum()
    }

    /// One-line summary pinned by the CI golden file.
    pub fn counts_line(&self) -> String {
        format!(
            "{}: reported={} oracle_true={} confirmed_true={} benign_fired={}",
            self.app,
            self.races.len(),
            self.oracle_true(),
            self.confirmed_true(),
            self.benign_fired(),
        )
    }

    /// Renders the validation as a JSON object (hand-rolled: the
    /// workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"app\":\"{}\",\"reported\":{},\"oracle_true\":{},\"confirmed_true\":{},\"benign_fired\":{},\"total_runs\":{},\"races\":[",
            escape(&self.app),
            self.races.len(),
            self.oracle_true(),
            self.confirmed_true(),
            self.benign_fired(),
            self.total_runs(),
        ));
        for (i, r) in self.races.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = &r.validation;
            out.push_str(&format!(
                "{{\"var\":{},\"harmful\":{},\"confirmed\":{},\"method\":{},\"crashes\":{},\"runs_to_witness\":{},\"total_runs\":{},\"replay_verified\":{},\"full_len\":{},\"witness\":{}}}",
                v.var.as_u32(),
                r.harmful,
                v.confirmed(),
                match v.method {
                    Some(m) => format!("\"{m}\""),
                    None => "null".to_owned(),
                },
                v.crashes,
                v.runs_to_witness,
                v.total_runs,
                v.replay_verified,
                v.full_len,
                match &v.witness {
                    Some(w) => format!("\"{}\"", escape(&w.to_compact())),
                    None => "null".to_owned(),
                },
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Validates every race reported for `app`: analyze the reference
/// trace, synthesize directed schedules from the full-coverage
/// reference trace, and run the search ladder against the stress
/// variant per reported race.
///
/// # Errors
///
/// Propagates simulator and happens-before failures; the bundled
/// catalog runs clean.
pub fn validate_app(app: &AppSpec, cfg: &ReplayConfig) -> Result<AppValidation, ReplayError> {
    let mut stats = PassStats::default();

    // The Table 1 report: reference trace, paper instrumentation.
    let recorded = stats.run("record", || (app.record(0), 1))?;
    let trace = recorded
        .trace
        .expect("paper instrumentation records a trace");
    let session = AnalysisSession::new(&trace);
    let report = stats.run("analyze", || {
        let r = Analyzer::new().analyze_with(&session);
        let n = r.as_ref().map_or(0, |r| r.races.len());
        (r, n)
    })?;

    // The trace + HB model the synthesis works on: the *reference*
    // program under **full** coverage. The reference run takes the
    // benign order, so every racing use actually executes and lands in
    // the trace (a stress recording can crash before the use runs);
    // full coverage matters because synthesis must respect platform
    // causality the detector deliberately cannot see — a
    // register/perform edge from an uninstrumented package still
    // constrains real schedules, and a directed run that broke it
    // would "confirm" a race no platform execution exhibits. The
    // derived defer rules transfer to the stress variant by task name:
    // both programs are built by the same generator and differ only in
    // timing margins.
    let synth_rec = stats.run("synth-record", || (app.record_full_coverage(0), 1))?;
    let synth_trace = synth_rec
        .trace
        .expect("full instrumentation records a trace");
    let synth_session = AnalysisSession::new(&synth_trace);
    let model = stats.run("synth-model", || {
        (synth_session.model(CausalityConfig::cafa()), 1)
    })?;
    let ops = synth_session.ops();

    let mut races = Vec::with_capacity(report.races.len());
    for race in &report.races {
        let directed = stats.run_accumulating("synthesize", || {
            (synthesize(&synth_trace, &model, ops, race.var).ok(), 1)
        });
        let guided = synthesize_guided(&synth_trace, ops, race.var);
        let validation = stats.run_accumulating("search", || {
            let v = validate_race(
                &app.stress_program,
                race.var,
                directed.as_ref(),
                guided.as_ref(),
                cfg,
            );
            let n = v.as_ref().map_or(0, |v| v.total_runs as usize);
            (v, n)
        })?;
        let harmful = matches!(app.truth.get(race.var), Some(Label::Harmful { .. }));
        races.push(ValidatedRace {
            validation,
            harmful,
        });
    }

    Ok(AppValidation {
        app: app.name.clone(),
        races,
        stats,
    })
}

/// Validates the whole bundled catalog, one app per fleet worker.
///
/// # Errors
///
/// Propagates the first per-app failure, catalog order.
pub fn validate_apps(
    cfg: &ReplayConfig,
    threads: usize,
) -> Result<Vec<AppValidation>, ReplayError> {
    let apps = all_apps();
    fleet::map(&apps, threads, |app| validate_app(app, cfg))
        .into_iter()
        .collect()
}
