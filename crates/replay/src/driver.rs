//! The witness search ladder: directed → guided → random.

use cafa_sim::{
    run, DirectedSpec, InstrumentConfig, Program, RunOutcome, Schedule, SchedulePolicy, SimConfig,
    SimError,
};
use cafa_trace::VarId;

/// Which rung of the search ladder produced a witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Full directed synthesis (flip + protector rules).
    Directed,
    /// HB-bounded guided search (weak flip preference).
    Guided,
    /// Blind random probing (the pre-existing `prober` behavior).
    Random,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Directed => write!(f, "directed"),
            Method::Guided => write!(f, "guided"),
            Method::Random => write!(f, "random"),
        }
    }
}

/// Budgets for one race's validation.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Total stress runs allowed for the witness search (all rungs).
    pub budget: u64,
    /// Seeds to try on the directed rung.
    pub directed_attempts: u64,
    /// Seeds to try on the guided rung.
    pub guided_attempts: u64,
    /// Delta-debug each witness to a minimal crashing prefix.
    pub minimize: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            budget: 32,
            directed_attempts: 4,
            guided_attempts: 8,
            minimize: false,
        }
    }
}

/// The outcome of validating one reported race.
#[derive(Clone, Debug)]
pub struct RaceValidation {
    /// The raced variable.
    pub var: VarId,
    /// The rung that found the witness, `None` when unconfirmed.
    pub method: Option<Method>,
    /// Whether the witnessed violation crashed the app (false = the
    /// exception was swallowed, the ToDoList pattern).
    pub crashes: bool,
    /// Stress runs executed until the witness fired (= the whole
    /// search budget when unconfirmed).
    pub runs_to_witness: u64,
    /// All stress runs, including minimization probes and the final
    /// replay verification.
    pub total_runs: u64,
    /// The witness schedule script (minimized when requested).
    pub witness: Option<Schedule>,
    /// Length of the recorded script before minimization.
    pub full_len: usize,
    /// True when replaying `witness` reproduced the violation (always
    /// true for confirmed races; pinned by the catalog sweep test).
    pub replay_verified: bool,
}

impl RaceValidation {
    /// True when a replayable witness schedule was found.
    pub fn confirmed(&self) -> bool {
        self.witness.is_some()
    }
}

/// A stress-run configuration: instrumentation off, everything else
/// default.
pub(crate) fn stress_config(policy: SchedulePolicy, seed: u64, record: bool) -> SimConfig {
    SimConfig {
        seed,
        instrument: InstrumentConfig::off(),
        policy,
        record_schedule: record,
        ..SimConfig::default()
    }
}

/// `Some(crashes)` when the outcome fired the violation on `var`.
pub(crate) fn npe_on(outcome: &RunOutcome, var: VarId) -> Option<bool> {
    outcome
        .npes
        .iter()
        .find(|n| n.var == var)
        .map(|n| !n.caught)
}

/// Runs the search ladder for one race: directed seeds, then guided
/// seeds, then random seeds, stopping at the first schedule where the
/// violation fires on `var`. Returns the recorded witness (schedule,
/// crashes, rung, seed) and the number of runs executed.
///
/// # Errors
///
/// Propagates simulator failures (the bundled workloads run clean).
#[allow(clippy::type_complexity)]
pub fn search_witness(
    stress: &Program,
    var: VarId,
    directed: Option<&DirectedSpec>,
    guided: Option<&DirectedSpec>,
    cfg: &ReplayConfig,
) -> Result<(Option<(Schedule, bool, Method, u64)>, u64), SimError> {
    let mut runs = 0u64;
    let mut plan: Vec<(SchedulePolicy, u64, Method)> = Vec::new();
    if let Some(spec) = directed {
        for seed in 0..cfg.directed_attempts {
            plan.push((
                SchedulePolicy::Directed(spec.clone()),
                seed,
                Method::Directed,
            ));
        }
    }
    if let Some(spec) = guided {
        for seed in 0..cfg.guided_attempts {
            plan.push((SchedulePolicy::Directed(spec.clone()), seed, Method::Guided));
        }
    }
    let ladder_len = plan.len() as u64;
    for seed in 0..cfg.budget.saturating_sub(ladder_len.min(cfg.budget)) {
        plan.push((SchedulePolicy::Random, seed, Method::Random));
    }
    plan.truncate(cfg.budget as usize);

    for (policy, seed, method) in plan {
        runs += 1;
        let outcome = run(stress, &stress_config(policy, seed, true))?;
        if let Some(crashes) = npe_on(&outcome, var) {
            let schedule = outcome.schedule.expect("record_schedule was set");
            return Ok((Some((schedule, crashes, method, seed)), runs));
        }
    }
    Ok((None, runs))
}

/// Validates one race end to end: synthesis already done by the
/// caller, this runs the ladder, optionally minimizes, and verifies
/// the witness replays. Public so batch adjudication callers (the
/// predictive backend's `predictive-only` reports) can drive the
/// ladder against vars the HB pipeline never reported.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn validate_race(
    stress: &Program,
    var: VarId,
    directed: Option<&DirectedSpec>,
    guided: Option<&DirectedSpec>,
    cfg: &ReplayConfig,
) -> Result<RaceValidation, SimError> {
    let (hit, runs) = search_witness(stress, var, directed, guided, cfg)?;
    let Some((schedule, crashes, method, _seed)) = hit else {
        return Ok(RaceValidation {
            var,
            method: None,
            crashes: false,
            runs_to_witness: runs,
            total_runs: runs,
            witness: None,
            full_len: 0,
            replay_verified: false,
        });
    };

    let full_len = schedule.len();
    let mut total_runs = runs;
    let witness = if cfg.minimize {
        let (minimized, probe_runs) = crate::minimize::minimize_witness(stress, &schedule, var)?;
        total_runs += probe_runs;
        minimized
    } else {
        schedule
    };

    // Replay verification: the shipped script must reproduce the
    // violation deterministically.
    total_runs += 1;
    let replayed = run(
        stress,
        &stress_config(
            SchedulePolicy::Script(witness.clone()),
            witness.tail_seed,
            false,
        ),
    )?;
    let replay_verified = npe_on(&replayed, var).is_some();

    Ok(RaceValidation {
        var,
        method: Some(method),
        crashes,
        runs_to_witness: runs,
        total_runs,
        witness: Some(witness),
        full_len,
        replay_verified,
    })
}
