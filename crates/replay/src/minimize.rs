//! Witness minimization: delta-debug a recorded schedule script down
//! to a minimal crashing prefix.
//!
//! A full recorded witness pins every decision of the run — tens of
//! thousands of choices for the larger catalog apps — but almost all
//! of them are irrelevant filler. Under the prefix semantics of
//! [`Schedule`] (pinned decisions first, seeded random tail after),
//! the interesting quantity is the shortest prefix that still forces
//! the violation with the same tail seed. The probe is a standard
//! boundary bisection: crash behavior need not be monotone in the
//! prefix length (the random tail realigns at every cut), so the
//! result is a *verified local* minimum — every returned schedule is
//! re-checked to crash — rather than a global one, the usual
//! delta-debugging guarantee.

use cafa_sim::{run, Program, Schedule, SchedulePolicy, SimError};
use cafa_trace::VarId;

use crate::driver::{npe_on, stress_config};

/// Shrinks `witness` to a prefix that still fires the violation on
/// `var`, returning the prefix and the number of probe runs spent.
/// The returned schedule always crash-verifies; in the worst case it
/// is the full input script.
///
/// # Errors
///
/// Propagates simulator failures from probe runs.
pub fn minimize_witness(
    stress: &Program,
    witness: &Schedule,
    var: VarId,
) -> Result<(Schedule, u64), SimError> {
    let mut runs = 0u64;
    let fires = |len: usize, runs: &mut u64| -> Result<bool, SimError> {
        *runs += 1;
        let outcome = run(
            stress,
            &stress_config(
                SchedulePolicy::Script(witness.prefix(len)),
                witness.tail_seed,
                false,
            ),
        )?;
        Ok(npe_on(&outcome, var).is_some())
    };

    // Bisect for the shortest crashing prefix. The invariant "`hi`
    // crashes" holds throughout: `hi` starts at the full (witnessing)
    // script and only ever moves to a length that just probed crashing.
    let mut lo = 0usize;
    let mut hi = witness.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fires(mid, &mut runs)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok((witness.prefix(hi), runs))
}
