//! Batch adjudication of predictive-only reports.
//!
//! The predictive backend (`cafa-predict`) is deliberately unsound in
//! isolation: it weakens the observed-trace happens-before relation,
//! so every report it makes *beyond* the HB backend's is a claim about
//! an execution nobody observed. This module is the judge the design
//! defers that soundness to: each `predictive-only` report is pushed
//! through the same directed → guided → random search ladder as
//! [`validate_app`](crate::validate::validate_app) uses, and lands as
//! either a **replay-confirmed witness** (the reordering is feasible
//! and fires the violation) or a **counted false positive** (the
//! search budget exhausted without a witness — often because directed
//! synthesis already proved the flip infeasible, e.g. a FIFO ordering
//! the simulator can never invert).
//!
//! Unlike `validate_app`, the caller supplies the variables to judge —
//! the detector already classified the reports — so no second analysis
//! runs; the pipeline is record-full-coverage → synthesize per var →
//! search ladder against the stress variant.

use cafa_apps::AppSpec;
use cafa_core::{AnalysisSession, PassStats};
use cafa_hb::CausalityConfig;
use cafa_trace::VarId;

use crate::driver::{validate_race, RaceValidation, ReplayConfig};
use crate::synth::{synthesize, synthesize_guided, Infeasible};
use crate::ReplayError;

/// The adjudicated fate of one predictive-only report.
#[derive(Clone, Debug)]
pub struct Adjudication {
    /// The raced variable.
    pub var: VarId,
    /// The full search outcome (witness, method, run counts).
    pub validation: RaceValidation,
    /// `Some` when directed synthesis proved the flip infeasible — the
    /// strongest false-positive evidence (the guided/random rungs still
    /// ran, as a safety net against synthesis being wrong).
    pub infeasible: Option<Infeasible>,
}

impl Adjudication {
    /// True when the report was confirmed: a witness schedule was
    /// found *and* replaying it reproduced the violation.
    pub fn confirmed(&self) -> bool {
        self.validation.confirmed() && self.validation.replay_verified
    }
}

/// The adjudication outcome for one app's predictive-only reports.
#[derive(Debug)]
pub struct AppAdjudication {
    /// Application name from the spec.
    pub app: String,
    /// One entry per judged variable, input order.
    pub reports: Vec<Adjudication>,
    /// Wall-clock accounting per pipeline pass.
    pub stats: PassStats,
}

impl AppAdjudication {
    /// Reports confirmed with a replay-verified witness.
    pub fn confirmed(&self) -> usize {
        self.reports.iter().filter(|r| r.confirmed()).count()
    }

    /// Reports the ladder could not confirm: counted false positives.
    pub fn false_positives(&self) -> usize {
        self.reports.len() - self.confirmed()
    }

    /// Total stress runs across all reports.
    pub fn total_runs(&self) -> u64 {
        self.reports.iter().map(|r| r.validation.total_runs).sum()
    }
}

/// Adjudicates `vars` — an app's `predictive-only` reports — through
/// the directed → guided → random ladder against the app's stress
/// variant. Deterministic: recording, synthesis, and the ladder's
/// seed plan are all seed-stable.
///
/// # Errors
///
/// Propagates simulator and happens-before failures; the bundled
/// catalog and generated corpus run clean.
pub fn adjudicate_races(
    app: &AppSpec,
    vars: &[VarId],
    cfg: &ReplayConfig,
) -> Result<AppAdjudication, ReplayError> {
    let mut stats = PassStats::default();

    // The trace + HB model synthesis works on: the reference program
    // under full coverage, for the same reasons as `validate_app` —
    // the benign order executes every racing use, and platform
    // causality invisible to the detector still constrains real
    // schedules.
    let synth_rec = stats.run("synth-record", || (app.record_full_coverage(0), 1))?;
    let synth_trace = synth_rec
        .trace
        .expect("full instrumentation records a trace");
    let synth_session = AnalysisSession::new(&synth_trace);
    let model = stats.run("synth-model", || {
        (synth_session.model(CausalityConfig::cafa()), 1)
    })?;
    let ops = synth_session.ops();

    let mut reports = Vec::with_capacity(vars.len());
    for &var in vars {
        let directed = stats.run_accumulating("synthesize", || {
            (synthesize(&synth_trace, &model, ops, var), 1)
        });
        let (directed, infeasible) = match directed {
            Ok(spec) => (Some(spec), None),
            Err(why) => (None, Some(why)),
        };
        let guided = synthesize_guided(&synth_trace, ops, var);
        let validation = stats.run_accumulating("search", || {
            let v = validate_race(
                &app.stress_program,
                var,
                directed.as_ref(),
                guided.as_ref(),
                cfg,
            );
            let n = v.as_ref().map_or(0, |v| v.total_runs as usize);
            (v, n)
        })?;
        reports.push(Adjudication {
            var,
            validation,
            infeasible,
        });
    }

    Ok(AppAdjudication {
        app: app.name.clone(),
        reports,
        stats,
    })
}
