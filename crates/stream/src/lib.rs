//! Streaming trace ingestion and incremental online analysis.
//!
//! The batch pipeline — `read_binary`/`read_text`, then
//! [`HbModel::build`](cafa_hb::HbModel::build), then
//! [`Analyzer::analyze`](cafa_core::Analyzer) — needs the whole trace
//! in memory before any work starts. This crate runs the same analysis
//! *online*, over a trace that is still arriving:
//!
//! * [`StreamDecoder`](cafa_trace::StreamDecoder) (from `cafa-trace`)
//!   turns arbitrary byte chunks of either wire format into decode
//!   milestones;
//! * [`IncrementalHb`](cafa_hb::IncrementalHb) (from `cafa-hb`) keeps
//!   a suffix-extending happens-before graph in step with the decoded
//!   records, with memoized fixpoint state so each extension pays only
//!   for the appended suffix;
//! * [`IncrementalSession`] (here) wires the two together, bounds the
//!   un-derived backlog with a configurable high-water mark
//!   ([`StreamOptions::high_water`]), and — optionally — watches for
//!   use-free candidates as soon as both endpoints' tasks are closed,
//!   emitting [`ProvisionalRace`]s long before end of stream.
//!
//! The final report is **byte-identical** to the batch analyzer's: at
//! end of stream [`IncrementalSession::finish`] validates the trace,
//! finalizes the incremental model, and runs the unmodified detector
//! against it. Provisional emissions are a strictly separate channel —
//! happens-before only grows as a trace extends, so a pair that looks
//! concurrent mid-stream can still be ordered (or filtered) by the
//! time the trace completes; the final report is the authority.
//!
//! # Examples
//!
//! ```
//! use cafa_stream::{IncrementalSession, StreamOptions};
//! use cafa_trace::{to_binary_vec, DerefKind, ObjId, Pc, TraceBuilder, VarId};
//!
//! let mut b = TraceBuilder::new("demo");
//! let app = b.add_process();
//! let q = b.add_queue(app);
//! let svc = b.add_process();
//! let ipc = b.add_thread(svc, "binder");
//! let user = b.post(ipc, q, "onServiceConnected", 0);
//! let killer = b.external(q, "onDestroy");
//! b.process_event(user);
//! b.obj_read(user, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
//! b.deref(user, ObjId::new(1), Pc::new(0x14), DerefKind::Invoke);
//! b.process_event(killer);
//! b.obj_write(killer, VarId::new(0), None, Pc::new(0x20));
//! let bytes = to_binary_vec(&b.finish().unwrap());
//!
//! let mut session = IncrementalSession::new(StreamOptions::default());
//! for chunk in bytes.chunks(7) {
//!     session.push(chunk).unwrap();
//! }
//! let outcome = session.finish().unwrap();
//! assert_eq!(outcome.report.races.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use cafa_core::{Analyzer, DetectorConfig, RaceReport};
use cafa_engine::{extract_task, AnalysisSession, MemoryOps, PassStats};
use cafa_hb::{HbError, IncrementalHb};
use cafa_trace::{OpRef, Pc, ReadError, StreamDecoder, StreamEvent, TaskId, Trace, VarId};

/// Approximate in-memory cost of one staged (un-derived) sync record:
/// its graph node, adjacency entries, and pairing-table slots. Used to
/// convert [`IncrementalHb::staged_records`] into bytes for the
/// high-water check.
const STAGED_RECORD_COST: usize = 64;

/// Approximate in-memory cost of one decoded trace record held by the
/// growing [`Trace`]: the record itself plus its share of the body
/// vector. Used by [`IncrementalSession::footprint_bytes`].
const TRACE_RECORD_COST: usize = 48;

/// Configuration for an [`IncrementalSession`].
#[derive(Clone, Copy, Debug)]
pub struct StreamOptions {
    /// Detector configuration for the final (authoritative) report.
    pub detector: DetectorConfig,
    /// High-water mark, in bytes, on *staging* state: the decoder's
    /// buffered bytes plus the un-derived record backlog. When a push
    /// would leave staging above this mark, the session extends the
    /// happens-before fixpoint before returning — the caller (and so
    /// the reader feeding it) is paused, and no record is ever
    /// dropped. The decoded trace itself still grows with the stream;
    /// it is the input, not staging.
    pub high_water: usize,
    /// Emit [`ProvisionalRace`]s from the online watcher as tasks
    /// close. Off by default: provisional candidates are concurrency
    /// evidence only (no heuristic filters, and a later suffix can
    /// still order the pair); the final report is the authority.
    pub live: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            detector: DetectorConfig::cafa(),
            high_water: 8 << 20,
            live: false,
        }
    }
}

/// An error from streaming analysis: either the byte stream is not a
/// valid trace, or the happens-before relation over it is inconsistent.
#[derive(Debug)]
pub enum StreamError {
    /// The wire stream failed to decode or validate.
    Read(ReadError),
    /// The happens-before fixpoint failed (cyclic relation).
    Hb(HbError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Read(e) => write!(f, "stream decode: {e}"),
            Self::Hb(e) => write!(f, "incremental analysis: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Read(e) => Some(e),
            Self::Hb(e) => Some(e),
        }
    }
}

impl From<ReadError> for StreamError {
    fn from(e: ReadError) -> Self {
        Self::Read(e)
    }
}

impl From<HbError> for StreamError {
    fn from(e: HbError) -> Self {
        Self::Hb(e)
    }
}

/// A use-free candidate observed mid-stream: both endpoints' tasks are
/// complete and no happens-before path orders them *so far*.
///
/// Provisional by construction — the happens-before relation only
/// grows as the trace extends, so a later suffix can order (retract)
/// this pair, and the end-of-stream detector additionally applies the
/// lockset/if-guard/allocation filters. Compare against
/// [`StreamOutcome::report`] for the authoritative verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvisionalRace {
    /// The racing pointer variable.
    pub var: VarId,
    /// The use endpoint (the pointer read later dereferenced).
    pub use_at: OpRef,
    /// Program counter of the use's read.
    pub use_pc: Pc,
    /// The free endpoint (the null store).
    pub free_at: OpRef,
    /// Program counter of the free.
    pub free_pc: Pc,
}

/// Counters describing how a stream was ingested.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamProgress {
    /// Bytes pushed so far.
    pub bytes: u64,
    /// Chunks pushed so far.
    pub chunks: u64,
    /// Records appended to the trace so far.
    pub records: u64,
    /// Tasks whose bodies are complete.
    pub tasks_sealed: usize,
    /// Fixpoint extensions run so far (including high-water flushes).
    pub derives: u32,
    /// Times the high-water mark forced a derive before more input.
    pub backpressure_flushes: u64,
}

/// The result of a completed streaming analysis.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The fully decoded, validated trace.
    pub trace: Trace,
    /// The authoritative race report — identical to what
    /// [`Analyzer::analyze`](cafa_core::Analyzer::analyze) produces on
    /// [`trace`](StreamOutcome::trace).
    pub report: RaceReport,
    /// Ingestion counters.
    pub progress: StreamProgress,
    /// Wall time and item counts of the streaming passes
    /// (`stream-decode`, `hb-ingest`, `hb-derive`, `watch`),
    /// accumulated across all pushes.
    pub passes: PassStats,
}

/// Online analysis state over a trace that is still arriving.
///
/// Feed byte chunks with [`push`](IncrementalSession::push) in any
/// sizes; the resulting analysis is chunk-invariant. At end of stream,
/// [`finish`](IncrementalSession::finish) produces the same
/// [`RaceReport`] a batch analysis of the completed trace would.
#[derive(Debug)]
pub struct IncrementalSession {
    opts: StreamOptions,
    decoder: StreamDecoder,
    hb: Option<IncrementalHb>,
    progress: StreamProgress,
    passes: PassStats,
    events: Vec<StreamEvent>,
    // Online watcher state (only populated when `opts.live`).
    ops: MemoryOps,
    emitted: HashSet<(VarId, Pc, Pc)>,
}

impl IncrementalSession {
    /// A session ready for the first chunk.
    pub fn new(opts: StreamOptions) -> Self {
        Self {
            opts,
            decoder: StreamDecoder::new(),
            hb: None,
            progress: StreamProgress::default(),
            passes: PassStats::default(),
            events: Vec::new(),
            ops: MemoryOps::default(),
            emitted: HashSet::new(),
        }
    }

    /// The options the session was created with.
    pub fn options(&self) -> &StreamOptions {
        &self.opts
    }

    /// Ingestion counters so far.
    pub fn progress(&self) -> StreamProgress {
        self.progress
    }

    /// Demand query-engine counters (queries answered, rule premises
    /// evaluated, derived edges materialized) accumulated by the live
    /// watcher, if live mode has issued any queries yet.
    pub fn demand_stats(&self) -> Option<cafa_hb::DemandStats> {
        self.hb.as_ref().and_then(|hb| hb.demand_stats())
    }

    /// Current staging footprint in bytes: decoder buffer plus the
    /// un-derived record backlog. [`push`](IncrementalSession::push)
    /// keeps this at or under [`StreamOptions::high_water`] between
    /// calls.
    pub fn staging_bytes(&self) -> usize {
        let staged = self.hb.as_ref().map_or(0, |hb| hb.staged_records());
        self.decoder.buffered_bytes() + staged * STAGED_RECORD_COST
    }

    /// True once the full trace has been received.
    pub fn is_complete(&self) -> bool {
        self.decoder.is_complete()
    }

    /// Modeled resident footprint of the whole session, in bytes: the
    /// decoder's buffer, the decoded trace so far, and the incremental
    /// happens-before state (graph, fixpoint rows, reachability
    /// index). A deterministic accounting estimate — the currency a
    /// multi-tenant server's memory budget and eviction policy are
    /// denominated in — not an allocator measurement.
    pub fn footprint_bytes(&self) -> usize {
        self.decoder.buffered_bytes()
            + self.progress.records as usize * TRACE_RECORD_COST
            + self
                .hb
                .as_ref()
                .map_or(0, cafa_hb::IncrementalHb::footprint_estimate)
    }

    /// Rebuilds a session by replaying the exact byte chunks a
    /// previous session ingested (e.g. from an on-disk journal), then
    /// continues accepting new chunks.
    ///
    /// Because analysis is chunk-invariant and happens-before state is
    /// a pure function of the bytes ingested so far, the restored
    /// session is *equivalent* to the one that was dropped: feeding
    /// both the same suffix produces byte-identical final reports, and
    /// replaying the original chunk boundaries reproduces the progress
    /// counters too. Provisional candidates found during the replay
    /// are discarded (they were already emitted by the original
    /// session); the internal dedup set is retained, so the
    /// continuation does not re-emit them either.
    ///
    /// # Errors
    ///
    /// As for [`push`](IncrementalSession::push) — a journal that
    /// replays with an error was recorded from a malformed stream.
    pub fn restore<'a, I>(opts: StreamOptions, chunks: I) -> Result<Self, StreamError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut session = Self::new(opts);
        for chunk in chunks {
            session.push(chunk)?;
        }
        Ok(session)
    }

    /// Consumes one chunk: decodes it, extends the incremental
    /// happens-before state, and — with [`StreamOptions::live`] — runs
    /// the online watcher over any tasks that completed, returning the
    /// provisional candidates it found.
    ///
    /// If the push leaves the staging footprint above the high-water
    /// mark, the fixpoint backlog is flushed before returning
    /// (backpressure: the caller pauses, nothing is dropped).
    ///
    /// # Errors
    ///
    /// [`StreamError::Read`] as soon as the stream is malformed;
    /// [`StreamError::Hb`] if the happens-before relation over the
    /// received prefix is inconsistent (cyclic).
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<ProvisionalRace>, StreamError> {
        self.progress.bytes += bytes.len() as u64;
        self.progress.chunks += 1;

        let t0 = Instant::now();
        self.events.clear();
        self.decoder.push_into(bytes, &mut self.events)?;
        self.passes
            .accumulate("stream-decode", t0.elapsed(), bytes.len());

        let mut sealed: Vec<TaskId> = Vec::new();
        let t1 = Instant::now();
        let mut ingested = 0usize;
        for i in 0..self.events.len() {
            match self.events[i] {
                StreamEvent::TablesReady => {
                    let trace = self.decoder.trace().expect("tables are ready");
                    self.hb = Some(IncrementalHb::new(trace, self.opts.detector.causality)?);
                }
                StreamEvent::Records { task, count } => {
                    let trace = self.decoder.trace().expect("records imply tables");
                    let hb = self.hb.as_mut().expect("records imply tables");
                    hb.ingest(trace, task);
                    self.progress.records += count as u64;
                    ingested += count;
                }
                StreamEvent::BodyComplete { task } => {
                    let trace = self.decoder.trace().expect("body implies tables");
                    let hb = self.hb.as_mut().expect("body implies tables");
                    hb.seal(trace, task);
                    self.progress.tasks_sealed += 1;
                    sealed.push(task);
                }
                StreamEvent::End => {}
            }
        }
        self.passes.accumulate("hb-ingest", t1.elapsed(), ingested);

        let mut found = Vec::new();
        if self.opts.live && !sealed.is_empty() {
            // Extend the demand query index over the freshly sealed
            // suffix instead of materializing the fixpoint: the
            // watcher's queries settle only the cones they probe, so
            // per-push cost tracks the new tasks, not the trace so
            // far. (A cyclic prefix cannot be detected here — demand
            // answers are computed without a topological order;
            // `finish` still reports the cycle authoritatively.)
            let t2 = Instant::now();
            let demand_synced = self.hb.as_mut().map(|hb| {
                hb.sync_demand();
            });
            self.passes
                .accumulate("hb-demand", t2.elapsed(), sealed.len());
            debug_assert!(demand_synced.is_some(), "sealed tasks imply hb state");
            let t3 = Instant::now();
            for task in sealed {
                self.watch_task(task, &mut found);
            }
            let emitted = found.len();
            self.passes.accumulate("watch", t3.elapsed(), emitted);
        }

        if self.staging_bytes() > self.opts.high_water {
            self.progress.backpressure_flushes += 1;
            self.derive("hb-derive")?;
        }
        Ok(found)
    }

    /// Extends the fixpoint now, folding the run into `passes` under
    /// `pass`.
    fn derive(&mut self, pass: &'static str) -> Result<(), StreamError> {
        let Some(hb) = self.hb.as_mut() else {
            return Ok(());
        };
        if hb.staged_records() == 0 {
            return Ok(());
        }
        let t0 = Instant::now();
        let staged = hb.staged_records();
        hb.derive_now()?;
        self.progress.derives = hb.derive_count();
        self.passes.accumulate(pass, t0.elapsed(), staged);
        Ok(())
    }

    /// Extracts the freshly sealed task's memory operations and pairs
    /// them against everything already watched.
    fn watch_task(&mut self, task: TaskId, found: &mut Vec<ProvisionalRace>) {
        let trace = self.decoder.trace().expect("sealed implies tables");
        let old_uses = self.ops.uses.len();
        let old_frees = self.ops.frees.len();
        extract_task(trace, task, &mut self.ops);

        let hb = self.hb.as_mut().expect("sealed implies tables");
        // New uses pair against every free seen so far (old and new);
        // new frees only against *old* uses, so a pair of two
        // newcomers is examined exactly once.
        for u in &self.ops.uses[old_uses..] {
            let Some(vo) = self.ops.var_ops(u.var) else {
                continue;
            };
            for &fi in &vo.frees {
                let f = self.ops.frees[fi];
                emit(
                    hb,
                    &mut self.emitted,
                    found,
                    u.var,
                    (u.at, u.read_pc),
                    (f.at, f.pc),
                );
            }
        }
        for f in &self.ops.frees[old_frees..] {
            let Some(vo) = self.ops.var_ops(f.var) else {
                continue;
            };
            for &ui in &vo.uses {
                if ui >= old_uses {
                    continue;
                }
                let u = self.ops.uses[ui];
                emit(
                    hb,
                    &mut self.emitted,
                    found,
                    f.var,
                    (u.at, u.read_pc),
                    (f.at, f.pc),
                );
            }
        }
    }

    /// Completes the stream: validates the trace, finalizes the
    /// incremental happens-before model, and runs the (unmodified)
    /// detector against it. The report is identical to a batch
    /// [`Analyzer::analyze`](cafa_core::Analyzer::analyze) of the same
    /// trace.
    ///
    /// # Errors
    ///
    /// [`StreamError::Read`] if the stream ended early or the trace is
    /// structurally invalid; [`StreamError::Hb`] if a happens-before
    /// model cannot be built.
    pub fn finish(self) -> Result<StreamOutcome, StreamError> {
        let IncrementalSession {
            hb,
            decoder,
            opts,
            mut progress,
            passes,
            ..
        } = self;
        let trace = decoder.finish()?;
        let report = {
            let session = AnalysisSession::new(&trace);
            if let Some(hb) = hb {
                // Finalization runs one last fixpoint extension.
                progress.derives = hb.derive_count() + 1;
                let model = hb.into_model(&trace)?;
                session.insert_model(model);
            }
            Analyzer::with_config(opts.detector).analyze_with(&session)?
        };
        Ok(StreamOutcome {
            trace,
            report,
            progress,
            passes,
        })
    }
}

/// Records a provisional candidate if the pair is cross-task, unseen,
/// and unordered under the demand query engine so far. Each direction
/// is one `hb(a, b)` query; the engine settles only the cones those
/// two answers need, so a sealed suffix costs rule work proportional
/// to what the watcher actually probes.
fn emit(
    hb: &mut IncrementalHb,
    emitted: &mut HashSet<(VarId, Pc, Pc)>,
    found: &mut Vec<ProvisionalRace>,
    var: VarId,
    (use_at, use_pc): (OpRef, Pc),
    (free_at, free_pc): (OpRef, Pc),
) {
    if use_at.task == free_at.task {
        return;
    }
    let key = (var, use_pc, free_pc);
    if emitted.contains(&key) {
        return;
    }
    if hb.demand_happens_before(use_at, free_at) || hb.demand_happens_before(free_at, use_at) {
        return;
    }
    emitted.insert(key);
    found.push(ProvisionalRace {
        var,
        use_at,
        use_pc,
        free_at,
        free_pc,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{to_binary_vec, to_text_string, DerefKind, ObjId, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new("stream-racy");
        let app = b.add_process();
        let q = b.add_queue(app);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        b.obj_read(
            connected,
            VarId::new(0),
            Some(ObjId::new(1)),
            Pc::new(0x1010),
        );
        b.deref(connected, ObjId::new(1), Pc::new(0x1014), DerefKind::Invoke);
        b.process_event(destroy);
        b.obj_write(destroy, VarId::new(0), None, Pc::new(0x2010));
        b.finish().unwrap()
    }

    fn stream(
        bytes: &[u8],
        chunk: usize,
        opts: StreamOptions,
    ) -> (StreamOutcome, Vec<ProvisionalRace>) {
        let mut s = IncrementalSession::new(opts);
        let mut live = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            live.extend(s.push(c).expect("valid stream"));
        }
        assert!(s.is_complete());
        (s.finish().expect("valid trace"), live)
    }

    #[test]
    fn streamed_report_matches_batch_for_all_chunkings() {
        let trace = racy_trace();
        let batch = Analyzer::new().analyze(&trace).unwrap();
        for bytes in [to_binary_vec(&trace), to_text_string(&trace).into_bytes()] {
            for chunk in [1, 13, 4096] {
                let (out, _) = stream(&bytes, chunk, StreamOptions::default());
                assert_eq!(out.trace, trace, "chunk {chunk}");
                assert_eq!(out.report.races.len(), batch.races.len());
                assert_eq!(out.report.races, batch.races, "chunk {chunk}");
                assert_eq!(out.report.filtered, batch.filtered);
                assert_eq!(out.report.stats, batch.stats);
            }
        }
    }

    #[test]
    fn live_watcher_sees_the_race_before_finish() {
        let trace = racy_trace();
        let bytes = to_binary_vec(&trace);
        let opts = StreamOptions {
            live: true,
            ..StreamOptions::default()
        };
        let (out, live) = stream(&bytes, 16, opts);
        assert_eq!(live.len(), 1, "one provisional candidate");
        assert_eq!(live[0].var, VarId::new(0));
        assert_eq!(out.report.races.len(), 1);
        assert_eq!(out.report.races[0].use_site.read_pc, live[0].use_pc);
    }

    #[test]
    fn high_water_mark_forces_flushes_without_changing_output() {
        let trace = racy_trace();
        let bytes = to_binary_vec(&trace);
        let tight = StreamOptions {
            high_water: 1,
            ..StreamOptions::default()
        };
        let (out, _) = stream(&bytes, 8, tight);
        assert!(out.progress.backpressure_flushes > 0);
        let batch = Analyzer::new().analyze(&out.trace).unwrap();
        assert_eq!(out.report.races, batch.races);
    }

    #[test]
    fn progress_counters_cover_the_stream() {
        let trace = racy_trace();
        let bytes = to_binary_vec(&trace);
        let (out, _) = stream(&bytes, 32, StreamOptions::default());
        assert_eq!(out.progress.bytes, bytes.len() as u64);
        assert_eq!(out.progress.records as usize, trace.stats().records);
        assert_eq!(out.progress.tasks_sealed, trace.task_count());
    }

    #[test]
    fn malformed_stream_surfaces_read_error() {
        let mut s = IncrementalSession::new(StreamOptions::default());
        let err = match s.push(b"CAFTgarbage-not-a-trace") {
            Err(e) => e,
            Ok(_) => s.finish().expect_err("invalid"),
        };
        assert!(matches!(err, StreamError::Read(_)));
    }
}
