//! Streaming analysis of the catalog apps is byte-identical to batch.
//!
//! The chunk-invariance guarantee: for every catalog trace, pushing
//! the serialized bytes through an [`IncrementalSession`] — at any
//! chunk size, in either wire format, with backpressure flushes
//! forced or not — yields the exact JSON report that batch
//! `cafa analyze` produces. These tests pin that end to end on the
//! real workloads; `ci.sh` repeats the check through the CLI binary.

use cafa_apps::all_apps;
use cafa_core::json::render_json;
use cafa_core::{Analyzer, DetectorConfig};
use cafa_stream::{IncrementalSession, StreamOptions};
use cafa_trace::{to_binary_vec, to_text_string, Trace};

/// Streams `bytes` at `chunk` and renders the final JSON report.
fn streamed_json(bytes: &[u8], chunk: usize, opts: StreamOptions) -> String {
    let mut session = IncrementalSession::new(opts);
    for c in bytes.chunks(chunk) {
        session.push(c).expect("valid stream");
    }
    let out = session.finish().expect("valid trace");
    render_json(&out.report, &out.trace)
}

/// The batch reference: direct analysis of the in-memory trace.
fn batch_json(trace: &Trace) -> String {
    let report = Analyzer::new().analyze(trace).expect("analysis succeeds");
    render_json(&report, trace)
}

/// Batch analysis at an explicit worker count.
fn batch_json_threads(trace: &Trace, threads: usize) -> String {
    let config = DetectorConfig {
        threads,
        ..DetectorConfig::cafa()
    };
    let report = Analyzer::with_config(config)
        .analyze(trace)
        .expect("analysis succeeds");
    render_json(&report, trace)
}

/// Every catalog app: the single-worker batch report is the reference;
/// a multi-worker batch run and a streamed run (whose incremental model
/// took a different build path *and* runs its oracle at yet another
/// worker count) must be byte-identical to it.
#[test]
fn all_apps_stream_identical_to_batch_at_any_thread_count() {
    for app in all_apps() {
        let outcome = app.record(0).expect("workload records cleanly");
        let trace = outcome.trace.expect("instrumentation is on");
        let expected = batch_json_threads(&trace, 1);
        assert_eq!(
            batch_json_threads(&trace, 2),
            expected,
            "app {} at 2 workers",
            app.name
        );
        let mut opts = StreamOptions::default();
        opts.detector.threads = 8;
        let streamed = streamed_json(&to_binary_vec(&trace), 4096, opts);
        assert_eq!(streamed, expected, "app {} streamed", app.name);
    }
}

/// The full matrix — both formats, chunk sizes down to a single byte,
/// and a tiny high-water mark forcing backpressure flushes — on two
/// apps, to bound debug-mode runtime.
#[test]
fn chunk_size_and_format_never_change_the_report() {
    for app in all_apps().into_iter().take(2) {
        let outcome = app.record(0).expect("workload records cleanly");
        let trace = outcome.trace.expect("instrumentation is on");
        let expected = batch_json(&trace);
        let encodings = [to_binary_vec(&trace), to_text_string(&trace).into_bytes()];
        for bytes in &encodings {
            for chunk in [1usize, 13, 4096] {
                let streamed = streamed_json(bytes, chunk, StreamOptions::default());
                assert_eq!(streamed, expected, "app {} chunk {chunk}", app.name);
            }
        }
        let tiny_hwm = StreamOptions {
            high_water: 4096,
            ..StreamOptions::default()
        };
        let streamed = streamed_json(&encodings[0], 1024, tiny_hwm);
        assert_eq!(streamed, expected, "app {} with backpressure", app.name);
    }
}

/// Dropping a session mid-trace and rebuilding it with
/// [`IncrementalSession::restore`] from the exact chunks it had
/// ingested yields an equivalent session: pushing the same suffix
/// produces a byte-identical final report, and the progress counters
/// resume where the original left off.
#[test]
fn restore_replays_to_an_equivalent_session() {
    for app in all_apps().into_iter().take(3) {
        let outcome = app.record(0).expect("workload records cleanly");
        let trace = outcome.trace.expect("instrumentation is on");
        let expected = batch_json(&trace);
        let bytes = to_binary_vec(&trace);
        let cut = bytes.len() / 2;
        let prefix: Vec<&[u8]> = bytes[..cut].chunks(700).collect();
        let mut session = IncrementalSession::restore(StreamOptions::default(), prefix)
            .expect("journal replays cleanly");
        assert_eq!(session.progress().bytes, cut as u64, "app {}", app.name);
        for c in bytes[cut..].chunks(700) {
            session.push(c).expect("valid suffix");
        }
        let out = session.finish().expect("valid trace");
        assert_eq!(
            render_json(&out.report, &out.trace),
            expected,
            "app {} restored at byte {cut}",
            app.name
        );
    }
}

/// Live provisional reporting never perturbs the authoritative report.
#[test]
fn live_mode_keeps_the_final_report_identical() {
    let app = &all_apps()[0];
    let outcome = app.record(0).expect("workload records cleanly");
    let trace = outcome.trace.expect("instrumentation is on");
    let expected = batch_json(&trace);
    let live = StreamOptions {
        live: true,
        ..StreamOptions::default()
    };
    let streamed = streamed_json(&to_binary_vec(&trace), 2048, live);
    assert_eq!(streamed, expected);
}
