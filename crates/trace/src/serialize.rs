//! Line-oriented text serialization of traces.
//!
//! The format is a stable, human-inspectable rendering of the logger
//! device stream of §5.1. A trace file looks like:
//!
//! ```text
//! cafa-trace v1
//! meta app "MyTracks" seed 42 virtual_ms 30000
//! processes 2
//! name n0 "main"
//! queue q0 p0
//! listener l0 n3
//! task t0 thread p0 - n0
//! task t1 event q0 seq 0 delay 0 ext 0 n1
//! body t0 2
//! send t1 q0 0
//! rd v3
//! end
//! ```
//!
//! Use [`write_text`] / [`read_text`]; reading re-validates the trace.

use std::io::{self, BufRead, Write};

use crate::error::{ReadError, TraceError};
use crate::ids::{
    ListenerId, MonitorId, NameId, ObjId, OpRef, Pc, ProcessId, QueueId, TaskId, TxnId, VarId,
};
use crate::interner::Interner;
use crate::record::{BranchKind, DerefKind, Record};
use crate::task::{EventOrigin, ListenerInfo, QueueInfo, TaskInfo, TaskKind};
use crate::trace::{Trace, TraceMeta};
use crate::validate::validate;

/// Current text format version.
pub const TEXT_VERSION: u32 = 1;

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_text<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    writeln!(out, "cafa-trace v{TEXT_VERSION}")?;
    writeln!(
        out,
        "meta app {} seed {} virtual_ms {}",
        quote(&trace.meta.app),
        trace.meta.seed,
        trace.meta.virtual_ms
    )?;
    writeln!(out, "processes {}", trace.process_count)?;
    for (id, s) in trace.names.iter() {
        writeln!(out, "name {id} {}", quote(s))?;
    }
    for (id, q) in trace.queues() {
        match q.process {
            Some(p) => writeln!(out, "queue {id} {p}")?,
            None => writeln!(out, "queue {id} -")?,
        }
    }
    for (i, l) in trace.listeners.iter().enumerate() {
        writeln!(out, "listener {} {}", ListenerId::from_usize(i), l.package)?;
    }
    for t in trace.tasks() {
        match t.kind {
            TaskKind::Thread { process, forked_at } => {
                write!(out, "task {} thread {} ", t.id, process)?;
                match forked_at {
                    Some(at) => write!(out, "{}:{}", at.task, at.index)?,
                    None => write!(out, "-")?,
                }
                writeln!(out, " {}", t.name)?;
            }
            TaskKind::Event {
                queue,
                seq,
                origin,
                delay_ms,
            } => {
                write!(
                    out,
                    "task {} event {} seq {} delay {} ",
                    t.id, queue, seq, delay_ms
                )?;
                match origin {
                    EventOrigin::Sent { send } => write!(out, "sent {}:{}", send.task, send.index)?,
                    EventOrigin::SentAtFront { send } => {
                        write!(out, "front {}:{}", send.task, send.index)?
                    }
                    EventOrigin::External { sequence } => write!(out, "ext {sequence}")?,
                }
                writeln!(out, " {}", t.name)?;
            }
        }
    }
    for t in trace.tasks() {
        let body = trace.body(t.id);
        writeln!(out, "body {} {}", t.id, body.len())?;
        for r in body {
            write_record(r, &mut out)?;
        }
    }
    writeln!(out, "end")?;
    Ok(())
}

fn write_record<W: Write>(r: &Record, out: &mut W) -> io::Result<()> {
    let tag = r.kind_tag();
    match *r {
        Record::Fork { child } | Record::Join { child } => writeln!(out, "{tag} {child}"),
        Record::Wait { monitor, gen }
        | Record::Notify { monitor, gen }
        | Record::Lock { monitor, gen }
        | Record::Unlock { monitor, gen } => writeln!(out, "{tag} {monitor} {gen}"),
        Record::Send {
            event,
            queue,
            delay_ms,
        } => writeln!(out, "{tag} {event} {queue} {delay_ms}"),
        Record::SendAtFront { event, queue } => writeln!(out, "{tag} {event} {queue}"),
        Record::Register { listener } | Record::Perform { listener } => {
            writeln!(out, "{tag} {listener}")
        }
        Record::RpcCall { txn }
        | Record::RpcHandle { txn }
        | Record::RpcReply { txn }
        | Record::RpcReceive { txn } => writeln!(out, "{tag} {txn}"),
        Record::Read { var } | Record::Write { var } => writeln!(out, "{tag} {var}"),
        Record::ObjRead { var, obj, pc } => match obj {
            Some(o) => writeln!(out, "{tag} {var} {o} @{:x}", pc.addr()),
            None => writeln!(out, "{tag} {var} - @{:x}", pc.addr()),
        },
        Record::ObjWrite { var, value, pc } => match value {
            Some(o) => writeln!(out, "{tag} {var} {o} @{:x}", pc.addr()),
            None => writeln!(out, "{tag} {var} - @{:x}", pc.addr()),
        },
        Record::Deref { obj, pc, kind } => {
            let k = match kind {
                DerefKind::Field => "field",
                DerefKind::Invoke => "invoke",
            };
            writeln!(out, "{tag} {obj} @{:x} {k}", pc.addr())
        }
        Record::Guard {
            kind,
            pc,
            target,
            obj,
        } => writeln!(
            out,
            "{tag} {} @{:x} ->{:x} {obj}",
            kind.mnemonic(),
            pc.addr(),
            target.addr()
        ),
        Record::MethodEnter { pc, name } => writeln!(out, "{tag} @{:x} {name}", pc.addr()),
        Record::MethodExit { pc, exceptional } => {
            writeln!(
                out,
                "{tag} @{:x} {}",
                pc.addr(),
                if exceptional { "throw" } else { "ret" }
            )
        }
    }
}

/// Renders a trace to a `String` in the text format.
pub fn to_text_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_text(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("text format is UTF-8")
}

/// Reads a trace in the text format, validating it.
///
/// # Errors
///
/// Returns [`ReadError::Parse`] for malformed input,
/// [`ReadError::UnsupportedVersion`] for unknown versions, and
/// [`ReadError::Invalid`] if the parsed trace fails
/// [`validate`](crate::validate::validate()).
pub fn read_text<R: BufRead>(input: R) -> Result<Trace, ReadError> {
    let mut p = Parser::new(input)?;
    let trace = p.parse()?;
    validate(&trace)?;
    Ok(trace)
}

/// Parses a trace from a string in the text format.
///
/// # Errors
///
/// Same conditions as [`read_text`].
pub fn from_text_str(s: &str) -> Result<Trace, ReadError> {
    read_text(s.as_bytes())
}

// ---- string quoting ----------------------------------------------------

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(tok: &str, line: u64) -> Result<String, ReadError> {
    let inner = tok
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| ReadError::parse(line, format!("expected quoted string, got `{tok}`")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                other => {
                    return Err(ReadError::parse(
                        line,
                        format!(
                            "bad escape `\\{}`",
                            other.map(String::from).unwrap_or_default()
                        ),
                    ))
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

// ---- parser -------------------------------------------------------------

struct Parser<R> {
    input: R,
    line_no: u64,
    line: String,
}

impl<R: BufRead> Parser<R> {
    fn new(input: R) -> Result<Self, ReadError> {
        Ok(Self {
            input,
            line_no: 0,
            line: String::new(),
        })
    }

    fn next_line(&mut self) -> Result<Option<&str>, ReadError> {
        loop {
            self.line.clear();
            let n = self.input.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim_end();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            // Reborrow trimmed content.
            let end = trimmed.len();
            self.line.truncate(end);
            return Ok(Some(self.line.as_str()));
        }
    }

    fn parse(&mut self) -> Result<Trace, ReadError> {
        let mut asm = TextAssembler::new();
        while !asm.is_done() {
            let Some(line) = self.next_line()? else { break };
            let line = line.to_owned();
            asm.feed(&line, self.line_no)?;
        }
        let line_no = self.line_no;
        asm.finish(line_no)
    }
}

/// What one fed line contributed, as reported by [`TextAssembler::feed`].
///
/// The streaming decoder turns these into incremental-analysis events;
/// the batch parser ignores them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TextStep {
    /// A header or table directive (meta/processes/name/queue/listener/task).
    Table,
    /// A `body` directive opened `task`'s body (`done` for empty bodies).
    BodyStart { task: TaskId, done: bool },
    /// A record line was appended to `task`'s body; `done` marks the last.
    Record { task: TaskId, done: bool },
    /// The final `end` directive; the trace is complete.
    End,
}

/// Incremental text-trace assembler, fed one logical line at a time.
///
/// Both [`read_text`] and the streaming decoder drive this state machine,
/// so streamed parses accept exactly the language batch parses do. Lines
/// must already be trimmed of trailing whitespace, with blank and `#`
/// comment lines filtered out by the caller.
///
/// The streaming decoder additionally calls [`seal_tables`] at the first
/// `body` directive, which finalizes the name/queue/task tables into a
/// live [`Trace`] whose bodies then grow in place; after sealing, further
/// table directives are rejected (the on-disk writer never produces
/// them). The batch parser never seals, so [`read_text`] keeps accepting
/// tables in any pre-`end` position.
///
/// [`seal_tables`]: TextAssembler::seal_tables
#[derive(Debug)]
pub(crate) struct TextAssembler {
    header_seen: bool,
    done: bool,
    /// Task currently receiving record lines, and how many remain.
    body: Option<(TaskId, usize)>,
    meta: TraceMeta,
    names: Vec<(u32, String)>,
    queues: Vec<QueueInfo>,
    listeners: Vec<ListenerInfo>,
    tasks: Vec<TaskInfo>,
    bodies: Vec<Vec<Record>>,
    process_count: u32,
    external: Vec<(u32, TaskId)>,
    /// The live trace, once sealed (streaming mode only).
    trace: Option<Trace>,
}

impl TextAssembler {
    pub(crate) fn new() -> Self {
        Self {
            header_seen: false,
            done: false,
            body: None,
            meta: TraceMeta::default(),
            names: Vec::new(),
            queues: Vec::new(),
            listeners: Vec::new(),
            tasks: Vec::new(),
            bodies: Vec::new(),
            process_count: 0,
            external: Vec::new(),
            trace: None,
        }
    }

    /// True once the `end` directive has been consumed.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// The live trace, available once [`seal_tables`] has run.
    ///
    /// [`seal_tables`]: TextAssembler::seal_tables
    pub(crate) fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Finalizes the staged tables into a live [`Trace`] whose bodies are
    /// filled in place by subsequent record lines.
    pub(crate) fn seal_tables(&mut self) -> Result<(), ReadError> {
        let mut interner = Interner::new();
        let mut names = std::mem::take(&mut self.names);
        names.sort_by_key(|(id, _)| *id);
        for (i, (id, s)) in names.iter().enumerate() {
            if *id as usize != i {
                return Err(ReadError::parse(0, "name ids must be dense"));
            }
            let got = interner.intern(s);
            if got.as_u32() != *id {
                return Err(ReadError::parse(0, "duplicate name string"));
            }
        }
        let mut external = std::mem::take(&mut self.external);
        external.sort_by_key(|(seq, _)| *seq);
        let external_order: Vec<TaskId> = external.into_iter().map(|(_, t)| t).collect();
        self.trace = Some(Trace {
            meta: std::mem::take(&mut self.meta),
            names: interner,
            tasks: std::mem::take(&mut self.tasks),
            bodies: std::mem::take(&mut self.bodies),
            queues: std::mem::take(&mut self.queues),
            listeners: std::mem::take(&mut self.listeners),
            external_order,
            process_count: self.process_count,
        });
        Ok(())
    }

    /// The body table being filled (live trace when sealed, staged
    /// otherwise).
    fn bodies_mut(&mut self) -> &mut Vec<Vec<Record>> {
        match &mut self.trace {
            Some(t) => &mut t.bodies,
            None => &mut self.bodies,
        }
    }

    /// Consumes one logical line.
    pub(crate) fn feed(&mut self, line: &str, line_no: u64) -> Result<TextStep, ReadError> {
        let err = |msg: String| ReadError::parse(line_no, msg);
        if self.done {
            return Err(err("data after `end`".to_owned()));
        }
        if !self.header_seen {
            let version = line
                .strip_prefix("cafa-trace v")
                .and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| err("missing `cafa-trace vN` header".to_owned()))?;
            if version != TEXT_VERSION {
                return Err(ReadError::UnsupportedVersion { found: version });
            }
            self.header_seen = true;
            return Ok(TextStep::Table);
        }
        if let Some((task, remaining)) = self.body {
            let rec = parse_record(line, line_no)?;
            self.bodies_mut()[task.index()].push(rec);
            let remaining = remaining - 1;
            if remaining == 0 {
                self.body = None;
                return Ok(TextStep::Record { task, done: true });
            }
            self.body = Some((task, remaining));
            return Ok(TextStep::Record { task, done: false });
        }
        let mut tok = Tokens::new(line, line_no);
        let dir = tok.word()?;
        if self.trace.is_some() && dir != "body" && dir != "end" {
            return Err(err(format!(
                "table directive `{dir}` after first body is not supported in streamed traces"
            )));
        }
        match dir {
            "end" => {
                self.done = true;
                return Ok(TextStep::End);
            }
            "meta" => {
                tok.expect("app")?;
                self.meta.app = unquote(tok.word()?, line_no)?;
                tok.expect("seed")?;
                self.meta.seed = tok.u64()?;
                tok.expect("virtual_ms")?;
                self.meta.virtual_ms = tok.u64()?;
            }
            "processes" => self.process_count = tok.u64()? as u32,
            "name" => {
                let id = tok.id('n')?;
                let s = unquote(tok.rest(), line_no)?;
                self.names.push((id, s));
            }
            "queue" => {
                let id = tok.id('q')? as usize;
                let w = tok.word()?;
                let process = if w == "-" {
                    None
                } else {
                    Some(ProcessId::new(parse_id(w, 'p', line_no)?))
                };
                if id != self.queues.len() {
                    return Err(err("queue ids must be dense and in order".to_owned()));
                }
                self.queues.push(QueueInfo {
                    process,
                    events: Vec::new(),
                });
            }
            "listener" => {
                let id = tok.id('l')? as usize;
                let package = NameId::new(tok.id('n')?);
                if id != self.listeners.len() {
                    return Err(err("listener ids must be dense and in order".to_owned()));
                }
                self.listeners.push(ListenerInfo { package });
            }
            "task" => {
                let id = TaskId::new(tok.id('t')?);
                if id.index() != self.tasks.len() {
                    return Err(err("task ids must be dense and in order".to_owned()));
                }
                let kind = match tok.word()? {
                    "thread" => {
                        let process = ProcessId::new(tok.id('p')?);
                        let w = tok.word()?;
                        let forked_at = if w == "-" {
                            None
                        } else {
                            Some(parse_opref(w, line_no)?)
                        };
                        TaskKind::Thread { process, forked_at }
                    }
                    "event" => {
                        let queue = QueueId::new(tok.id('q')?);
                        tok.expect("seq")?;
                        let seq = tok.u64()? as u32;
                        tok.expect("delay")?;
                        let delay_ms = tok.u64()?;
                        let origin = match tok.word()? {
                            "sent" => EventOrigin::Sent {
                                send: parse_opref(tok.word()?, line_no)?,
                            },
                            "front" => EventOrigin::SentAtFront {
                                send: parse_opref(tok.word()?, line_no)?,
                            },
                            "ext" => {
                                let sequence = tok.u64()? as u32;
                                self.external.push((sequence, id));
                                EventOrigin::External { sequence }
                            }
                            w => return Err(err(format!("unknown origin `{w}`"))),
                        };
                        let q = self
                            .queues
                            .get_mut(queue.index())
                            .ok_or_else(|| ReadError::parse(line_no, "unknown queue"))?;
                        let si = seq as usize;
                        // A valid seq indexes the queue's processing order,
                        // so it can never reach the table-count ceiling; a
                        // corrupt seq would size a huge resize below.
                        if si as u64 >= crate::binary::MAX_TABLE_COUNT {
                            return Err(err("event seq out of range".to_owned()));
                        }
                        if q.events.len() <= si {
                            q.events.resize(si + 1, TaskId::new(u32::MAX));
                        }
                        q.events[si] = id;
                        TaskKind::Event {
                            queue,
                            seq,
                            origin,
                            delay_ms,
                        }
                    }
                    w => return Err(err(format!("unknown task kind `{w}`"))),
                };
                let name = NameId::new(tok.id('n')?);
                self.tasks.push(TaskInfo { id, kind, name });
                self.bodies.push(Vec::new());
            }
            "body" => {
                let task = TaskId::new(tok.id('t')?);
                let len = tok.u64()?;
                if len > crate::binary::MAX_BODY_LEN {
                    return Err(err("implausible body length".to_owned()));
                }
                let len = len as usize;
                let slot = self
                    .bodies_mut()
                    .get_mut(task.index())
                    .ok_or_else(|| ReadError::parse(line_no, "body for unknown task"))?;
                *slot = Vec::with_capacity(len.min(1 << 16));
                if len == 0 {
                    return Ok(TextStep::BodyStart { task, done: true });
                }
                self.body = Some((task, len));
                return Ok(TextStep::BodyStart { task, done: false });
            }
            w => return Err(err(format!("unknown directive `{w}`"))),
        }
        Ok(TextStep::Table)
    }

    /// Finishes assembly, producing the (unvalidated) trace.
    ///
    /// `line_no` is the number of the last line consumed, used for the
    /// truncation error position.
    pub(crate) fn finish(self, line_no: u64) -> Result<Trace, ReadError> {
        if !self.header_seen {
            return Err(ReadError::parse(0, "empty input"));
        }
        if !self.done {
            return Err(if self.body.is_some() {
                ReadError::parse(line_no, "truncated body")
            } else {
                ReadError::parse(line_no, "missing `end` line")
            });
        }
        if let Some(trace) = self.trace {
            return Ok(trace);
        }

        // Rebuild interner preserving ids.
        let mut interner = Interner::new();
        let mut names = self.names;
        names.sort_by_key(|(id, _)| *id);
        for (i, (id, s)) in names.iter().enumerate() {
            if *id as usize != i {
                return Err(ReadError::parse(0, "name ids must be dense"));
            }
            let got = interner.intern(s);
            if got.as_u32() != *id {
                return Err(ReadError::parse(0, "duplicate name string"));
            }
        }

        let mut external = self.external;
        external.sort_by_key(|(seq, _)| *seq);
        let external_order: Vec<TaskId> = external.into_iter().map(|(_, t)| t).collect();

        Ok(Trace {
            meta: self.meta,
            names: interner,
            tasks: self.tasks,
            bodies: self.bodies,
            queues: self.queues,
            listeners: self.listeners,
            external_order,
            process_count: self.process_count,
        })
    }
}

fn parse_id(tok: &str, prefix: char, line: u64) -> Result<u32, ReadError> {
    tok.strip_prefix(prefix)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ReadError::parse(line, format!("expected `{prefix}N`, got `{tok}`")))
}

fn parse_opref(tok: &str, line: u64) -> Result<OpRef, ReadError> {
    let (t, i) = tok
        .split_once(':')
        .ok_or_else(|| ReadError::parse(line, format!("expected `tN:I`, got `{tok}`")))?;
    let task = TaskId::new(parse_id(t, 't', line)?);
    let index = i
        .parse()
        .map_err(|_| ReadError::parse(line, format!("bad op index `{i}`")))?;
    Ok(OpRef { task, index })
}

fn parse_pc(tok: &str, line: u64) -> Result<Pc, ReadError> {
    tok.strip_prefix('@')
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .map(Pc::new)
        .ok_or_else(|| ReadError::parse(line, format!("expected `@hex`, got `{tok}`")))
}

fn parse_record(line: &str, line_no: u64) -> Result<Record, ReadError> {
    let mut tok = Tokens::new(line, line_no);
    let tag = tok.word()?;
    let rec = match tag {
        "fork" => Record::Fork {
            child: TaskId::new(tok.id('t')?),
        },
        "join" => Record::Join {
            child: TaskId::new(tok.id('t')?),
        },
        "wait" => Record::Wait {
            monitor: MonitorId::new(tok.id('m')?),
            gen: tok.u64()? as u32,
        },
        "notify" => Record::Notify {
            monitor: MonitorId::new(tok.id('m')?),
            gen: tok.u64()? as u32,
        },
        "lock" => Record::Lock {
            monitor: MonitorId::new(tok.id('m')?),
            gen: tok.u64()? as u32,
        },
        "unlock" => Record::Unlock {
            monitor: MonitorId::new(tok.id('m')?),
            gen: tok.u64()? as u32,
        },
        "send" => Record::Send {
            event: TaskId::new(tok.id('t')?),
            queue: QueueId::new(tok.id('q')?),
            delay_ms: tok.u64()?,
        },
        "sendfront" => Record::SendAtFront {
            event: TaskId::new(tok.id('t')?),
            queue: QueueId::new(tok.id('q')?),
        },
        "register" => Record::Register {
            listener: ListenerId::new(tok.id('l')?),
        },
        "perform" => Record::Perform {
            listener: ListenerId::new(tok.id('l')?),
        },
        "rpccall" => Record::RpcCall {
            txn: TxnId::new(tok.id('x')?),
        },
        "rpchandle" => Record::RpcHandle {
            txn: TxnId::new(tok.id('x')?),
        },
        "rpcreply" => Record::RpcReply {
            txn: TxnId::new(tok.id('x')?),
        },
        "rpcrecv" => Record::RpcReceive {
            txn: TxnId::new(tok.id('x')?),
        },
        "rd" => Record::Read {
            var: VarId::new(tok.id('v')?),
        },
        "wr" => Record::Write {
            var: VarId::new(tok.id('v')?),
        },
        "oget" => {
            let var = VarId::new(tok.id('v')?);
            let w = tok.word()?;
            let obj = if w == "-" {
                None
            } else {
                Some(ObjId::new(parse_id(w, 'o', line_no)?))
            };
            let pc = parse_pc(tok.word()?, line_no)?;
            Record::ObjRead { var, obj, pc }
        }
        "oput" => {
            let var = VarId::new(tok.id('v')?);
            let w = tok.word()?;
            let value = if w == "-" {
                None
            } else {
                Some(ObjId::new(parse_id(w, 'o', line_no)?))
            };
            let pc = parse_pc(tok.word()?, line_no)?;
            Record::ObjWrite { var, value, pc }
        }
        "deref" => {
            let obj = ObjId::new(tok.id('o')?);
            let pc = parse_pc(tok.word()?, line_no)?;
            let kind = match tok.word()? {
                "field" => DerefKind::Field,
                "invoke" => DerefKind::Invoke,
                w => return Err(ReadError::parse(line_no, format!("bad deref kind `{w}`"))),
            };
            Record::Deref { obj, pc, kind }
        }
        "guard" => {
            let kind = match tok.word()? {
                "if-eqz" => BranchKind::IfEqz,
                "if-nez" => BranchKind::IfNez,
                "if-eq" => BranchKind::IfEq,
                w => return Err(ReadError::parse(line_no, format!("bad branch kind `{w}`"))),
            };
            let pc = parse_pc(tok.word()?, line_no)?;
            let t = tok.word()?;
            let target = t
                .strip_prefix("->")
                .and_then(|t| u32::from_str_radix(t, 16).ok())
                .map(Pc::new)
                .ok_or_else(|| ReadError::parse(line_no, format!("bad target `{t}`")))?;
            let obj = ObjId::new(tok.id('o')?);
            Record::Guard {
                kind,
                pc,
                target,
                obj,
            }
        }
        "enter" => {
            let pc = parse_pc(tok.word()?, line_no)?;
            let name = NameId::new(tok.id('n')?);
            Record::MethodEnter { pc, name }
        }
        "exit" => {
            let pc = parse_pc(tok.word()?, line_no)?;
            let exceptional = match tok.word()? {
                "throw" => true,
                "ret" => false,
                w => return Err(ReadError::parse(line_no, format!("bad exit kind `{w}`"))),
            };
            Record::MethodExit { pc, exceptional }
        }
        w => {
            return Err(ReadError::parse(
                line_no,
                format!("unknown record tag `{w}`"),
            ))
        }
    };
    Ok(rec)
}

struct Tokens<'a> {
    rest: &'a str,
    line: u64,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str, line: u64) -> Self {
        Self {
            rest: s.trim(),
            line,
        }
    }

    fn word(&mut self) -> Result<&'a str, ReadError> {
        if self.rest.is_empty() {
            return Err(ReadError::parse(self.line, "unexpected end of line"));
        }
        // Quoted strings are one token.
        if self.rest.starts_with('"') {
            let mut escaped = false;
            for (i, c) in self.rest.char_indices().skip(1) {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    let (tok, rest) = self.rest.split_at(i + 1);
                    self.rest = rest.trim_start();
                    return Ok(tok);
                }
            }
            return Err(ReadError::parse(self.line, "unterminated string"));
        }
        match self.rest.split_once(char::is_whitespace) {
            Some((tok, rest)) => {
                self.rest = rest.trim_start();
                Ok(tok)
            }
            None => {
                let tok = self.rest;
                self.rest = "";
                Ok(tok)
            }
        }
    }

    fn rest(&self) -> &'a str {
        self.rest
    }

    fn expect(&mut self, kw: &str) -> Result<(), ReadError> {
        let w = self.word()?;
        if w == kw {
            Ok(())
        } else {
            Err(ReadError::parse(
                self.line,
                format!("expected `{kw}`, got `{w}`"),
            ))
        }
    }

    fn u64(&mut self) -> Result<u64, ReadError> {
        let w = self.word()?;
        w.parse()
            .map_err(|_| ReadError::parse(self.line, format!("expected integer, got `{w}`")))
    }

    fn id(&mut self, prefix: char) -> Result<u32, ReadError> {
        let w = self.word()?;
        parse_id(w, prefix, self.line)
    }
}

// The TraceError import is used via the ReadError::Invalid conversion in
// read_text's validation step.
const _: fn(TraceError) -> ReadError = ReadError::from;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("App \"quoted\" name");
        b.set_seed(99);
        b.set_virtual_ms(30_000);
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        let ev = b.post(t, q, "onCreate", 7);
        let fr = b.post_front(t, q, "urgent");
        let ext = b.external(q, "touch");
        b.process_event(fr);
        b.register(fr, l);
        b.process_event(ev);
        b.perform(ev, l);
        b.obj_read(ev, VarId::new(2), Some(ObjId::new(5)), Pc::new(0x40));
        b.deref(ev, ObjId::new(5), Pc::new(0x44), DerefKind::Field);
        b.guard(
            ev,
            BranchKind::IfEqz,
            Pc::new(0x48),
            Pc::new(0x60),
            ObjId::new(5),
        );
        b.process_event(ext);
        b.obj_write(ext, VarId::new(2), None, Pc::new(0x80));
        let w = b.fork(t, p, "worker");
        b.lock(w, MonitorId::new(0), 0);
        b.read(w, VarId::new(3));
        b.unlock(w, MonitorId::new(0), 0);
        b.wait(w, MonitorId::new(1), 1);
        b.notify(t, MonitorId::new(1), 1);
        b.join(t, w);
        let (txn, _) = b.rpc_call(t);
        b.rpc_handle(w, txn);
        b.method_enter(ev, Pc::new(0x100), "Foo.bar");
        b.method_exit(ev, Pc::new(0x100), true);
        b.finish_unchecked()
    }

    #[test]
    fn text_roundtrip_preserves_trace() {
        let trace = sample_trace();
        let text = to_text_string(&trace);
        let back = from_text_str(&text).expect("roundtrip parses");
        assert_eq!(trace, back);
    }

    #[test]
    fn quoting_roundtrip() {
        for s in [
            "plain",
            "has space",
            "quote\"inside",
            "back\\slash",
            "new\nline",
            "",
        ] {
            let q = quote(s);
            assert_eq!(unquote(&q, 0).unwrap(), s);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_text_str("not a trace\n"),
            Err(ReadError::Parse { .. })
        ));
        assert!(matches!(
            from_text_str("cafa-trace v99\nend\n"),
            Err(ReadError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let trace = sample_trace();
        let text = to_text_string(&trace);
        let cut = &text[..text.len() / 2];
        assert!(from_text_str(cut).is_err());
    }

    #[test]
    fn rejects_unknown_tag() {
        let text = "cafa-trace v1\nmeta app \"a\" seed 0 virtual_ms 0\nprocesses 1\n\
                    name n0 \"main\"\ntask t0 thread p0 - n0\nbody t0 1\nbogus v1\nend\n";
        assert!(matches!(from_text_str(text), Err(ReadError::Parse { .. })));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let trace = sample_trace();
        let text = to_text_string(&trace);
        let with_noise: String = text
            .lines()
            .flat_map(|l| [l, ""])
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            .replace("processes", "# a comment\nprocesses");
        let back = from_text_str(&with_noise).expect("noise tolerated");
        assert_eq!(trace, back);
    }
}
