//! Execution-trace model for event-driven (Android-style) programs.
//!
//! This crate defines the trace vocabulary of *"Race Detection for
//! Event-Driven Mobile Applications"* (Yu et al., PLDI 2014): an
//! execution is a set of logically concurrent **tasks** — regular threads
//! and individual **event** executions — each with a body of records in
//! program order. Records cover the synchronization operations of the
//! paper's Figure 3 (`fork`/`join`, `wait`/`notify`, `send`,
//! `sendAtFront`, `register`/`perform`) plus the Dalvik-level records of
//! §5.3 that the race detector consumes (pointer reads/writes,
//! dereferences, guard branches, method frames).
//!
//! The crate is deliberately *passive*: it knows how to represent,
//! build, validate, and (de)serialize traces, but not how to execute
//! programs (see `cafa-sim`) or analyze causality (see `cafa-hb`).
//!
//! # Examples
//!
//! Recording the Figure 1 scenario of the paper (the MyTracks
//! use-after-free) by hand:
//!
//! ```
//! use cafa_trace::{TraceBuilder, VarId, ObjId, Pc, DerefKind};
//!
//! let mut b = TraceBuilder::new("MyTracks");
//! let app = b.add_process();
//! let queue = b.add_queue(app);
//! let svc = b.add_process();
//! let ipc = b.add_thread(svc, "binder");
//!
//! let provider_utils = VarId::new(0);
//!
//! // onResume issues an RPC; the service responds by posting
//! // onServiceConnected; the user later triggers onDestroy.
//! let resume = b.external(queue, "onResume");
//! b.process_event(resume);
//! let (txn, _) = b.rpc_call(resume);
//! b.rpc_handle(ipc, txn);
//! let connected = b.post(ipc, queue, "onServiceConnected", 0);
//! let destroy = b.external(queue, "onDestroy");
//!
//! b.process_event(connected);
//! b.obj_read(connected, provider_utils, Some(ObjId::new(1)), Pc::new(0x10));
//! b.deref(connected, ObjId::new(1), Pc::new(0x14), DerefKind::Invoke);
//!
//! b.process_event(destroy);
//! b.obj_write(destroy, provider_utils, None, Pc::new(0x20)); // the free
//!
//! let trace = b.finish().unwrap();
//! assert_eq!(trace.stats().events, 3);
//! assert_eq!(trace.stats().frees, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod ids;
mod interner;
mod record;
mod task;
mod trace;

pub mod arbitrary;
pub mod binary;
pub mod pretty;
pub mod project;
pub mod serialize;
pub mod stream;
pub mod validate;

pub use builder::TraceBuilder;
pub use error::{ReadError, TraceError};
pub use ids::{
    ListenerId, MonitorId, NameId, ObjId, OpRef, Pc, ProcessId, QueueId, TaskId, TxnId, VarId,
};
pub use interner::Interner;
pub use project::Projection;
pub use record::{BranchKind, DerefKind, Record};
pub use task::{EventOrigin, ListenerInfo, QueueInfo, TaskInfo, TaskKind};
pub use trace::{Trace, TraceMeta, TraceStats};

pub use binary::{from_binary_slice, read_binary, to_binary_vec, write_binary};
pub use serialize::{from_text_str, read_text, to_text_string, write_text};
pub use stream::{StreamDecoder, StreamEvent};
