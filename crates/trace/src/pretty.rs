//! Human-readable rendering of traces.
//!
//! The text serialization (`cafa-trace::serialize`) is for machines; this
//! module renders tasks and records the way you would read them while
//! debugging a race report: resolved names, indented bodies, event
//! origins spelled out.

use std::fmt::Write as _;

use crate::ids::TaskId;
use crate::record::Record;
use crate::task::EventOrigin;
use crate::trace::Trace;

/// Options for [`render`].
#[derive(Clone, Copy, Debug)]
pub struct PrettyOptions {
    /// Cap on records rendered per task (`usize::MAX` for all). The cap
    /// is announced in the output when it truncates.
    pub max_records_per_task: usize,
    /// Skip tasks whose bodies are empty.
    pub skip_empty_tasks: bool,
}

impl Default for PrettyOptions {
    fn default() -> Self {
        Self {
            max_records_per_task: 16,
            skip_empty_tasks: true,
        }
    }
}

/// Renders one record with resolved names.
pub fn render_record(trace: &Trace, record: &Record) -> String {
    match *record {
        Record::Fork { child } => format!("fork -> {} ({})", child, trace.task_name(child)),
        Record::Join { child } => format!("join <- {} ({})", child, trace.task_name(child)),
        Record::Wait { monitor, gen } => format!("wait {monitor} (woken by gen {gen})"),
        Record::Notify { monitor, gen } => format!("notify {monitor} (gen {gen})"),
        Record::Lock { monitor, gen } => format!("lock {monitor} (acq {gen})"),
        Record::Unlock { monitor, gen } => format!("unlock {monitor} (acq {gen})"),
        Record::Send {
            event, delay_ms, ..
        } => format!(
            "send {} ({}) delay {}ms",
            event,
            trace.task_name(event),
            delay_ms
        ),
        Record::SendAtFront { event, .. } => {
            format!("sendAtFront {} ({})", event, trace.task_name(event))
        }
        Record::Register { listener } => format!(
            "register {listener} [{}]",
            trace.names().resolve(trace.listener(listener).package)
        ),
        Record::Perform { listener } => format!(
            "perform {listener} [{}]",
            trace.names().resolve(trace.listener(listener).package)
        ),
        Record::RpcCall { txn } => format!("rpc call {txn}"),
        Record::RpcHandle { txn } => format!("rpc handle {txn}"),
        Record::RpcReply { txn } => format!("rpc reply {txn}"),
        Record::RpcReceive { txn } => format!("rpc receive {txn}"),
        Record::Read { var } => format!("read {var}"),
        Record::Write { var } => format!("write {var}"),
        Record::ObjRead {
            var,
            obj: Some(o),
            pc,
        } => format!("oget {var} -> {o} @{pc}"),
        Record::ObjRead { var, obj: None, pc } => format!("oget {var} -> null @{pc}"),
        Record::ObjWrite {
            var,
            value: Some(o),
            pc,
        } => {
            format!("oput {var} = {o} @{pc} (allocation)")
        }
        Record::ObjWrite {
            var,
            value: None,
            pc,
        } => format!("oput {var} = null @{pc} (FREE)"),
        Record::Deref { obj, pc, kind } => format!("deref {obj} @{pc} ({kind:?})"),
        Record::Guard {
            kind,
            pc,
            target,
            obj,
        } => {
            format!(
                "guard {} @{pc} -> @{target} proves {obj} non-null",
                kind.mnemonic()
            )
        }
        Record::MethodEnter { pc, name } => {
            format!("enter {} @{pc}", trace.names().resolve(name))
        }
        Record::MethodExit { pc, exceptional } => {
            format!(
                "exit @{pc}{}",
                if exceptional { " (exception!)" } else { "" }
            )
        }
    }
}

/// Renders the header line of one task.
pub fn render_task_header(trace: &Trace, task: TaskId) -> String {
    let info = trace.task(task);
    match info.origin() {
        None => format!("{} thread \"{}\"", task, trace.task_name(task)),
        Some(EventOrigin::External { sequence }) => format!(
            "{} event \"{}\" (external #{sequence}, seq {} on {})",
            task,
            trace.task_name(task),
            info.seq().unwrap_or(0),
            info.queue().expect("events have queues"),
        ),
        Some(origin) => format!(
            "{} event \"{}\" ({} from {}, delay {}ms, seq {} on {})",
            task,
            trace.task_name(task),
            if origin.is_front() {
                "sendAtFront"
            } else {
                "sent"
            },
            origin
                .send_site()
                .map(|s| format!("{} ({})", s.task, trace.task_name(s.task)))
                .unwrap_or_default(),
            info.delay_ms().unwrap_or(0),
            info.seq().unwrap_or(0),
            info.queue().expect("events have queues"),
        ),
    }
}

/// Renders a whole trace (or its head, per the options).
pub fn render(trace: &Trace, options: &PrettyOptions) -> String {
    let mut out = String::new();
    let stats = trace.stats();
    let _ = writeln!(
        out,
        "trace \"{}\": {} tasks ({} threads, {} events), {} records, {} virtual ms",
        trace.meta().app,
        stats.tasks,
        stats.threads,
        stats.events,
        stats.records,
        trace.meta().virtual_ms,
    );
    for info in trace.tasks() {
        let body = trace.body(info.id);
        if body.is_empty() && options.skip_empty_tasks {
            continue;
        }
        let _ = writeln!(out, "{}", render_task_header(trace, info.id));
        for (i, r) in body.iter().enumerate() {
            if i >= options.max_records_per_task {
                let _ = writeln!(out, "    ... {} more record(s)", body.len() - i);
                break;
            }
            let _ = writeln!(out, "    [{i}] {}", render_record(trace, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{MonitorId, ObjId, Pc, VarId};
    use crate::record::DerefKind;

    fn sample() -> (Trace, TaskId, TaskId) {
        let mut b = TraceBuilder::new("pretty");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        let ev = b.post(t, q, "onCreate", 3);
        b.process_event(ev);
        b.method_enter(ev, Pc::new(0x1000), "onCreate");
        b.register(ev, l);
        b.obj_read(ev, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x1010));
        b.deref(ev, ObjId::new(1), Pc::new(0x1014), DerefKind::Field);
        b.obj_write(ev, VarId::new(0), None, Pc::new(0x1020));
        b.lock(t, MonitorId::new(0), 1);
        b.unlock(t, MonitorId::new(0), 1);
        b.method_exit(ev, Pc::new(0x1000), true);
        (b.finish().unwrap(), t, ev)
    }

    #[test]
    fn headers_spell_out_origins() {
        let (trace, t, ev) = sample();
        let h = render_task_header(&trace, t);
        assert!(h.contains("thread \"main\""));
        let h = render_task_header(&trace, ev);
        assert!(h.contains("event \"onCreate\""));
        assert!(h.contains("delay 3ms"));
        assert!(h.contains("sent from"));
    }

    #[test]
    fn records_render_with_names() {
        let (trace, _, ev) = sample();
        let body = trace.body(ev);
        let all: Vec<String> = body.iter().map(|r| render_record(&trace, r)).collect();
        assert!(all.iter().any(|s| s.contains("enter onCreate")));
        assert!(all.iter().any(|s| s.contains("android.view")));
        assert!(all.iter().any(|s| s.contains("(FREE)")));
        assert!(all.iter().any(|s| s.contains("exception")));
    }

    #[test]
    fn render_truncates_and_announces() {
        let (trace, ..) = sample();
        let opts = PrettyOptions {
            max_records_per_task: 2,
            skip_empty_tasks: true,
        };
        let text = render(&trace, &opts);
        assert!(text.contains("more record(s)"));
        let full = render(
            &trace,
            &PrettyOptions {
                max_records_per_task: usize::MAX,
                ..opts
            },
        );
        assert!(!full.contains("more record(s)"));
        assert!(full.len() > text.len());
    }

    #[test]
    fn external_header() {
        let mut b = TraceBuilder::new("ext");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "tap");
        b.process_event(e);
        let trace = b.finish().unwrap();
        let h = render_task_header(&trace, e);
        assert!(h.contains("external #0"));
    }
}
