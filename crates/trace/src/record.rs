//! Trace records: the operations of Figure 3 of the paper plus the
//! Dalvik-level records of §5.3.
//!
//! A task body is a sequence of [`Record`]s in program order. `begin(t)`
//! and `end(t)` are *implicit*: a task begins before its first record and
//! ends after its last one, so the happens-before engine addresses them
//! as virtual positions rather than materialized records.

use crate::ids::{ListenerId, MonitorId, NameId, ObjId, Pc, QueueId, TaskId, TxnId, VarId};

/// The kind of pointer-guard branch instruction (§4.3, §5.3).
///
/// The instrumented interpreter logs a guard entry only when the branch
/// outcome proves the tested pointer non-null:
/// * `if-eqz` ("jump if null") — logged when **not taken**;
/// * `if-nez` ("jump if non-null") — logged when **taken**;
/// * `if-eq` against `this` — logged when **taken** (provides the same
///   guarantee as `if-nez`, per §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// `if-eqz`: branch taken when the pointer is null.
    IfEqz,
    /// `if-nez`: branch taken when the pointer is non-null.
    IfNez,
    /// `if-eq` comparing two object pointers (commonly against `this`).
    IfEq,
}

impl BranchKind {
    /// Short mnemonic used by the text serialization.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::IfEqz => "if-eqz",
            BranchKind::IfNez => "if-nez",
            BranchKind::IfEq => "if-eq",
        }
    }
}

/// How a dereference reaches the object (§5.3: "either an access to a
/// field of the object, or a method invocation on the object").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DerefKind {
    /// Field read or write through the pointer.
    Field,
    /// Virtual method invocation on the object.
    Invoke,
}

/// One entry of a task's trace body.
///
/// The first group mirrors Figure 3 (synchronization-relevant
/// operations); the second group mirrors the low-level records §5.3 says
/// the instrumented interpreter emits. All cross-task causality flows
/// through the first group; the second group carries the data the race
/// detector inspects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Record {
    // ---- Figure 3: synchronization operations -------------------------
    /// `fork(t, u)`: this task forks thread `child`.
    Fork {
        /// The newly created thread.
        child: TaskId,
    },
    /// `join(t, u)`: this task blocks until thread `child` ends.
    Join {
        /// The joined thread.
        child: TaskId,
    },
    /// `wait(t, m)`: this task blocks on monitor `monitor` until
    /// notified.
    ///
    /// `gen` is the notification generation that woke this waiter, as
    /// observed by the instrumented runtime; the signal-and-wait rule
    /// pairs it with the [`Record::Notify`] carrying the same
    /// generation.
    Wait {
        /// The monitor waited on.
        monitor: MonitorId,
        /// Notification generation that woke this waiter.
        gen: u32,
    },
    /// `notify(t, m)`: this task wakes waiter(s) of `monitor`.
    ///
    /// Each notify on a monitor increments that monitor's generation
    /// counter; `gen` is the value of this notification.
    Notify {
        /// The monitor notified.
        monitor: MonitorId,
        /// This notification's generation.
        gen: u32,
    },
    /// Monitor acquisition. Used for the lockset mutual-exclusion check —
    /// the CAFA model deliberately derives **no** unlock→lock
    /// happens-before edge (§3.1). `gen` is the monitor's acquisition
    /// sequence number, which lock-ordering baselines (FastTrack-style)
    /// use to reconstruct the runtime acquisition order.
    Lock {
        /// The acquired monitor.
        monitor: MonitorId,
        /// Acquisition sequence number on this monitor.
        gen: u32,
    },
    /// Monitor release, carrying the generation of the matching
    /// [`Record::Lock`].
    Unlock {
        /// The released monitor.
        monitor: MonitorId,
        /// Generation of the acquisition being released.
        gen: u32,
    },
    /// `send(t, e, delay)`: enqueue event `event` at the back of `queue`;
    /// it becomes runnable after `delay_ms` virtual milliseconds.
    Send {
        /// The event being posted.
        event: TaskId,
        /// The destination queue.
        queue: QueueId,
        /// The delay constraint in virtual milliseconds.
        delay_ms: u64,
    },
    /// `sendAtFront(t, e)`: enqueue event `event` at the *front* of
    /// `queue`. Android forbids a delay here (§3.3).
    SendAtFront {
        /// The event being posted.
        event: TaskId,
        /// The destination queue.
        queue: QueueId,
    },
    /// `register(t, l)`: register listener `listener` with the runtime.
    Register {
        /// The registered listener.
        listener: ListenerId,
    },
    /// `perform(t, l)`: invoke listener `listener` as part of this task.
    Perform {
        /// The performed listener.
        listener: ListenerId,
    },
    /// Initiation of a Binder RPC: the caller side (§5.2).
    RpcCall {
        /// The transaction id correlating both sides of the call.
        txn: TxnId,
    },
    /// Service-side receipt of a Binder transaction (§5.2).
    RpcHandle {
        /// The transaction id correlating both sides of the call.
        txn: TxnId,
    },
    /// Service-side completion of a Binder transaction.
    RpcReply {
        /// The transaction id correlating both sides of the call.
        txn: TxnId,
    },
    /// Caller-side receipt of the reply.
    RpcReceive {
        /// The transaction id correlating both sides of the call.
        txn: TxnId,
    },

    // ---- §5.3: Dalvik-level records ------------------------------------
    /// Scalar read of variable `var` (`rd(t, x)` in Figure 3).
    Read {
        /// The accessed variable.
        var: VarId,
    },
    /// Scalar write of variable `var` (`wr(t, x)` in Figure 3).
    Write {
        /// The accessed variable.
        var: VarId,
    },
    /// Pointer read (`i-get-object` and friends): loads the object
    /// currently stored in `var`. `obj` is `None` when the slot is null.
    ObjRead {
        /// The pointer variable read.
        var: VarId,
        /// The object loaded, or `None` for null.
        obj: Option<ObjId>,
        /// Address of the load instruction.
        pc: Pc,
    },
    /// Pointer write (`i-put-object` and friends). A `None` value is a
    /// **free** (§4.1: "a write operation that sets an object pointer to
    /// null"); a `Some` value is an **allocation** to the pointer.
    ObjWrite {
        /// The pointer variable written.
        var: VarId,
        /// The stored object, or `None` for a null store (a free).
        value: Option<ObjId>,
        /// Address of the store instruction.
        pc: Pc,
    },
    /// Dereference of object `obj` (field access or method invocation).
    /// The analyzer matches this against the nearest previous
    /// [`Record::ObjRead`] returning the same object id (§5.3).
    Deref {
        /// The dereferenced object.
        obj: ObjId,
        /// Address of the dereferencing instruction.
        pc: Pc,
        /// Field access or invocation.
        kind: DerefKind,
    },
    /// A pointer-guard branch whose outcome proves `obj` non-null
    /// (§4.3). Emitted only for the guarding outcome, see
    /// [`BranchKind`].
    Guard {
        /// The branch instruction kind.
        kind: BranchKind,
        /// Address of the branch instruction.
        pc: Pc,
        /// Branch target address (`pc + offset`; may be behind `pc` for
        /// backward jumps).
        target: Pc,
        /// The object whose non-nullness the outcome proves.
        obj: ObjId,
    },
    /// Method entry, for calling-context reconstruction (§5.3).
    MethodEnter {
        /// Entry address of the callee.
        pc: Pc,
        /// Interned method name.
        name: NameId,
    },
    /// Method exit (normal return or exceptional unwind).
    MethodExit {
        /// Entry address of the method being left.
        pc: Pc,
        /// True when the method is left by throwing an exception.
        exceptional: bool,
    },
}

impl Record {
    /// Returns true for records that participate in cross-task causality
    /// (the Figure 3 operations), false for the Dalvik-level data records.
    pub fn is_sync(&self) -> bool {
        !matches!(
            self,
            Record::Read { .. }
                | Record::Write { .. }
                | Record::ObjRead { .. }
                | Record::ObjWrite { .. }
                | Record::Deref { .. }
                | Record::Guard { .. }
                | Record::MethodEnter { .. }
                | Record::MethodExit { .. }
        )
    }

    /// Returns true if this record is a memory access in the conventional
    /// data-race sense (scalar or pointer read/write).
    pub fn is_access(&self) -> bool {
        matches!(
            self,
            Record::Read { .. }
                | Record::Write { .. }
                | Record::ObjRead { .. }
                | Record::ObjWrite { .. }
        )
    }

    /// The variable accessed, if this record is a memory access.
    pub fn accessed_var(&self) -> Option<VarId> {
        match *self {
            Record::Read { var }
            | Record::Write { var }
            | Record::ObjRead { var, .. }
            | Record::ObjWrite { var, .. } => Some(var),
            _ => None,
        }
    }

    /// True when this record writes its variable (scalar or pointer).
    pub fn is_write_access(&self) -> bool {
        matches!(self, Record::Write { .. } | Record::ObjWrite { .. })
    }

    /// True when this record is a free: a null store to a pointer
    /// variable (§4.1).
    pub fn is_free(&self) -> bool {
        matches!(self, Record::ObjWrite { value: None, .. })
    }

    /// True when this record is an allocation: a non-null store to a
    /// pointer variable (§4.1).
    pub fn is_allocation(&self) -> bool {
        matches!(self, Record::ObjWrite { value: Some(_), .. })
    }

    /// Short tag identifying the record kind; stable across versions and
    /// used by the text serialization.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            Record::Fork { .. } => "fork",
            Record::Join { .. } => "join",
            Record::Wait { .. } => "wait",
            Record::Notify { .. } => "notify",
            Record::Lock { .. } => "lock",
            Record::Unlock { .. } => "unlock",
            Record::Send { .. } => "send",
            Record::SendAtFront { .. } => "sendfront",
            Record::Register { .. } => "register",
            Record::Perform { .. } => "perform",
            Record::RpcCall { .. } => "rpccall",
            Record::RpcHandle { .. } => "rpchandle",
            Record::RpcReply { .. } => "rpcreply",
            Record::RpcReceive { .. } => "rpcrecv",
            Record::Read { .. } => "rd",
            Record::Write { .. } => "wr",
            Record::ObjRead { .. } => "oget",
            Record::ObjWrite { .. } => "oput",
            Record::Deref { .. } => "deref",
            Record::Guard { .. } => "guard",
            Record::MethodEnter { .. } => "enter",
            Record::MethodExit { .. } => "exit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: u32) -> VarId {
        VarId::new(n)
    }

    #[test]
    fn sync_classification() {
        assert!(Record::Fork {
            child: TaskId::new(1)
        }
        .is_sync());
        assert!(Record::Send {
            event: TaskId::new(2),
            queue: QueueId::new(0),
            delay_ms: 5
        }
        .is_sync());
        assert!(Record::RpcCall { txn: TxnId::new(9) }.is_sync());
        assert!(!Record::Read { var: var(0) }.is_sync());
        assert!(!Record::Deref {
            obj: ObjId::new(0),
            pc: Pc::new(0),
            kind: DerefKind::Field
        }
        .is_sync());
    }

    #[test]
    fn access_classification() {
        let r = Record::ObjRead {
            var: var(3),
            obj: Some(ObjId::new(1)),
            pc: Pc::new(4),
        };
        assert!(r.is_access());
        assert_eq!(r.accessed_var(), Some(var(3)));
        assert!(!r.is_write_access());

        let w = Record::ObjWrite {
            var: var(3),
            value: None,
            pc: Pc::new(8),
        };
        assert!(w.is_write_access());
        assert!(w.is_free());
        assert!(!w.is_allocation());

        let a = Record::ObjWrite {
            var: var(3),
            value: Some(ObjId::new(2)),
            pc: Pc::new(8),
        };
        assert!(a.is_allocation());
        assert!(!a.is_free());

        assert!(!Record::Notify {
            monitor: MonitorId::new(0),
            gen: 0
        }
        .is_access());
        assert_eq!(
            Record::Notify {
                monitor: MonitorId::new(0),
                gen: 0
            }
            .accessed_var(),
            None
        );
    }

    #[test]
    fn kind_tags_are_unique() {
        use std::collections::HashSet;
        let samples = vec![
            Record::Fork {
                child: TaskId::new(0),
            },
            Record::Join {
                child: TaskId::new(0),
            },
            Record::Wait {
                monitor: MonitorId::new(0),
                gen: 0,
            },
            Record::Notify {
                monitor: MonitorId::new(0),
                gen: 0,
            },
            Record::Lock {
                monitor: MonitorId::new(0),
                gen: 0,
            },
            Record::Unlock {
                monitor: MonitorId::new(0),
                gen: 0,
            },
            Record::Send {
                event: TaskId::new(0),
                queue: QueueId::new(0),
                delay_ms: 0,
            },
            Record::SendAtFront {
                event: TaskId::new(0),
                queue: QueueId::new(0),
            },
            Record::Register {
                listener: ListenerId::new(0),
            },
            Record::Perform {
                listener: ListenerId::new(0),
            },
            Record::RpcCall { txn: TxnId::new(0) },
            Record::RpcHandle { txn: TxnId::new(0) },
            Record::RpcReply { txn: TxnId::new(0) },
            Record::RpcReceive { txn: TxnId::new(0) },
            Record::Read { var: var(0) },
            Record::Write { var: var(0) },
            Record::ObjRead {
                var: var(0),
                obj: None,
                pc: Pc::new(0),
            },
            Record::ObjWrite {
                var: var(0),
                value: None,
                pc: Pc::new(0),
            },
            Record::Deref {
                obj: ObjId::new(0),
                pc: Pc::new(0),
                kind: DerefKind::Field,
            },
            Record::Guard {
                kind: BranchKind::IfEqz,
                pc: Pc::new(0),
                target: Pc::new(4),
                obj: ObjId::new(0),
            },
            Record::MethodEnter {
                pc: Pc::new(0),
                name: NameId::new(0),
            },
            Record::MethodExit {
                pc: Pc::new(0),
                exceptional: false,
            },
        ];
        let tags: HashSet<_> = samples.iter().map(|r| r.kind_tag()).collect();
        assert_eq!(tags.len(), samples.len());
    }

    #[test]
    fn branch_mnemonics() {
        assert_eq!(BranchKind::IfEqz.mnemonic(), "if-eqz");
        assert_eq!(BranchKind::IfNez.mnemonic(), "if-nez");
        assert_eq!(BranchKind::IfEq.mnemonic(), "if-eq");
    }
}
