//! Generation of arbitrary *valid* traces from opaque byte tapes.
//!
//! Property-based tests (and fuzzers) need random traces that still
//! satisfy every structural invariant of [`validate`]. This module
//! interprets an arbitrary byte string as a program of builder
//! operations, coercing each operation to something legal in the
//! current state — so any tape yields a well-formed trace, and
//! shrinking the tape shrinks the trace.
//!
//! [`validate`]: crate::validate::validate

use crate::builder::TraceBuilder;
use crate::ids::{MonitorId, ObjId, Pc, TaskId, VarId};
use crate::record::{BranchKind, DerefKind};
use crate::trace::Trace;

/// Cursor over the opcode tape.
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Tape<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> Option<T> {
        if items.is_empty() {
            None
        } else {
            Some(items[self.next() as usize % items.len()])
        }
    }
}

/// Builds a well-formed trace from an arbitrary byte tape.
///
/// The tape drives task creation, event posting/processing, monitor
/// use, RPC pairs, listeners, and data records. All events are
/// processed and all monitors released before finishing, so the result
/// always validates.
///
/// # Examples
///
/// ```
/// let trace = cafa_trace::arbitrary::trace_from_tape(b"any bytes at all");
/// assert!(cafa_trace::validate::validate(&trace).is_ok());
/// ```
pub fn trace_from_tape(bytes: &[u8]) -> Trace {
    let mut tape = Tape { bytes, pos: 0 };
    let mut b = TraceBuilder::new("arbitrary");

    let p0 = b.add_process();
    let q0 = b.add_queue(p0);
    let q1 = b.add_queue(p0); // a HandlerThread-style second looper
    let queues = [q0, q1];
    let t0 = b.add_thread(p0, "main");

    // Live state the interpreter coerces against.
    let mut tasks: Vec<TaskId> = vec![t0]; // tasks that may emit records
    let mut pending: Vec<TaskId> = Vec::new(); // posted, not yet processed
    let mut listeners = Vec::new();
    let mut open_rpcs: Vec<(crate::ids::TxnId, u8)> = Vec::new(); // txn, stage
                                                                  // Held monitors per task: (task, monitor, gen).
    let mut held: Vec<(TaskId, MonitorId, u32)> = Vec::new();
    let mut next_gen = 0u32;
    let mut notify_gen = 0u32;
    let mut ext_count = 0u32;
    let mut thread_count = 0u32;

    while !tape.exhausted() && tasks.len() + pending.len() < 300 {
        let op = tape.next() % 18;
        let Some(actor) = tape.pick(&tasks) else {
            break;
        };
        match op {
            0 => {
                // Fork a thread.
                thread_count += 1;
                let child = b.fork(actor, p0, &format!("worker{thread_count}"));
                tasks.push(child);
            }
            1 => {
                // Post an event (delay from a small set, either queue).
                let delay = [0u64, 0, 1, 5][tape.next() as usize % 4];
                let q = queues[tape.next() as usize % queues.len()];
                let ev = b.post(
                    actor,
                    q,
                    &format!("ev{}", tasks.len() + pending.len()),
                    delay,
                );
                pending.push(ev);
            }
            2 => {
                // Post at front.
                let q = queues[tape.next() as usize % queues.len()];
                let ev = b.post_front(actor, q, &format!("fr{}", tasks.len() + pending.len()));
                pending.push(ev);
            }
            3 => {
                // External event.
                ext_count += 1;
                let q = queues[tape.next() as usize % queues.len()];
                let ev = b.external(q, &format!("ext{ext_count}"));
                pending.push(ev);
            }
            4 => {
                // Process a pending event: it becomes an actor.
                if !pending.is_empty() {
                    let idx = tape.next() as usize % pending.len();
                    let ev = pending.remove(idx);
                    b.process_event(ev);
                    tasks.push(ev);
                }
            }
            5 => {
                // Lock.
                let m = MonitorId::new(u32::from(tape.next() % 3));
                next_gen += 1;
                b.lock(actor, m, next_gen);
                held.push((actor, m, next_gen));
            }
            6 => {
                // Unlock the actor's most recent monitor.
                if let Some(pos) = held.iter().rposition(|&(t, _, _)| t == actor) {
                    let (_, m, gen) = held.remove(pos);
                    b.unlock(actor, m, gen);
                }
            }
            7 => {
                // Notify + a matching wait on another task.
                let m = MonitorId::new(u32::from(tape.next() % 3));
                notify_gen += 1;
                b.notify(actor, m, notify_gen);
                if let Some(waiter) = tape.pick(&tasks) {
                    if waiter != actor {
                        b.wait(waiter, m, notify_gen);
                    }
                }
            }
            8 => {
                // RPC call; later opcodes advance it.
                let (txn, _) = b.rpc_call(actor);
                open_rpcs.push((txn, 0));
            }
            9 => {
                // Advance the oldest open RPC.
                if let Some((txn, stage)) = open_rpcs.first().copied() {
                    match stage {
                        0 => {
                            b.rpc_handle(actor, txn);
                            open_rpcs[0].1 = 1;
                        }
                        1 => {
                            b.rpc_reply(actor, txn);
                            open_rpcs[0].1 = 2;
                        }
                        _ => {
                            b.rpc_receive(actor, txn);
                            open_rpcs.remove(0);
                        }
                    }
                }
            }
            10 => {
                // Register a (possibly new) listener.
                if listeners.len() < 4 && tape.next() % 2 == 0 {
                    listeners.push(b.add_listener("android.view"));
                }
                if let Some(l) = tape.pick(&listeners) {
                    b.register(actor, l);
                }
            }
            11 => {
                // Perform a registered listener.
                if let Some(l) = tape.pick(&listeners) {
                    b.perform(actor, l);
                }
            }
            12 => {
                b.read(actor, VarId::new(u32::from(tape.next() % 8)));
            }
            13 => {
                b.write(actor, VarId::new(u32::from(tape.next() % 8)));
            }
            14 => {
                // Pointer read + dereference (a use).
                let var = VarId::new(u32::from(tape.next() % 8));
                let obj = ObjId::new(u32::from(tape.next() % 6));
                let pc = Pc::new(0x1000 + u32::from(tape.next()) * 4);
                b.obj_read(actor, var, Some(obj), pc);
                b.deref(actor, obj, pc.offset(4), DerefKind::Field);
            }
            15 => {
                // Pointer write: free or allocation.
                let var = VarId::new(u32::from(tape.next() % 8));
                let value = if tape.next() % 2 == 0 {
                    None
                } else {
                    Some(ObjId::new(u32::from(tape.next() % 6)))
                };
                b.obj_write(
                    actor,
                    var,
                    value,
                    Pc::new(0x2000 + u32::from(tape.next()) * 4),
                );
            }
            16 => {
                // A guard branch on a previously read object.
                let obj = ObjId::new(u32::from(tape.next() % 6));
                let pc = Pc::new(0x3000 + u32::from(tape.next()) * 4);
                b.obj_read(actor, VarId::new(u32::from(tape.next() % 8)), Some(obj), pc);
                b.guard(actor, BranchKind::IfEqz, pc.offset(4), pc.offset(0x40), obj);
            }
            _ => {
                // Method frames.
                let pc = Pc::new(0x4000 + u32::from(tape.next()) * 8);
                b.method_enter(actor, pc, "m");
                b.method_exit(actor, pc, tape.next() % 8 == 0);
            }
        }
    }

    // Close out: release held monitors (reverse order per task), drain
    // pending events, and settle open RPCs by dropping them (dangling
    // rpc stages are legal — a trace can end mid-call).
    while let Some((task, m, gen)) = held.pop() {
        b.unlock(task, m, gen);
    }
    for ev in pending {
        b.process_event(ev);
    }

    b.finish().expect("tape interpretation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn empty_tape_is_valid() {
        let t = trace_from_tape(&[]);
        assert!(validate(&t).is_ok());
        assert_eq!(t.stats().events, 0);
    }

    #[test]
    fn dense_tapes_are_valid_and_nontrivial() {
        // A pseudo-random but fixed tape exercising every opcode.
        let tape: Vec<u8> = (0..600u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let t = trace_from_tape(&tape);
        assert!(validate(&t).is_ok());
        assert!(t.stats().records > 50);
        assert!(t.stats().events > 0);
    }

    #[test]
    fn interpretation_is_deterministic() {
        let tape = b"determinism check tape with some bytes";
        assert_eq!(trace_from_tape(tape), trace_from_tape(tape));
    }
}
