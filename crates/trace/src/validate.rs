//! Structural validation of traces.
//!
//! Builders uphold most invariants as they go; this module re-checks
//! everything from scratch so that deserialized (possibly hand-written or
//! corrupted) traces are safe to analyze.

use std::collections::HashMap;

use crate::error::TraceError;
use crate::ids::{OpRef, TaskId};
use crate::record::Record;
use crate::task::{EventOrigin, TaskKind};
use crate::trace::Trace;

/// Checks a trace for structural well-formedness.
///
/// Verified properties:
/// * every record's task/queue/listener/name references are in range;
/// * every event was processed exactly once, and each queue's processing
///   order is contiguous and consistent with per-event `seq`;
/// * every internally-posted event is named by exactly one
///   `Send`/`SendAtFront` record, at the position its origin claims, with
///   a matching queue and delay;
/// * `Fork`/`Join` children are threads, and a thread's `forked_at` site
///   holds the matching `Fork` record;
/// * lock/unlock are balanced within each task (events must release
///   everything they acquire — Android forbids an event handler returning
///   while holding a monitor).
///
/// # Errors
///
/// Returns the first [`TraceError`] found.
pub fn validate(trace: &Trace) -> Result<(), TraceError> {
    check_queues(trace)?;
    check_records(trace)?;
    check_origins(trace)?;
    check_locks(trace)?;
    Ok(())
}

fn check_queues(trace: &Trace) -> Result<(), TraceError> {
    for (qid, q) in trace.queues() {
        for (i, &event) in q.events.iter().enumerate() {
            if event.index() >= trace.task_count() {
                return Err(TraceError::BrokenQueueOrder { queue: qid });
            }
            let t = trace.task(event);
            match t.kind {
                TaskKind::Event { queue, seq, .. } if queue == qid && seq as usize == i => {}
                _ => return Err(TraceError::BrokenQueueOrder { queue: qid }),
            }
        }
    }
    for t in trace.events() {
        if let TaskKind::Event { queue, seq, .. } = t.kind {
            let q = trace.queue(queue);
            if q.events.get(seq as usize) != Some(&t.id) {
                return Err(TraceError::UnprocessedEvent { event: t.id });
            }
        }
    }
    Ok(())
}

fn check_records(trace: &Trace) -> Result<(), TraceError> {
    let dangling = |site: OpRef, what: &str| TraceError::DanglingId {
        site,
        what: what.to_owned(),
    };
    for (site, record) in trace.iter_ops() {
        match *record {
            Record::Fork { child } | Record::Join { child } => {
                if child.index() >= trace.task_count() {
                    return Err(dangling(site, "an unknown task"));
                }
                if !trace.task(child).is_thread() {
                    return Err(match record {
                        Record::Fork { .. } => TraceError::BadFork { child },
                        _ => TraceError::BadJoin { site },
                    });
                }
            }
            Record::Send { event, queue, .. } | Record::SendAtFront { event, queue } => {
                if event.index() >= trace.task_count() {
                    return Err(dangling(site, "an unknown event"));
                }
                let t = trace.task(event);
                match t.kind {
                    TaskKind::Event {
                        queue: declared, ..
                    } => {
                        if declared != queue {
                            return Err(TraceError::QueueMismatch {
                                event,
                                declared,
                                sent_to: queue,
                            });
                        }
                    }
                    TaskKind::Thread { .. } => {
                        return Err(dangling(site, "a thread as a send target"))
                    }
                }
                if queue.index() >= trace.queue_count() {
                    return Err(dangling(site, "an unknown queue"));
                }
            }
            Record::Register { listener } | Record::Perform { listener }
                if listener.index() >= trace.listener_count() =>
            {
                return Err(dangling(site, "an unknown listener"));
            }
            Record::MethodEnter { name, .. } if trace.names().get(name).is_none() => {
                return Err(dangling(site, "an unknown name"));
            }
            _ => {}
        }
    }
    // Thread fork-site back-pointers.
    for t in trace.threads() {
        if let TaskKind::Thread {
            forked_at: Some(at),
            ..
        } = t.kind
        {
            match trace.get_record(at) {
                Some(Record::Fork { child }) if *child == t.id => {}
                _ => return Err(TraceError::BadFork { child: t.id }),
            }
        }
    }
    Ok(())
}

fn check_origins(trace: &Trace) -> Result<(), TraceError> {
    // Map event -> posting sites found in record bodies.
    let mut posted: HashMap<TaskId, OpRef> = HashMap::new();
    for (site, record) in trace.iter_ops() {
        let event = match *record {
            Record::Send { event, .. } | Record::SendAtFront { event, .. } => event,
            _ => continue,
        };
        if let Some(&first) = posted.get(&event) {
            return Err(TraceError::DuplicateSend {
                event,
                first,
                second: site,
            });
        }
        posted.insert(event, site);
    }
    for t in trace.events() {
        let origin = t.origin().expect("events have origins");
        match origin {
            EventOrigin::Sent { send } | EventOrigin::SentAtFront { send } => {
                let found = posted.get(&t.id).copied();
                if found != Some(send) {
                    return Err(TraceError::MissingSendRecord {
                        event: t.id,
                        site: send,
                    });
                }
                let matches_kind = match trace.get_record(send) {
                    Some(Record::Send { .. }) => !origin.is_front(),
                    Some(Record::SendAtFront { .. }) => origin.is_front(),
                    _ => false,
                };
                if !matches_kind {
                    return Err(TraceError::MissingSendRecord {
                        event: t.id,
                        site: send,
                    });
                }
            }
            EventOrigin::External { .. } => {
                if posted.contains_key(&t.id) {
                    return Err(TraceError::DuplicateSend {
                        event: t.id,
                        first: posted[&t.id],
                        second: posted[&t.id],
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_locks(trace: &Trace) -> Result<(), TraceError> {
    for task in trace.tasks() {
        let mut held: HashMap<crate::ids::MonitorId, u32> = HashMap::new();
        for (i, r) in trace.body(task.id).iter().enumerate() {
            match *r {
                Record::Lock { monitor, .. } => {
                    *held.entry(monitor).or_insert(0) += 1;
                }
                Record::Unlock { monitor, .. } => {
                    let n = held.entry(monitor).or_insert(0);
                    if *n == 0 {
                        return Err(TraceError::UnbalancedLock {
                            task: task.id,
                            monitor,
                            at: i as u32,
                        });
                    }
                    *n -= 1;
                }
                _ => {}
            }
        }
        let len = trace.body_len(task.id);
        if let Some((&monitor, _)) = held.iter().find(|(_, &n)| n > 0) {
            return Err(TraceError::UnbalancedLock {
                task: task.id,
                monitor,
                at: len,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::MonitorId;

    #[test]
    fn valid_trace_passes() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.post(t, q, "ev", 3);
        b.process_event(e);
        let m = MonitorId::new(0);
        b.lock(t, m, 0);
        b.unlock(t, m, 0);
        let trace = b.finish_unchecked();
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn unlock_without_lock_fails() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.unlock(t, MonitorId::new(0), 0);
        let trace = b.finish_unchecked();
        assert!(matches!(
            validate(&trace),
            Err(TraceError::UnbalancedLock { at: 0, .. })
        ));
    }

    #[test]
    fn ending_while_holding_lock_fails() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.lock(t, MonitorId::new(1), 0);
        let trace = b.finish_unchecked();
        assert!(matches!(
            validate(&trace),
            Err(TraceError::UnbalancedLock { at: 1, .. })
        ));
    }

    #[test]
    fn nested_and_reentrant_locks_pass() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let m = MonitorId::new(0);
        b.lock(t, m, 0);
        b.lock(t, m, 1);
        b.unlock(t, m, 1);
        b.unlock(t, m, 0);
        let trace = b.finish_unchecked();
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn duplicate_send_fails() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.post(t, q, "ev", 0);
        b.process_event(e);
        // Manually forge a second send of the same event.
        b.push(
            t,
            Record::Send {
                event: e,
                queue: q,
                delay_ms: 0,
            },
        );
        let trace = b.finish_unchecked();
        assert!(matches!(
            validate(&trace),
            Err(TraceError::DuplicateSend { .. })
        ));
    }

    #[test]
    fn send_to_wrong_queue_fails() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q1 = b.add_queue(p);
        let q2 = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.external(q1, "ev");
        b.process_event(e);
        b.push(
            t,
            Record::Send {
                event: e,
                queue: q2,
                delay_ms: 0,
            },
        );
        let trace = b.finish_unchecked();
        assert!(matches!(
            validate(&trace),
            Err(TraceError::QueueMismatch { .. })
        ));
    }

    #[test]
    fn join_of_event_fails() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.external(q, "ev");
        b.process_event(e);
        b.push(t, Record::Join { child: e });
        let trace = b.finish_unchecked();
        assert!(matches!(validate(&trace), Err(TraceError::BadJoin { .. })));
    }
}
