//! Error types for trace construction, validation, and (de)serialization.

use std::error::Error;
use std::fmt;

use crate::ids::{MonitorId, OpRef, QueueId, TaskId};

/// A structural problem with a trace.
///
/// Produced by [`TraceBuilder::finish`](crate::TraceBuilder::finish) and
/// by [`validate`](crate::validate::validate) on deserialized traces.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An event task was created but never processed by its looper, so it
    /// has no position in the queue's processing order.
    UnprocessedEvent {
        /// The offending event.
        event: TaskId,
    },
    /// An event claims a send origin but no matching `Send`/`SendAtFront`
    /// record exists at that position.
    MissingSendRecord {
        /// The offending event.
        event: TaskId,
        /// Where its origin points.
        site: OpRef,
    },
    /// Two different send records enqueue the same event.
    DuplicateSend {
        /// The event enqueued twice.
        event: TaskId,
        /// The first posting site.
        first: OpRef,
        /// The second posting site.
        second: OpRef,
    },
    /// A send record posts an event to a queue other than the one the
    /// event's metadata names.
    QueueMismatch {
        /// The posted event.
        event: TaskId,
        /// Queue in the event metadata.
        declared: QueueId,
        /// Queue in the send record.
        sent_to: QueueId,
    },
    /// A task ends holding a lock, or releases a lock it does not hold.
    UnbalancedLock {
        /// The offending task.
        task: TaskId,
        /// The monitor involved.
        monitor: MonitorId,
        /// Index of the offending record, or the task length when the
        /// task ends while still holding the monitor.
        at: u32,
    },
    /// A record references a task, queue, listener, or name id outside
    /// the trace's tables.
    DanglingId {
        /// Position of the offending record.
        site: OpRef,
        /// Human-readable description of the dangling reference.
        what: String,
    },
    /// The events of a queue do not form a contiguous processing order
    /// `0..n`.
    BrokenQueueOrder {
        /// The offending queue.
        queue: QueueId,
    },
    /// A `Fork` record names a child that is not a thread, or a thread's
    /// `forked_at` does not point at a matching `Fork`.
    BadFork {
        /// The child task involved.
        child: TaskId,
    },
    /// A `Join` record names a child that is not a thread.
    BadJoin {
        /// Position of the offending record.
        site: OpRef,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnprocessedEvent { event } => {
                write!(f, "event {event} was posted but never processed")
            }
            TraceError::MissingSendRecord { event, site } => {
                write!(
                    f,
                    "event {event} claims origin {site} but no send record exists there"
                )
            }
            TraceError::DuplicateSend {
                event,
                first,
                second,
            } => {
                write!(f, "event {event} is posted twice, at {first} and {second}")
            }
            TraceError::QueueMismatch {
                event,
                declared,
                sent_to,
            } => write!(
                f,
                "event {event} declares queue {declared} but was sent to {sent_to}"
            ),
            TraceError::UnbalancedLock { task, monitor, at } => {
                write!(
                    f,
                    "task {task} has unbalanced lock/unlock of {monitor} at index {at}"
                )
            }
            TraceError::DanglingId { site, what } => {
                write!(f, "record at {site} references {what}")
            }
            TraceError::BrokenQueueOrder { queue } => {
                write!(f, "queue {queue} has a non-contiguous processing order")
            }
            TraceError::BadFork { child } => {
                write!(f, "fork relationship of task {child} is inconsistent")
            }
            TraceError::BadJoin { site } => {
                write!(f, "join record at {site} does not name a thread")
            }
        }
    }
}

impl Error for TraceError {}

/// An error while reading a serialized trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a trace in the expected format.
    Parse {
        /// 1-based line number (text format) or byte offset (binary).
        at: u64,
        /// Description of what went wrong.
        message: String,
    },
    /// The trace parsed but failed structural validation.
    Invalid(TraceError),
    /// The format version in the header is not supported.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
}

impl ReadError {
    pub(crate) fn parse(at: u64, message: impl Into<String>) -> Self {
        ReadError::Parse {
            at,
            message: message.into(),
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadError::Parse { at, message } => write!(f, "parse error at {at}: {message}"),
            ReadError::Invalid(e) => write!(f, "trace failed validation: {e}"),
            ReadError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
        }
    }
}

impl Error for ReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<TraceError> for ReadError {
    fn from(e: TraceError) -> Self {
        ReadError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = TraceError::UnprocessedEvent {
            event: TaskId::new(4),
        };
        assert!(e.to_string().contains("t4"));
        let e = TraceError::QueueMismatch {
            event: TaskId::new(1),
            declared: QueueId::new(0),
            sent_to: QueueId::new(2),
        };
        let s = e.to_string();
        assert!(s.contains("q0") && s.contains("q2"));
    }

    #[test]
    fn read_error_wraps_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = ReadError::from(io);
        assert!(e.source().is_some());
        let e = ReadError::from(TraceError::BrokenQueueOrder {
            queue: QueueId::new(0),
        });
        assert!(e.source().is_some());
        assert!(ReadError::parse(3, "bad token").source().is_none());
    }
}
