//! Incremental construction of a [`Trace`].
//!
//! [`TraceBuilder`] plays the role of the paper's instrumentation stack
//! (§5): callers append records in per-task program order and the builder
//! wires up the cross-task structure — event origins, queue processing
//! orders, fork sites — then checks global well-formedness in
//! [`finish`](TraceBuilder::finish).

use crate::error::TraceError;
use crate::ids::{
    ListenerId, MonitorId, ObjId, OpRef, Pc, ProcessId, QueueId, TaskId, TxnId, VarId,
};
use crate::interner::Interner;
use crate::record::{BranchKind, DerefKind, Record};
use crate::task::{EventOrigin, ListenerInfo, QueueInfo, TaskInfo, TaskKind};
use crate::trace::{Trace, TraceMeta};
use crate::validate::validate;

/// Sentinel for an event that has been posted but not yet processed.
const UNPROCESSED: u32 = u32::MAX;

/// Builds a [`Trace`] record by record.
///
/// # Examples
///
/// ```
/// use cafa_trace::{TraceBuilder, VarId, Pc, ObjId};
///
/// let mut b = TraceBuilder::new("quickstart");
/// let proc = b.add_process();
/// let queue = b.add_queue(proc);
/// let main = b.add_thread(proc, "main");
///
/// // main posts two events to the looper.
/// let resume = b.post(main, queue, "onResume", 0);
/// let destroy = b.post(main, queue, "onDestroy", 0);
///
/// b.process_event(resume);
/// b.obj_write(resume, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
/// b.process_event(destroy);
/// b.obj_write(destroy, VarId::new(0), None, Pc::new(0x20));
///
/// let trace = b.finish().expect("well-formed trace");
/// assert_eq!(trace.stats().events, 2);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    meta: TraceMeta,
    names: Interner,
    tasks: Vec<TaskInfo>,
    bodies: Vec<Vec<Record>>,
    queues: Vec<QueueInfo>,
    listeners: Vec<ListenerInfo>,
    external_order: Vec<TaskId>,
    process_count: u32,
    next_txn: u32,
}

impl TraceBuilder {
    /// Starts a trace for application `app`.
    pub fn new(app: impl Into<String>) -> Self {
        Self {
            meta: TraceMeta {
                app: app.into(),
                seed: 0,
                virtual_ms: 0,
            },
            names: Interner::new(),
            tasks: Vec::new(),
            bodies: Vec::new(),
            queues: Vec::new(),
            listeners: Vec::new(),
            external_order: Vec::new(),
            process_count: 0,
            next_txn: 0,
        }
    }

    /// Records the seed the execution ran with.
    pub fn set_seed(&mut self, seed: u64) {
        self.meta.seed = seed;
    }

    /// Records the virtual duration of the execution.
    pub fn set_virtual_ms(&mut self, ms: u64) {
        self.meta.virtual_ms = ms;
    }

    /// Interner access, for callers that pre-intern names.
    pub fn names_mut(&mut self) -> &mut Interner {
        &mut self.names
    }

    // ---- structure -----------------------------------------------------

    /// Registers a new simulated process.
    pub fn add_process(&mut self) -> ProcessId {
        let id = ProcessId::new(self.process_count);
        self.process_count += 1;
        id
    }

    /// Registers a new event queue drained by a looper in `process`.
    pub fn add_queue(&mut self, process: ProcessId) -> QueueId {
        let id = QueueId::from_usize(self.queues.len());
        self.queues.push(QueueInfo {
            process: Some(process),
            events: Vec::new(),
        });
        id
    }

    /// Registers an initial (non-forked) thread of `process`.
    pub fn add_thread(&mut self, process: ProcessId, name: &str) -> TaskId {
        let name = self.names.intern(name);
        self.push_task(
            TaskKind::Thread {
                process,
                forked_at: None,
            },
            name,
        )
    }

    /// Registers a listener identity belonging to `package`.
    pub fn add_listener(&mut self, package: &str) -> ListenerId {
        let package = self.names.intern(package);
        let id = ListenerId::from_usize(self.listeners.len());
        self.listeners.push(ListenerInfo { package });
        id
    }

    /// Allocates a fresh Binder transaction id.
    pub fn new_txn(&mut self) -> TxnId {
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        id
    }

    fn push_task(&mut self, kind: TaskKind, name: crate::ids::NameId) -> TaskId {
        let id = TaskId::from_usize(self.tasks.len());
        self.tasks.push(TaskInfo { id, kind, name });
        self.bodies.push(Vec::new());
        id
    }

    // ---- raw record append ----------------------------------------------

    /// Appends a raw record to `task`'s body and returns its position.
    ///
    /// Prefer the typed helpers below; they keep the cross-task structure
    /// consistent. This low-level entry point does **not** wire event
    /// origins for `Send` records.
    pub fn push(&mut self, task: TaskId, record: Record) -> OpRef {
        let body = &mut self.bodies[task.index()];
        let at = OpRef::new(task, body.len() as u32);
        body.push(record);
        at
    }

    // ---- typed sync helpers ----------------------------------------------

    /// Forks a new thread from `parent` and returns the child's id. The
    /// child runs in `process` (an event forks threads into its looper's
    /// process; pass [`TraceBuilder::process_of`] when unsure).
    pub fn fork(&mut self, parent: TaskId, process: ProcessId, name: &str) -> TaskId {
        let name = self.names.intern(name);
        let child = self.push_task(
            TaskKind::Thread {
                process,
                forked_at: None,
            },
            name,
        );
        let site = self.push(parent, Record::Fork { child });
        match &mut self.tasks[child.index()].kind {
            TaskKind::Thread { forked_at, .. } => *forked_at = Some(site),
            TaskKind::Event { .. } => unreachable!("just created as thread"),
        }
        child
    }

    /// Appends a `join` of `child` to `task`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is not a thread.
    pub fn join(&mut self, task: TaskId, child: TaskId) -> OpRef {
        assert!(
            self.tasks[child.index()].is_thread(),
            "join target {child} must be a thread"
        );
        self.push(task, Record::Join { child })
    }

    /// Appends a `wait` on `monitor`, woken by notification generation
    /// `gen`.
    pub fn wait(&mut self, task: TaskId, monitor: MonitorId, gen: u32) -> OpRef {
        self.push(task, Record::Wait { monitor, gen })
    }

    /// Appends a `notify` of `monitor` with generation `gen`.
    pub fn notify(&mut self, task: TaskId, monitor: MonitorId, gen: u32) -> OpRef {
        self.push(task, Record::Notify { monitor, gen })
    }

    /// Appends a `lock` of `monitor` as its `gen`-th acquisition.
    pub fn lock(&mut self, task: TaskId, monitor: MonitorId, gen: u32) -> OpRef {
        self.push(task, Record::Lock { monitor, gen })
    }

    /// Appends an `unlock` of `monitor`, releasing acquisition `gen`.
    pub fn unlock(&mut self, task: TaskId, monitor: MonitorId, gen: u32) -> OpRef {
        self.push(task, Record::Unlock { monitor, gen })
    }

    /// Posts a new event to `queue` from `from` with the given delay and
    /// returns the event's task id. Emits the `Send` record and wires the
    /// event's origin to it.
    pub fn post(&mut self, from: TaskId, queue: QueueId, name: &str, delay_ms: u64) -> TaskId {
        let name = self.names.intern(name);
        let event = self.push_task(
            TaskKind::Event {
                queue,
                seq: UNPROCESSED,
                origin: EventOrigin::External { sequence: 0 }, // patched below
                delay_ms,
            },
            name,
        );
        let site = self.push(
            from,
            Record::Send {
                event,
                queue,
                delay_ms,
            },
        );
        self.set_origin(event, EventOrigin::Sent { send: site });
        event
    }

    /// Posts a new event at the *front* of `queue` (Android's
    /// `sendMessageAtFrontOfQueue`). No delay is allowed (§3.3).
    pub fn post_front(&mut self, from: TaskId, queue: QueueId, name: &str) -> TaskId {
        let name = self.names.intern(name);
        let event = self.push_task(
            TaskKind::Event {
                queue,
                seq: UNPROCESSED,
                origin: EventOrigin::External { sequence: 0 }, // patched below
                delay_ms: 0,
            },
            name,
        );
        let site = self.push(from, Record::SendAtFront { event, queue });
        self.set_origin(event, EventOrigin::SentAtFront { send: site });
        event
    }

    /// Creates an event generated by the external world (user input,
    /// sensor, network). External events are totally ordered among
    /// themselves by generation order (§3.3, external-input rule).
    pub fn external(&mut self, queue: QueueId, name: &str) -> TaskId {
        let name = self.names.intern(name);
        let sequence = self.external_order.len() as u32;
        let event = self.push_task(
            TaskKind::Event {
                queue,
                seq: UNPROCESSED,
                origin: EventOrigin::External { sequence },
                delay_ms: 0,
            },
            name,
        );
        self.external_order.push(event);
        event
    }

    fn set_origin(&mut self, event: TaskId, origin: EventOrigin) {
        match &mut self.tasks[event.index()].kind {
            TaskKind::Event { origin: o, .. } => *o = origin,
            TaskKind::Thread { .. } => unreachable!("just created as event"),
        }
    }

    /// Marks `event` as the next event processed by its queue's looper,
    /// assigning its processing sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `event` is not an event or was already processed.
    pub fn process_event(&mut self, event: TaskId) -> u32 {
        let queue = match self.tasks[event.index()].kind {
            TaskKind::Event { queue, seq, .. } => {
                assert_eq!(seq, UNPROCESSED, "event {event} processed twice");
                queue
            }
            TaskKind::Thread { .. } => panic!("task {event} is not an event"),
        };
        let q = &mut self.queues[queue.index()];
        let seq = q.events.len() as u32;
        q.events.push(event);
        match &mut self.tasks[event.index()].kind {
            TaskKind::Event { seq: s, .. } => *s = seq,
            TaskKind::Thread { .. } => unreachable!(),
        }
        seq
    }

    /// Appends a `register` of `listener`.
    pub fn register(&mut self, task: TaskId, listener: ListenerId) -> OpRef {
        self.push(task, Record::Register { listener })
    }

    /// Appends a `perform` of `listener`.
    pub fn perform(&mut self, task: TaskId, listener: ListenerId) -> OpRef {
        self.push(task, Record::Perform { listener })
    }

    /// Appends the caller side of an RPC; returns the transaction id and
    /// the record position.
    pub fn rpc_call(&mut self, task: TaskId) -> (TxnId, OpRef) {
        let txn = self.new_txn();
        let at = self.push(task, Record::RpcCall { txn });
        (txn, at)
    }

    /// Appends the service-side receipt of transaction `txn`.
    pub fn rpc_handle(&mut self, task: TaskId, txn: TxnId) -> OpRef {
        self.push(task, Record::RpcHandle { txn })
    }

    /// Appends the service-side completion of transaction `txn`.
    pub fn rpc_reply(&mut self, task: TaskId, txn: TxnId) -> OpRef {
        self.push(task, Record::RpcReply { txn })
    }

    /// Appends the caller-side receipt of the reply to `txn`.
    pub fn rpc_receive(&mut self, task: TaskId, txn: TxnId) -> OpRef {
        self.push(task, Record::RpcReceive { txn })
    }

    // ---- typed data helpers ----------------------------------------------

    /// Appends a scalar read of `var`.
    pub fn read(&mut self, task: TaskId, var: VarId) -> OpRef {
        self.push(task, Record::Read { var })
    }

    /// Appends a scalar write of `var`.
    pub fn write(&mut self, task: TaskId, var: VarId) -> OpRef {
        self.push(task, Record::Write { var })
    }

    /// Appends a pointer read of `var` observing `obj`.
    pub fn obj_read(&mut self, task: TaskId, var: VarId, obj: Option<ObjId>, pc: Pc) -> OpRef {
        self.push(task, Record::ObjRead { var, obj, pc })
    }

    /// Appends a pointer write of `value` into `var` (a free when
    /// `value` is `None`).
    pub fn obj_write(&mut self, task: TaskId, var: VarId, value: Option<ObjId>, pc: Pc) -> OpRef {
        self.push(task, Record::ObjWrite { var, value, pc })
    }

    /// Appends a dereference of `obj`.
    pub fn deref(&mut self, task: TaskId, obj: ObjId, pc: Pc, kind: DerefKind) -> OpRef {
        self.push(task, Record::Deref { obj, pc, kind })
    }

    /// Appends a guard-branch record proving `obj` non-null.
    pub fn guard(
        &mut self,
        task: TaskId,
        kind: BranchKind,
        pc: Pc,
        target: Pc,
        obj: ObjId,
    ) -> OpRef {
        self.push(
            task,
            Record::Guard {
                kind,
                pc,
                target,
                obj,
            },
        )
    }

    /// Appends a method-entry record.
    pub fn method_enter(&mut self, task: TaskId, pc: Pc, name: &str) -> OpRef {
        let name = self.names.intern(name);
        self.push(task, Record::MethodEnter { pc, name })
    }

    /// Appends a method-exit record.
    pub fn method_exit(&mut self, task: TaskId, pc: Pc, exceptional: bool) -> OpRef {
        self.push(task, Record::MethodExit { pc, exceptional })
    }

    // ---- queries ----------------------------------------------------------

    /// The process a task runs in (an event runs in its queue's looper
    /// process).
    pub fn process_of(&self, task: TaskId) -> ProcessId {
        match self.tasks[task.index()].kind {
            TaskKind::Thread { process, .. } => process,
            TaskKind::Event { queue, .. } => self.queues[queue.index()]
                .process
                .expect("queue has a looper process"),
        }
    }

    /// Current length of a task's body (the index the next record will
    /// get).
    pub fn body_len(&self, task: TaskId) -> u32 {
        self.bodies[task.index()].len() as u32
    }

    /// Number of tasks created so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    // ---- completion ---------------------------------------------------------

    /// Finishes the trace, validating global well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if any event was never processed, a send
    /// origin is inconsistent, locks are unbalanced, or any record
    /// references a dangling id. See [`validate`] for the full list.
    pub fn finish(self) -> Result<Trace, TraceError> {
        let trace = Trace {
            meta: self.meta,
            names: self.names,
            tasks: self.tasks,
            bodies: self.bodies,
            queues: self.queues,
            listeners: self.listeners,
            external_order: self.external_order,
            process_count: self.process_count,
        };
        validate(&trace)?;
        Ok(trace)
    }

    /// Finishes the trace **without** validation. Intended for tests that
    /// deliberately construct ill-formed traces.
    pub fn finish_unchecked(self) -> Trace {
        Trace {
            meta: self.meta,
            names: self.names,
            tasks: self.tasks,
            bodies: self.bodies,
            queues: self.queues,
            listeners: self.listeners,
            external_order: self.external_order,
            process_count: self.process_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_figure1_shape() {
        // The MyTracks scenario of Figure 1: looper events onResume,
        // onServiceConnected, onDestroy plus an RPC thread.
        let mut b = TraceBuilder::new("MyTracks");
        let app = b.add_process();
        let svc = b.add_process();
        let q = b.add_queue(app);
        let ipc = b.add_thread(svc, "binder-ipc");

        let resume = b.external(q, "onResume");
        b.process_event(resume);
        let (txn, _) = b.rpc_call(resume);
        b.rpc_handle(ipc, txn);
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        b.obj_read(connected, VarId::new(0), Some(ObjId::new(7)), Pc::new(0x10));
        b.deref(connected, ObjId::new(7), Pc::new(0x14), DerefKind::Invoke);
        b.process_event(destroy);
        b.obj_write(destroy, VarId::new(0), None, Pc::new(0x20));

        let trace = b.finish().expect("well-formed");
        assert_eq!(trace.stats().events, 3);
        assert_eq!(trace.stats().threads, 1);
        assert_eq!(trace.external_events().len(), 2);
        assert_eq!(trace.queue(q).events.len(), 3);

        // The sent event's origin points at the Send record.
        let origin = trace.task(connected).origin().unwrap();
        let site = origin.send_site().unwrap();
        assert!(matches!(trace.record(site), Record::Send { event, .. } if *event == connected));
    }

    #[test]
    fn unprocessed_event_is_rejected() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let _orphan = b.post(t, q, "ev", 0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, TraceError::UnprocessedEvent { .. }));
    }

    #[test]
    #[should_panic(expected = "processed twice")]
    fn double_processing_panics() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.post(t, q, "ev", 0);
        b.process_event(e);
        b.process_event(e);
    }

    #[test]
    fn fork_wires_forked_at() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        let child = b.fork(main, p, "worker");
        b.join(main, child);
        let trace = b.finish().unwrap();
        match trace.task(child).kind {
            TaskKind::Thread {
                forked_at: Some(site),
                ..
            } => {
                assert!(matches!(trace.record(site), Record::Fork { child: c } if *c == child));
            }
            _ => panic!("child should record its fork site"),
        }
    }

    #[test]
    fn external_events_keep_generation_order() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e1 = b.external(q, "touch1");
        let e2 = b.external(q, "touch2");
        b.process_event(e2); // processed out of generation order
        b.process_event(e1);
        let trace = b.finish().unwrap();
        assert_eq!(trace.external_events(), &[e1, e2]);
        assert_eq!(trace.task(e2).seq(), Some(0));
        assert_eq!(trace.task(e1).seq(), Some(1));
    }

    #[test]
    fn txn_ids_are_unique() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let (x1, _) = b.rpc_call(t);
        let (x2, _) = b.rpc_call(t);
        assert_ne!(x1, x2);
    }
}
